//! Set-oriented `ts` semantics (§4.2).
//!
//! For an event expression `E`, a set `R` of event occurrences (an
//! observation [`Window`] over the EB) and an instant `t`:
//!
//! * `ts(E, t) > 0` iff `E` is *active* at `t`, and the value is the
//!   activation stamp (the stamp of the most recent activation);
//! * `ts(E, t) = -t` otherwise.
//!
//! The paper gives two equivalent definitions — a *logical style* (case
//! analysis over `occ` predicates) and an *algebraic style* (arithmetic
//! over the step function `u`). Both are implemented here, as genuinely
//! different code paths, and property tests assert they agree on random
//! expressions and histories (PERF-6 benches their relative cost).
//!
//! | op        | logical definition |
//! |-----------|--------------------|
//! | primitive | stamp of most recent occurrence in `R∩(-∞,t]`, else `-t` |
//! | `-E`      | `-ts(E,t)` |
//! | `A + B`   | both active → `max`; else `min` |
//! | `A , B`   | at least one active → `max` of the active side(s); else `min` |
//! | `A < B`   | `B` active and `A` active at `ts(B,t)` → `ts(B,t)`; else `-t` |
//!
//! Instance-oriented sub-expressions appearing in set context are folded in
//! through the §4.3 boundary (see [`crate::instance`]).

use crate::expr::EventExpr;
use crate::instance::{boundary_ts_algebraic, boundary_ts_logical};
use chimera_events::{EventBase, EventType, Timestamp, Window};
use std::fmt;

/// A signed `ts` value. Positive = active (value is the activation stamp),
/// negative = inactive (value is `-t`). Never zero (stamps start at 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TsVal(pub i64);

impl TsVal {
    /// Active with the given stamp.
    #[inline]
    pub fn active(stamp: Timestamp) -> Self {
        debug_assert!(stamp.raw() > 0);
        TsVal(stamp.as_signed())
    }

    /// Inactive at instant `t` (value `-t`).
    #[inline]
    pub fn inactive(t: Timestamp) -> Self {
        TsVal(-t.as_signed())
    }

    /// Is the expression active?
    #[inline]
    pub fn is_active(self) -> bool {
        self.0 > 0
    }

    /// Activation stamp, if active.
    #[inline]
    pub fn activation(self) -> Option<Timestamp> {
        if self.0 > 0 {
            Some(Timestamp(self.0 as u64))
        } else {
            None
        }
    }

    /// Raw signed value.
    #[inline]
    pub fn raw(self) -> i64 {
        self.0
    }

    /// The paper's negation twist: `ts(-E, t) = -ts(E, t)`.
    #[inline]
    pub fn negate(self) -> Self {
        TsVal(-self.0)
    }
}

impl fmt::Display for TsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The §4.2 step function: `u(x) = 1` if `x ≥ 0`, else `0`.
#[inline]
pub(crate) fn u(x: i64) -> i64 {
    if x >= 0 {
        1
    } else {
        0
    }
}

/// `ts` of a primitive event type: most recent occurrence in `R` no later
/// than `t`, else `-t`.
pub(crate) fn ts_prim(eb: &EventBase, w: Window, t: Timestamp, ty: EventType) -> TsVal {
    match eb.last_of_type_in(ty, w.clip_upto(t)) {
        Some(stamp) => TsVal::active(stamp),
        None => TsVal::inactive(t),
    }
}

/// Logical-style evaluation of `ts(E, t)` over the window `w` of the EB.
///
/// Instance-oriented sub-expressions in set context are folded in through
/// the §4.3 boundary via a process-wide sharded **compiled-plan cache**
/// ([`crate::plan`]): the boundary's object domain and leaf stamps come
/// from the event base's indexes instead of a per-call rescan, and the
/// cached scratch state is advanced arrival-incrementally as the event
/// base grows. Use [`ts_logical_interpreted`] for the fully recursive
/// reference path.
///
/// ```
/// use chimera_calculus::{ts_logical, EventExpr};
/// use chimera_events::{EventBase, EventType, Timestamp, Window};
/// use chimera_model::{ClassId, Oid};
///
/// let create = EventType::create(ClassId(0));
/// let delete = EventType::delete(ClassId(0));
/// let mut eb = EventBase::new();
/// eb.append(create, Oid(1)); // t1
///
/// // "a creation not followed by a deletion"
/// let expr = EventExpr::prim(create).and(EventExpr::prim(delete).not());
/// let w = Window::from_origin(eb.now());
/// let v = ts_logical(&expr, &eb, w, eb.now());
/// assert!(v.is_active());
/// assert_eq!(v.activation(), Some(Timestamp(1)));
///
/// eb.append(delete, Oid(1)); // t2: the negation falsifies it
/// let w = Window::from_origin(eb.now());
/// assert!(!ts_logical(&expr, &eb, w, eb.now()).is_active());
/// ```
pub fn ts_logical(expr: &EventExpr, eb: &EventBase, w: Window, t: Timestamp) -> TsVal {
    ts_logical_mode(expr, eb, w, t, true)
}

/// [`ts_logical`] with the boundary evaluated by the *recursive* §4.3
/// definition ([`boundary_ts_logical`]) instead of a compiled plan. This
/// is the reference path the plan is property-tested against, and the
/// "interpreted" side of the perf benches.
pub fn ts_logical_interpreted(expr: &EventExpr, eb: &EventBase, w: Window, t: Timestamp) -> TsVal {
    ts_logical_mode(expr, eb, w, t, false)
}

fn ts_logical_mode(
    expr: &EventExpr,
    eb: &EventBase,
    w: Window,
    t: Timestamp,
    planned: bool,
) -> TsVal {
    match expr {
        EventExpr::Prim(ty) => ts_prim(eb, w, t, *ty),
        EventExpr::Not(e) => ts_logical_mode(e, eb, w, t, planned).negate(),
        EventExpr::And(a, b) => {
            let ta = ts_logical_mode(a, eb, w, t, planned);
            let tb = ts_logical_mode(b, eb, w, t, planned);
            if ta.is_active() && tb.is_active() {
                ta.max(tb)
            } else {
                ta.min(tb)
            }
        }
        EventExpr::Or(a, b) => {
            let ta = ts_logical_mode(a, eb, w, t, planned);
            let tb = ts_logical_mode(b, eb, w, t, planned);
            if ta.is_active() || tb.is_active() {
                ta.max(tb)
            } else {
                ta.min(tb)
            }
        }
        EventExpr::Prec(a, b) => {
            let tb = ts_logical_mode(b, eb, w, t, planned);
            match tb.activation() {
                Some(b_stamp) => {
                    // was A already active at B's last activation instant?
                    let ta_at_b = ts_logical_mode(a, eb, w, b_stamp, planned);
                    if ta_at_b.is_active() {
                        tb
                    } else {
                        TsVal::inactive(t)
                    }
                }
                None => TsVal::inactive(t),
            }
        }
        // instance-oriented sub-expression in set context: §4.3 boundary.
        EventExpr::IOr(..) | EventExpr::IAnd(..) | EventExpr::IPrec(..) | EventExpr::INot(..) => {
            if planned {
                crate::plan::boundary_ts_planned(expr, eb, w, t)
            } else {
                boundary_ts_logical(expr, eb, w, t)
            }
        }
    }
}

/// Algebraic-style evaluation of `ts(E, t)` (§4.2 "AlgebraicSemantics"):
/// the same function computed purely with `min`/`max` and `u` products.
/// Boundaries go through the compiled-plan cache, whose values the
/// recursive algebraic boundary is property-tested to match exactly; use
/// [`ts_algebraic_interpreted`] for the fully recursive path.
pub fn ts_algebraic(expr: &EventExpr, eb: &EventBase, w: Window, t: Timestamp) -> TsVal {
    ts_algebraic_mode(expr, eb, w, t, true)
}

/// [`ts_algebraic`] with the boundary evaluated by the recursive §4.3
/// `u`-product definition ([`boundary_ts_algebraic`]).
pub fn ts_algebraic_interpreted(
    expr: &EventExpr,
    eb: &EventBase,
    w: Window,
    t: Timestamp,
) -> TsVal {
    ts_algebraic_mode(expr, eb, w, t, false)
}

fn ts_algebraic_mode(
    expr: &EventExpr,
    eb: &EventBase,
    w: Window,
    t: Timestamp,
    planned: bool,
) -> TsVal {
    match expr {
        EventExpr::Prim(ty) => ts_prim(eb, w, t, *ty),
        EventExpr::Not(e) => TsVal(-ts_algebraic_mode(e, eb, w, t, planned).0),
        EventExpr::And(a, b) => {
            let x = ts_algebraic_mode(a, eb, w, t, planned).0;
            let y = ts_algebraic_mode(b, eb, w, t, planned).0;
            // min{x,y}·(1 − u(x)u(y)) + max{x,y}·u(x)u(y)
            let both = u(x) * u(y);
            TsVal(x.min(y) * (1 - both) + x.max(y) * both)
        }
        EventExpr::Or(a, b) => {
            let x = ts_algebraic_mode(a, eb, w, t, planned).0;
            let y = ts_algebraic_mode(b, eb, w, t, planned).0;
            // max{x,y}·(1 − u(−x)u(−y)) + min{x,y}·u(−x)u(−y)
            let neither = u(-x) * u(-y);
            TsVal(x.max(y) * (1 - neither) + x.min(y) * neither)
        }
        EventExpr::Prec(a, b) => {
            let y = ts_algebraic_mode(b, eb, w, t, planned).0;
            let g = u(y);
            // the A-at-ts(B) factor is multiplied by u(y); evaluate lazily
            // (the algebraic form's product is 0 when B is inactive).
            let z = if g == 1 {
                ts_algebraic_mode(a, eb, w, Timestamp(y as u64), planned).0
            } else {
                -1
            };
            let hit = g * u(z);
            TsVal(-t.as_signed() * (1 - hit) + y * hit)
        }
        EventExpr::IOr(..) | EventExpr::IAnd(..) | EventExpr::IPrec(..) | EventExpr::INot(..) => {
            if planned {
                crate::plan::boundary_ts_planned(expr, eb, w, t)
            } else {
                boundary_ts_algebraic(expr, eb, w, t)
            }
        }
    }
}

/// The §4.2 `occ(E, t)` predicate: is `E` active?
pub fn occ(expr: &EventExpr, eb: &EventBase, w: Window, t: Timestamp) -> bool {
    ts_logical(expr, eb, w, t).is_active()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::{ClassId, Oid};

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }
    /// Both evaluators, asserted equal.
    fn ts(expr: &EventExpr, eb: &EventBase, w: Window, t: u64) -> TsVal {
        let l = ts_logical(expr, eb, w, Timestamp(t));
        let a = ts_algebraic(expr, eb, w, Timestamp(t));
        assert_eq!(l, a, "logical/algebraic disagree on {expr} at t{t}");
        l
    }

    /// §3.1 disjunction: create at t1=1 and t2=5, modify at t3=9.
    /// CREATE=et(0), MODIFY=et(1).
    fn history_31() -> EventBase {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(0), Oid(2), Timestamp(5));
        eb.append_at(et(1), Oid(1), Timestamp(9));
        eb.tick(); // t10 exists for "after t3" probes
        eb
    }

    #[test]
    fn section31_primitive() {
        let eb = history_31();
        let w = Window::from_origin(Timestamp(10));
        let e = p(0);
        // before t1: not active
        // (probe below window start uses degenerate clip → inactive)
        assert_eq!(ts(&e, &eb, w, 1), TsVal(1)); // at t1 itself: active
        assert_eq!(ts(&e, &eb, w, 4), TsVal(1)); // t1 ≤ t < t2 → stamp t1
        assert_eq!(ts(&e, &eb, w, 7), TsVal(5)); // t ≥ t2 → stamp t2
    }

    #[test]
    fn section31_disjunction_timeline() {
        let eb = history_31();
        let w = Window::from_origin(Timestamp(10));
        let e = p(0).or(p(1)); // create , modify
        assert_eq!(ts(&e, &eb, w, 4), TsVal(1)); // only first create
        assert_eq!(ts(&e, &eb, w, 7), TsVal(5)); // second create
        assert_eq!(ts(&e, &eb, w, 10), TsVal(9)); // modify wins
    }

    #[test]
    fn section31_conjunction_timeline() {
        let eb = history_31();
        let w = Window::from_origin(Timestamp(10));
        let e = p(0).and(p(1)); // create + modify
        assert!(!ts(&e, &eb, w, 4).is_active()); // modify missing
        assert_eq!(ts(&e, &eb, w, 4), TsVal(-4));
        assert!(!ts(&e, &eb, w, 8).is_active());
        assert_eq!(ts(&e, &eb, w, 9), TsVal(9)); // both active, max = t3
        assert_eq!(ts(&e, &eb, w, 10), TsVal(9));
    }

    #[test]
    fn section31_negation_timeline() {
        let mut eb = EventBase::new();
        eb.tick(); // t1 passes eventless
        eb.tick(); // t2
        eb.append_at(et(0), Oid(1), Timestamp(3));
        eb.tick(); // t4
        let w = Window::from_origin(Timestamp(4));
        let e = p(0).not();
        // before the create: active with stamp = current time
        assert_eq!(ts(&e, &eb, w, 2), TsVal(2));
        // after the create: inactive, value −ts(create) = −3
        assert_eq!(ts(&e, &eb, w, 4), TsVal(-3));
        assert!(!ts(&e, &eb, w, 4).is_active());
    }

    /// §3.1 precedence: create at 1, modify at 5, create again at 9.
    /// The activation stamp stays at t3=5 even after the later create,
    /// "because the second creation has time stamp greater than that of
    /// the last modification".
    #[test]
    fn section31_precedence_timeline() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(1), Oid(1), Timestamp(5));
        eb.append_at(et(0), Oid(2), Timestamp(9));
        eb.tick(); // t10
        let w = Window::from_origin(Timestamp(10));
        let e = p(0).prec(p(1)); // create < modify
        assert!(!ts(&e, &eb, w, 3).is_active()); // modify not yet
        assert_eq!(ts(&e, &eb, w, 5), TsVal(5)); // active at t3, stamp t3
        assert_eq!(ts(&e, &eb, w, 7), TsVal(5));
        assert_eq!(ts(&e, &eb, w, 10), TsVal(5)); // later create ignored
    }

    #[test]
    fn precedence_requires_order() {
        // modify first, create later: create < modify never becomes active.
        let mut eb = EventBase::new();
        eb.append_at(et(1), Oid(1), Timestamp(2));
        eb.append_at(et(0), Oid(1), Timestamp(6));
        eb.tick();
        let w = Window::from_origin(Timestamp(7));
        let e = p(0).prec(p(1));
        assert!(!ts(&e, &eb, w, 7).is_active());
        assert_eq!(ts(&e, &eb, w, 7), TsVal(-7));
        // but modify < create is active with create's stamp
        let e2 = p(1).prec(p(0));
        assert_eq!(ts(&e2, &eb, w, 7), TsVal(6));
    }

    #[test]
    fn precedence_same_stamp_counts() {
        // A < A: the same activation instant satisfies "A active at ts(A)".
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(3));
        let w = Window::from_origin(Timestamp(3));
        let e = p(0).prec(p(0));
        assert_eq!(ts(&e, &eb, w, 3), TsVal(3));
    }

    #[test]
    fn window_consumption_hides_old_events() {
        let eb = history_31();
        // consuming rule considered at t6: window starts after 6
        let w = Window::new(Timestamp(6), Timestamp(10));
        assert!(!ts(&p(0), &eb, w, 10).is_active()); // creates consumed
        assert_eq!(ts(&p(1), &eb, w, 10), TsVal(9)); // modify still in R
    }

    #[test]
    fn double_negation_is_identity() {
        let eb = history_31();
        let w = Window::from_origin(Timestamp(10));
        let e = p(0).not().not();
        for t in 1..=10 {
            assert_eq!(ts(&e, &eb, w, t), ts(&p(0), &eb, w, t));
        }
    }

    #[test]
    fn de_morgan_fig5_equivalence() {
        // Fig. 5: ts(-(-A , -B), t) ≡ ts(A + B, t) over an A/B/C history.
        let mut eb = EventBase::new();
        eb.append_at(et(2), Oid(1), Timestamp(1)); // C (uninvolved)
        eb.append_at(et(0), Oid(1), Timestamp(2)); // A
        eb.append_at(et(2), Oid(2), Timestamp(3)); // C
        eb.append_at(et(1), Oid(1), Timestamp(4)); // B
        eb.append_at(et(0), Oid(3), Timestamp(5)); // A
        eb.append_at(et(1), Oid(2), Timestamp(6)); // B
        eb.append_at(et(2), Oid(1), Timestamp(7)); // C
        let w = Window::from_origin(Timestamp(7));
        let lhs = p(0).not().or(p(1).not()).not();
        let rhs = p(0).and(p(1));
        for t in 1..=7 {
            assert_eq!(ts(&lhs, &eb, w, t), ts(&rhs, &eb, w, t), "t={t}");
        }
    }

    #[test]
    fn section31_complex_expression() {
        // modify(show.qty) + -((create(order) < modify(order.delqty)) ,
        //                      (modify(stock.minqty) < modify(stock.qty)))
        // et: 0=modify(show.qty) 1=create(order) 2=modify(order.delqty)
        //     3=modify(stock.minqty) 4=modify(stock.qty)
        let inner = p(1).prec(p(2)).or(p(3).prec(p(4)));
        let e = p(0).and(inner.not());
        // history: only the shelf modification happens → active
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        let w = Window::from_origin(Timestamp(1));
        assert!(ts(&e, &eb, w, 1).is_active());
        // add create(order) then modify(order.delqty): negated part active
        // → whole expression inactive
        let mut eb2 = EventBase::new();
        eb2.append_at(et(0), Oid(1), Timestamp(1));
        eb2.append_at(et(1), Oid(2), Timestamp(2));
        eb2.append_at(et(2), Oid(2), Timestamp(3));
        let w2 = Window::from_origin(Timestamp(3));
        assert!(!ts(&e, &eb2, w2, 3).is_active());
        // order events in the wrong order: negation stays active
        let mut eb3 = EventBase::new();
        eb3.append_at(et(0), Oid(1), Timestamp(1));
        eb3.append_at(et(2), Oid(2), Timestamp(2));
        eb3.append_at(et(1), Oid(2), Timestamp(3));
        let w3 = Window::from_origin(Timestamp(3));
        assert!(ts(&e, &eb3, w3, 3).is_active());
    }

    #[test]
    fn empty_window_semantics() {
        let eb = EventBase::new();
        let w = Window::from_origin(Timestamp(5));
        assert_eq!(ts(&p(0), &eb, w, 5), TsVal(-5));
        assert_eq!(ts(&p(0).not(), &eb, w, 5), TsVal(5)); // vacuously active
        assert_eq!(ts(&p(0).and(p(1)), &eb, w, 5), TsVal(-5));
        assert_eq!(ts(&p(0).not().and(p(1).not()), &eb, w, 5), TsVal(5));
    }

    #[test]
    fn disjunction_takes_highest_active_stamp() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(2));
        eb.append_at(et(1), Oid(1), Timestamp(6));
        let w = Window::from_origin(Timestamp(6));
        assert_eq!(ts(&p(0).or(p(1)), &eb, w, 6), TsVal(6));
        assert_eq!(ts(&p(1).or(p(0)), &eb, w, 6), TsVal(6));
        // only one active → its stamp, regardless of operand order
        assert_eq!(ts(&p(0).or(p(9)), &eb, w, 6), TsVal(2));
        assert_eq!(ts(&p(9).or(p(0)), &eb, w, 6), TsVal(2));
    }

    #[test]
    fn tsval_accessors() {
        let a = TsVal::active(Timestamp(4));
        assert!(a.is_active());
        assert_eq!(a.activation(), Some(Timestamp(4)));
        assert_eq!(a.raw(), 4);
        let i = TsVal::inactive(Timestamp(9));
        assert!(!i.is_active());
        assert_eq!(i.activation(), None);
        assert_eq!(i.raw(), -9);
        assert_eq!(i.negate().raw(), 9);
        assert_eq!(a.to_string(), "4");
    }

    #[test]
    fn u_step_function() {
        assert_eq!(u(5), 1);
        assert_eq!(u(0), 1);
        assert_eq!(u(-3), 0);
    }
}
