//! The engine: Block Executor + Event Handler + rule processing loop.
//!
//! Execution model (§2, §5):
//!
//! * a transaction is a sequence of **non-interruptible blocks** — user
//!   *transaction lines* ([`Engine::exec_block`]) and *rule actions*;
//! * after each block the Block Executor hands the generated occurrences
//!   to the Event Handler, which stores them in the Event Base; the
//!   Trigger Support then determines newly triggered rules;
//! * while an **immediate** rule is triggered, the highest-priority one is
//!   *considered*: its condition is evaluated over its consumption window,
//!   the rule is detriggered, and — if the condition produced bindings —
//!   its action executes as the next block (possibly triggering more
//!   rules, including the rule itself through the events its own action
//!   generates);
//! * `commit` drains **deferred** rules the same way (immediate rules
//!   re-triggered by deferred actions are processed too), then commits the
//!   store;
//! * `rollback` undoes all store changes and resets rule state.
//!
//! A configurable step limit guards against non-terminating cascades.
//!
//! ## The batched, arrival-incremental ingestion pipeline
//!
//! Event expressions are never re-interpreted on the hot path: every rule
//! carries one compiled evaluation plan (`chimera_calculus::plan`) in its
//! rule-table state, through which the Trigger Support evaluates all `ts`
//! probes, and the `occurred`/`at` condition formulas evaluate through a
//! process-wide sharded compiled-plan cache of the same module.
//!
//! Arrivals are processed **per block, not per occurrence**: a whole
//! transaction line (or external batch handed to
//! [`Engine::raise_external`]) is appended to the Event Base as one
//! epoch delta, and the Trigger Support then runs a single check round
//! over it — one relevance-filter pass and one shared probe-instant set
//! per round, with each rule's plan *advancing* its per-object scratch
//! state by exactly that delta (`EventBase::occurrences_since` /
//! `type_occurrences_since`) instead of rebuilding it from the window.
//! Rule considerations move a rule's window lower bound, which is the
//! one case where its plan falls back to a cold rebuild. Transaction
//! resets ([`Engine::begin`], [`Engine::rollback`]) keep every rule's
//! compiled plan and scratchpad — only the runtime trigger state is
//! cleared.

use crate::action_exec::execute_actions;
use crate::error::ExecError;
use crate::formula::{evaluate_condition, Binding};
use crate::Result;
use chimera_events::{EventBase, EventOccurrence, EventType, Timestamp};
use chimera_model::{
    AttrId, ClassId, Mutation, MutationKind, Object, ObjectStore, Oid, Schema, Value,
};
use chimera_rules::{CouplingMode, RuleTable, TriggerDef, TriggerSupport};

/// One operation of a user transaction line.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Create an object.
    Create {
        /// Class of the new object.
        class: ClassId,
        /// Attribute initializers.
        inits: Vec<(AttrId, Value)>,
    },
    /// Modify an attribute.
    Modify {
        /// Target object.
        oid: Oid,
        /// Attribute slot.
        attr: AttrId,
        /// New value.
        value: Value,
    },
    /// Delete an object.
    Delete {
        /// Target object.
        oid: Oid,
    },
    /// Migrate an object to a subclass.
    Specialize {
        /// Target object.
        oid: Oid,
        /// Destination class.
        class: ClassId,
    },
    /// Migrate an object to a superclass.
    Generalize {
        /// Target object.
        oid: Oid,
        /// Destination class.
        class: ClassId,
    },
    /// Query a class extent; each retrieved object produces a `select`
    /// event when [`EngineConfig::emit_select_events`] is on.
    Select {
        /// Queried class.
        class: ClassId,
        /// Include subclasses?
        deep: bool,
    },
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum rule considerations per transaction (cascade guard).
    pub max_rule_steps: usize,
    /// Emit `select` events from [`Op::Select`] queries.
    pub emit_select_events: bool,
    /// Use the §5.1 static optimization in the Trigger Support.
    pub use_static_optimization: bool,
    /// Worker threads for the probe phase of each trigger check round.
    /// `1` (the default) runs the classic sequential round; `n > 1`
    /// splits the rule table's probe work across `n` scoped threads over
    /// the block's shared arrival delta — observationally identical to
    /// the sequential round (the parallel path is the same per-rule code
    /// run in chunks; see `chimera_rules::TriggerSupport::check_workers`).
    pub check_workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rule_steps: 10_000,
            emit_select_events: true,
            use_static_optimization: true,
            check_workers: 1,
        }
    }
}

/// Engine work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Non-interruptible blocks executed (transaction lines + actions).
    pub blocks: u64,
    /// Event occurrences appended to the EB.
    pub events: u64,
    /// Rule considerations (condition evaluations).
    pub considerations: u64,
    /// Rule executions (actions that actually ran).
    pub executions: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions rolled back.
    pub rollbacks: u64,
}

/// The Chimera engine.
#[derive(Debug)]
pub struct Engine {
    schema: Schema,
    store: ObjectStore,
    eb: EventBase,
    rules: RuleTable,
    support: TriggerSupport,
    config: EngineConfig,
    in_txn: bool,
    txn_start: Timestamp,
    steps_this_txn: usize,
    stats: EngineStats,
}

impl Engine {
    /// Engine over a schema, default configuration.
    pub fn new(schema: Schema) -> Self {
        Engine::with_config(schema, EngineConfig::default())
    }

    /// Engine with explicit configuration.
    pub fn with_config(schema: Schema, config: EngineConfig) -> Self {
        let support = if config.use_static_optimization {
            TriggerSupport::optimized()
        } else {
            TriggerSupport::unoptimized()
        }
        .with_workers(config.check_workers);
        Engine {
            schema,
            store: ObjectStore::new(),
            eb: EventBase::new(),
            rules: RuleTable::new(),
            support,
            config,
            in_txn: false,
            txn_start: Timestamp::ZERO,
            steps_this_txn: 0,
            stats: EngineStats::default(),
        }
    }

    /// Engine over a previously recovered store (crash recovery: a WAL
    /// layer rebuilds the store; the engine resumes with a fresh event
    /// base and rule state — no transaction survives a crash, so no event
    /// history needs to survive either).
    pub fn with_restored_store(schema: Schema, store: ObjectStore, config: EngineConfig) -> Self {
        let mut engine = Engine::with_config(schema, config);
        engine.store = store;
        engine
    }

    /// Replay a recovered event log into the event base, without running
    /// reactions or touching the work counters. Both eids and timestamps
    /// are assigned densely per append, so replaying the `(type, oid)`
    /// pairs of a previous log reproduces it bit-identically. Recovery
    /// calls this on a freshly restored engine *before* re-applying any
    /// logged jobs; the restored rule stamps are overlaid afterwards with
    /// [`Engine::restore_rule_state`].
    pub fn restore_event_log(&mut self, events: &[(EventType, Oid)]) {
        for &(ty, oid) in events {
            self.eb.append(ty, oid);
        }
    }

    /// Overwrite the work counters with recovered values (they are not
    /// derivable from the store/event base alone — e.g. rollbacks leave
    /// no trace).
    pub fn restore_stats(&mut self, stats: EngineStats) {
        self.stats = stats;
    }

    /// Overwrite one rule's processing stamps with recovered values.
    /// Used after re-defining the trigger (definition stamps the state
    /// with the *current* instant, which is wrong after an event-log
    /// restore). The compiled plan and filter are rebuilt by definition
    /// and stay untouched here.
    pub fn restore_rule_state(
        &mut self,
        name: &str,
        triggered: bool,
        last_consideration: Timestamp,
        last_consumption: Timestamp,
        checked_upto: Timestamp,
        witness: bool,
    ) -> Result<()> {
        let state = self.rules.state_mut(name)?;
        state.triggered = triggered;
        state.last_consideration = last_consideration;
        state.last_consumption = last_consumption;
        state.checked_upto = checked_upto;
        state.witness = witness;
        Ok(())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }
    /// The event base (read-only).
    pub fn event_base(&self) -> &EventBase {
        &self.eb
    }
    /// The object store (read-only; mutations go through blocks/actions).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }
    /// The rule table (read-only).
    pub fn rules(&self) -> &RuleTable {
        &self.rules
    }
    /// Work counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
    /// Trigger-support counters (ts probes, filter skips).
    pub fn support_stats(&self) -> chimera_rules::table::SupportStats {
        self.support.stats
    }
    /// Share a probe worker pool with other engines. The multi-tenant
    /// runtime installs one pool per *shard* on every tenant engine the
    /// shard owns, so parked probe threads scale with shards ×
    /// (`check_workers` − 1), not with tenants. Purely a resource-sharing
    /// knob: check-round results are identical either way.
    pub fn use_shared_probe_pool(&mut self, pool: chimera_rules::SharedProbePool) {
        self.support.use_shared_pool(pool);
    }
    /// Is a transaction active?
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// Define a trigger. Allowed at any time; the rule starts observing
    /// events from the current instant.
    pub fn define_trigger(&mut self, def: TriggerDef) -> Result<()> {
        self.rules.define(def, self.eb.now())?;
        Ok(())
    }

    /// Drop a trigger.
    pub fn drop_trigger(&mut self, name: &str) -> Result<()> {
        self.rules.drop_rule(name)?;
        Ok(())
    }

    /// Begin a transaction.
    pub fn begin(&mut self) -> Result<()> {
        if self.in_txn {
            return Err(ExecError::TransactionActive);
        }
        self.store.begin()?;
        self.in_txn = true;
        self.steps_this_txn = 0;
        self.txn_start = self.eb.now();
        self.rules.reset_all(self.txn_start);
        Ok(())
    }

    /// Execute one transaction line (a non-interruptible block of
    /// operations), then run the reaction loop for immediate rules.
    /// Returns the occurrences generated by the line itself.
    pub fn exec_block(&mut self, ops: &[Op]) -> Result<Vec<EventOccurrence>> {
        if !self.in_txn {
            return Err(ExecError::NoActiveTransaction);
        }
        let mut muts = Vec::new();
        for op in ops {
            match op {
                Op::Create { class, inits } => {
                    muts.push(self.store.create(&self.schema, *class, inits)?);
                }
                Op::Modify { oid, attr, value } => {
                    muts.push(self.store.modify(&self.schema, *oid, *attr, value.clone())?);
                }
                Op::Delete { oid } => {
                    muts.push(self.store.delete(*oid)?);
                }
                Op::Specialize { oid, class } => {
                    muts.push(self.store.specialize(&self.schema, *oid, *class)?);
                }
                Op::Generalize { oid, class } => {
                    muts.push(self.store.generalize(&self.schema, *oid, *class)?);
                }
                Op::Select { class, deep } => {
                    let (_, select_muts) =
                        self.store.select(&self.schema, *class, *deep, |_| true)?;
                    if self.config.emit_select_events {
                        muts.extend(select_muts);
                    }
                }
            }
        }
        self.stats.blocks += 1;
        let occs = self.handle_events(&muts);
        self.react(CouplingMode::Immediate)?;
        Ok(occs)
    }

    /// Deliver external event occurrences (the HiPAC-style extension
    /// point: clock or application events) as one non-interruptible
    /// block, then run the reaction loop for immediate rules.
    ///
    /// External occurrences do not touch the object store; each is
    /// recorded against the given pseudo-object (use `Oid(0)` for
    /// object-less events such as clock ticks — the store never allocates
    /// it).
    pub fn raise_external(
        &mut self,
        events: &[(ClassId, u32, Oid)],
    ) -> Result<Vec<EventOccurrence>> {
        if !self.in_txn {
            return Err(ExecError::NoActiveTransaction);
        }
        let mut occs = Vec::with_capacity(events.len());
        for &(class, channel, oid) in events {
            self.schema.class(class)?;
            occs.push(self.eb.append(EventType::external(class, channel), oid));
        }
        self.stats.blocks += 1;
        self.stats.events += occs.len() as u64;
        self.react(CouplingMode::Immediate)?;
        Ok(occs)
    }

    /// Commit: drain deferred rules (§2 — "if the rule is deferred it is
    /// suspended until the commit command"), then commit the store.
    pub fn commit(&mut self) -> Result<()> {
        if !self.in_txn {
            return Err(ExecError::NoActiveTransaction);
        }
        self.react(CouplingMode::Deferred)?;
        self.store.commit()?;
        self.in_txn = false;
        self.stats.commits += 1;
        Ok(())
    }

    /// Rollback: undo every store change, reset rule state.
    pub fn rollback(&mut self) -> Result<()> {
        if !self.in_txn {
            return Err(ExecError::NoActiveTransaction);
        }
        self.store.rollback()?;
        self.rules.reset_all(self.eb.now());
        self.in_txn = false;
        self.stats.rollbacks += 1;
        Ok(())
    }

    /// Read-only object access (valid inside or outside transactions).
    pub fn get_object(&self, oid: Oid) -> Result<&Object> {
        Ok(self.store.get(oid)?)
    }

    /// Read an attribute by name.
    pub fn read_attr(&self, oid: Oid, attr: &str) -> Result<Value> {
        let obj = self.store.get(oid)?;
        let aid = self.schema.attr_by_name(obj.class, attr)?;
        Ok(self.store.read_attr(oid, aid)?.clone())
    }

    /// OIDs of the (deep) extent of a class.
    pub fn extent(&self, class: ClassId) -> Vec<Oid> {
        self.store.extent_deep(&self.schema, class)
    }

    /// The Event Handler: append mutations to the EB as occurrences.
    fn handle_events(&mut self, muts: &[Mutation]) -> Vec<EventOccurrence> {
        let mut occs = Vec::with_capacity(muts.len());
        for m in muts {
            let ty = match m.kind {
                MutationKind::Create => EventType::create(m.class),
                MutationKind::Delete => EventType::delete(m.class),
                MutationKind::Modify(attr) => EventType::modify(m.class, attr),
                MutationKind::Generalize => EventType::generalize(m.class),
                MutationKind::Specialize => EventType::specialize(m.class),
                MutationKind::Select => EventType::select(m.class),
            };
            occs.push(self.eb.append(ty, m.oid));
        }
        self.stats.events += occs.len() as u64;
        occs
    }

    /// The reaction loop. For `Immediate`, considers immediate rules until
    /// none is triggered; for `Deferred` (commit time), drains deferred
    /// rules *and* any immediate rules their actions re-trigger.
    fn react(&mut self, phase: CouplingMode) -> Result<()> {
        loop {
            self.support.check(&mut self.rules, &self.eb, self.eb.now());
            let name = match phase {
                CouplingMode::Immediate => self.rules.select_next(CouplingMode::Immediate),
                CouplingMode::Deferred => self
                    .rules
                    .select_next(CouplingMode::Immediate)
                    .or_else(|| self.rules.select_next(CouplingMode::Deferred)),
            };
            let Some(name) = name else { break };
            let name = name.to_owned();
            self.steps_this_txn += 1;
            if self.steps_this_txn > self.config.max_rule_steps {
                return Err(ExecError::RuleLimitExceeded {
                    limit: self.config.max_rule_steps,
                });
            }
            self.consider_and_execute(&name)?;
        }
        Ok(())
    }

    /// Consideration + (possibly) execution of one rule.
    fn consider_and_execute(&mut self, name: &str) -> Result<()> {
        let def = self.rules.def(name)?.clone();
        let now = self.eb.now();
        let window = self.rules.state(name)?.condition_window(now);
        let bindings: Vec<Binding> =
            evaluate_condition(&def.condition, &self.schema, &self.store, &self.eb, window)?;
        // detrigger exactly at consideration; events generated by the
        // action below are *after* this instant and can re-trigger.
        self.rules.mark_considered(name, now)?;
        self.stats.considerations += 1;
        if bindings.is_empty() {
            return Ok(());
        }
        let muts = execute_actions(&def.actions, &bindings, &self.schema, &mut self.store)?;
        self.stats.executions += 1;
        self.stats.blocks += 1;
        self.handle_events(&muts);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::EventExpr;
    use chimera_model::{AttrDef, AttrType, SchemaBuilder};
    use chimera_rules::condition::{CmpOp, Condition, Formula, Term, VarDecl};
    use chimera_rules::{ActionStmt, ConsumptionMode};

    fn stock_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class(
            "stock",
            None,
            vec![
                AttrDef::new("quantity", AttrType::Integer),
                AttrDef::with_default("max_quantity", AttrType::Integer, Value::Int(100)),
                AttrDef::with_default("min_quantity", AttrType::Integer, Value::Int(0)),
            ],
        )
        .unwrap();
        b.build()
    }

    /// The paper's §2 example rule, end to end:
    ///
    /// ```text
    /// define immediate trigger checkStockQty for stock
    ///   events create
    ///   condition stock(S), occurred(create, S),
    ///             S.quantity > S.max_quantity
    ///   action   modify(stock.quantity, S, S.max_quantity)
    /// end
    /// ```
    fn check_stock_qty(schema: &Schema) -> TriggerDef {
        let stock = schema.class_by_name("stock").unwrap();
        let mut def = TriggerDef::new(
            "checkStockQty",
            EventExpr::prim(EventType::create(stock)),
        );
        def.target = Some(stock);
        def.condition = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![
                Formula::Occurred {
                    expr: EventExpr::prim(EventType::create(stock)),
                    var: "S".into(),
                },
                Formula::Compare {
                    lhs: Term::attr("S", "quantity"),
                    op: CmpOp::Gt,
                    rhs: Term::attr("S", "max_quantity"),
                },
            ],
        };
        def.actions = vec![ActionStmt::Modify {
            var: "S".into(),
            attr: "quantity".into(),
            value: Term::attr("S", "max_quantity"),
        }];
        def
    }

    #[test]
    fn paper_example_rule_end_to_end() {
        let schema = stock_schema();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let mut engine = Engine::new(schema);
        engine.define_trigger(check_stock_qty(engine.schema())).unwrap();
        engine.begin().unwrap();
        let occs = engine
            .exec_block(&[
                Op::Create {
                    class: stock,
                    inits: vec![(q, Value::Int(250))],
                },
                Op::Create {
                    class: stock,
                    inits: vec![(q, Value::Int(50))],
                },
            ])
            .unwrap();
        assert_eq!(occs.len(), 2);
        let over = occs[0].oid;
        let under = occs[1].oid;
        // rule fired set-oriented: only the violating object clamped
        assert_eq!(engine.read_attr(over, "quantity").unwrap(), Value::Int(100));
        assert_eq!(engine.read_attr(under, "quantity").unwrap(), Value::Int(50));
        assert_eq!(engine.stats().considerations, 1);
        assert_eq!(engine.stats().executions, 1);
        engine.commit().unwrap();
    }

    #[test]
    fn rule_cascade_via_action_events() {
        // r1 on create(stock) sets quantity to 5; r2 on modify(quantity)
        // with lower priority observes the cascade.
        let schema = stock_schema();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let mut engine = Engine::new(schema);
        let mut r1 = TriggerDef::new("r1", EventExpr::prim(EventType::create(stock)));
        r1.priority = 10;
        r1.condition = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![Formula::Occurred {
                expr: EventExpr::prim(EventType::create(stock)),
                var: "S".into(),
            }],
        };
        r1.actions = vec![ActionStmt::Modify {
            var: "S".into(),
            attr: "quantity".into(),
            value: Term::int(5),
        }];
        let mut r2 = TriggerDef::new("r2", EventExpr::prim(EventType::modify(stock, q)));
        r2.condition = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![Formula::Occurred {
                expr: EventExpr::prim(EventType::modify(stock, q)),
                var: "S".into(),
            }],
        };
        r2.actions = vec![ActionStmt::Modify {
            var: "S".into(),
            attr: "min_quantity".into(),
            value: Term::int(1),
        }];
        engine.define_trigger(r1).unwrap();
        engine.define_trigger(r2).unwrap();
        engine.begin().unwrap();
        let occs = engine
            .exec_block(&[Op::Create {
                class: stock,
                inits: vec![],
            }])
            .unwrap();
        let oid = occs[0].oid;
        assert_eq!(engine.read_attr(oid, "quantity").unwrap(), Value::Int(5));
        assert_eq!(engine.read_attr(oid, "min_quantity").unwrap(), Value::Int(1));
        assert_eq!(engine.stats().executions, 2);
        engine.commit().unwrap();
    }

    #[test]
    fn deferred_rule_waits_for_commit() {
        let schema = stock_schema();
        let stock = schema.class_by_name("stock").unwrap();
        let mut engine = Engine::new(schema);
        let mut def = TriggerDef::new("d", EventExpr::prim(EventType::create(stock)));
        def.coupling = CouplingMode::Deferred;
        def.condition = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![Formula::Occurred {
                expr: EventExpr::prim(EventType::create(stock)),
                var: "S".into(),
            }],
        };
        def.actions = vec![ActionStmt::Modify {
            var: "S".into(),
            attr: "quantity".into(),
            value: Term::int(42),
        }];
        engine.define_trigger(def).unwrap();
        engine.begin().unwrap();
        let occs = engine
            .exec_block(&[Op::Create {
                class: stock,
                inits: vec![],
            }])
            .unwrap();
        let oid = occs[0].oid;
        // not yet executed
        assert_eq!(engine.read_attr(oid, "quantity").unwrap(), Value::Null);
        engine.commit().unwrap();
        assert_eq!(engine.read_attr(oid, "quantity").unwrap(), Value::Int(42));
    }

    #[test]
    fn non_terminating_cascade_hits_limit() {
        // rule on modify(quantity) that modifies quantity: infinite loop.
        let schema = stock_schema();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let mut engine = Engine::with_config(
            stock_schema(),
            EngineConfig {
                max_rule_steps: 25,
                ..EngineConfig::default()
            },
        );
        let mut def = TriggerDef::new("looper", EventExpr::prim(EventType::modify(stock, q)));
        def.condition = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![Formula::Occurred {
                expr: EventExpr::prim(EventType::modify(stock, q)),
                var: "S".into(),
            }],
        };
        def.actions = vec![ActionStmt::Modify {
            var: "S".into(),
            attr: "quantity".into(),
            value: Term::Add(Box::new(Term::attr("S", "quantity")), Box::new(Term::int(1))),
        }];
        engine.define_trigger(def).unwrap();
        engine.begin().unwrap();
        let oid = engine
            .exec_block(&[Op::Create {
                class: stock,
                inits: vec![(q, Value::Int(0))],
            }])
            .unwrap()[0]
            .oid;
        let err = engine
            .exec_block(&[Op::Modify {
                oid,
                attr: q,
                value: Value::Int(1),
            }])
            .unwrap_err();
        assert!(matches!(err, ExecError::RuleLimitExceeded { .. }));
        let _ = schema;
    }

    #[test]
    fn rollback_undoes_rule_effects() {
        let schema = stock_schema();
        let stock = schema.class_by_name("stock").unwrap();
        let mut engine = Engine::new(schema);
        engine.define_trigger(check_stock_qty(engine.schema())).unwrap();
        engine.begin().unwrap();
        let q = engine.schema().attr_by_name(stock, "quantity").unwrap();
        engine
            .exec_block(&[Op::Create {
                class: stock,
                inits: vec![(q, Value::Int(500))],
            }])
            .unwrap();
        engine.rollback().unwrap();
        assert_eq!(engine.extent(stock).len(), 0);
        assert!(!engine.in_transaction());
    }

    #[test]
    fn composite_event_rule_triggers_once_for_sequence() {
        // trigger on create <= modify(quantity) (same object)
        let schema = stock_schema();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let mut engine = Engine::new(schema);
        let mut def = TriggerDef::new(
            "seq",
            EventExpr::prim(EventType::create(stock))
                .iprec(EventExpr::prim(EventType::modify(stock, q))),
        );
        def.condition = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![Formula::Occurred {
                expr: EventExpr::prim(EventType::create(stock))
                    .iprec(EventExpr::prim(EventType::modify(stock, q))),
                var: "S".into(),
            }],
        };
        def.actions = vec![ActionStmt::Modify {
            var: "S".into(),
            attr: "min_quantity".into(),
            value: Term::int(7),
        }];
        engine.define_trigger(def).unwrap();
        engine.begin().unwrap();
        let oid = engine
            .exec_block(&[Op::Create {
                class: stock,
                inits: vec![],
            }])
            .unwrap()[0]
            .oid;
        // creation alone must not fire the rule
        assert_eq!(engine.stats().executions, 0);
        engine
            .exec_block(&[Op::Modify {
                oid,
                attr: q,
                value: Value::Int(3),
            }])
            .unwrap();
        assert_eq!(engine.stats().executions, 1);
        assert_eq!(engine.read_attr(oid, "min_quantity").unwrap(), Value::Int(7));
        engine.commit().unwrap();
    }

    #[test]
    fn select_events_emitted_when_configured() {
        let schema = stock_schema();
        let stock = schema.class_by_name("stock").unwrap();
        let mut engine = Engine::new(schema);
        engine.begin().unwrap();
        engine
            .exec_block(&[Op::Create {
                class: stock,
                inits: vec![],
            }])
            .unwrap();
        let occs = engine
            .exec_block(&[Op::Select {
                class: stock,
                deep: true,
            }])
            .unwrap();
        assert_eq!(occs.len(), 1);
        assert_eq!(occs[0].ty, EventType::select(stock));
        engine.commit().unwrap();
    }

    #[test]
    fn external_events_trigger_rules() {
        let schema = stock_schema();
        let stock = schema.class_by_name("stock").unwrap();
        let mut engine = Engine::new(schema);
        let mut def = TriggerDef::new("onTick", EventExpr::prim(EventType::external(stock, 1)));
        def.actions = vec![ActionStmt::Create {
            class: "stock".into(),
            inits: vec![],
        }];
        engine.define_trigger(def).unwrap();
        // outside a transaction: rejected
        assert!(matches!(
            engine.raise_external(&[(stock, 1, Oid(0))]),
            Err(ExecError::NoActiveTransaction)
        ));
        engine.begin().unwrap();
        let occs = engine.raise_external(&[(stock, 1, Oid(0))]).unwrap();
        assert_eq!(occs.len(), 1);
        assert_eq!(occs[0].ty, EventType::external(stock, 1));
        assert_eq!(occs[0].oid, Oid(0));
        // the rule reacted by creating a stock object
        assert_eq!(engine.extent(stock).len(), 1);
        // unknown channel class is rejected
        assert!(engine.raise_external(&[(ClassId(99), 0, Oid(0))]).is_err());
        engine.commit().unwrap();
    }

    #[test]
    fn transaction_state_errors() {
        let mut engine = Engine::new(stock_schema());
        assert!(matches!(
            engine.exec_block(&[]),
            Err(ExecError::NoActiveTransaction)
        ));
        assert!(matches!(engine.commit(), Err(ExecError::NoActiveTransaction)));
        assert!(matches!(
            engine.rollback(),
            Err(ExecError::NoActiveTransaction)
        ));
        engine.begin().unwrap();
        assert!(matches!(engine.begin(), Err(ExecError::TransactionActive)));
        engine.commit().unwrap();
    }

    #[test]
    fn preserving_rule_sees_whole_transaction() {
        // preserving rule counts both creations even after a consideration
        let schema = stock_schema();
        let stock = schema.class_by_name("stock").unwrap();
        let mut engine = Engine::new(schema);
        let mut def = TriggerDef::new("p", EventExpr::prim(EventType::create(stock)));
        def.consumption = ConsumptionMode::Preserving;
        def.condition = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![Formula::Occurred {
                expr: EventExpr::prim(EventType::create(stock)),
                var: "S".into(),
            }],
        };
        def.actions = vec![ActionStmt::Modify {
            var: "S".into(),
            attr: "min_quantity".into(),
            value: Term::int(1),
        }];
        engine.define_trigger(def).unwrap();
        engine.begin().unwrap();
        let a = engine
            .exec_block(&[Op::Create {
                class: stock,
                inits: vec![],
            }])
            .unwrap()[0]
            .oid;
        let b = engine
            .exec_block(&[Op::Create {
                class: stock,
                inits: vec![],
            }])
            .unwrap()[0]
            .oid;
        // after the second firing, BOTH objects were (re)bound: preserving
        // keeps the first creation visible.
        assert_eq!(engine.read_attr(a, "min_quantity").unwrap(), Value::Int(1));
        assert_eq!(engine.read_attr(b, "min_quantity").unwrap(), Value::Int(1));
        assert_eq!(engine.stats().executions, 2);
        engine.commit().unwrap();
    }
}
