//! The log₂-bucketed latency histogram: 64 fixed power-of-two
//! nanosecond buckets behind relaxed atomics.
//!
//! Bucket `i` holds every sample `ns` with `floor(log2(max(ns, 1))) ==
//! i` — that is, the half-open value range `[2^i, 2^(i+1))`, with the
//! samples `0` and `1` sharing bucket 0. The bucket index is one
//! `leading_zeros` instruction, and recording is exactly **one relaxed
//! `fetch_add`** on the bucket — no count, no sum, no max register —
//! so the hot path pays one `Instant` delta plus one uncontended
//! atomic increment. Everything else (count, quantiles, max) is
//! derived at read time by summing the buckets ("merge-on-read").
//!
//! Quantile estimates are therefore bucket-granular: a reported p99 is
//! the *lower bound* (`2^i`) of the bucket holding the rank-`⌈q·n⌉`
//! sample, which is within one power-of-two bucket of the exact value.
//! The property suite pins this against a sorted-vec oracle.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per power of two a u64 nanosecond value can
/// start with. `2^63` ns is ~292 years, so the top bucket is
/// unreachable in practice but keeps the index math branch-free.
pub const BUCKETS: usize = 64;

/// The bucket a nanosecond sample lands in: `floor(log2(ns | 1))`.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    (63 - (ns | 1).leading_zeros()) as usize
}

/// The smallest value bucket `i` holds (its representative value for
/// quantile reporting): `2^i`.
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    1u64 << i
}

/// The largest value bucket `i` holds: `2^(i+1) - 1` (saturating for
/// the top bucket).
#[inline]
pub fn bucket_ceil(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// One live histogram: 64 relaxed atomic buckets. Writers share it
/// freely (the recorder shards per worker anyway, so contention is
/// already rare); readers snapshot into a [`HistSnapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one nanosecond sample: one relaxed `fetch_add`.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold this histogram's buckets into a snapshot (merge-on-read).
    pub fn merge_into(&self, snap: &mut HistSnapshot) {
        for (i, b) in self.buckets.iter().enumerate() {
            snap.buckets[i] += b.load(Ordering::Relaxed);
        }
    }
}

/// A read-time copy of one histogram (possibly merged over several
/// per-worker shards), with the derived views: count, quantiles, max.
/// This is also the form that travels over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// The stage/series name, e.g. `"queue_wait"`.
    pub name: String,
    /// Bucket counts, exactly [`BUCKETS`] entries.
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// An empty snapshot for `name`.
    pub fn empty(name: impl Into<String>) -> HistSnapshot {
        HistSnapshot {
            name: name.into(),
            buckets: vec![0; BUCKETS],
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Add another snapshot's buckets into this one. The merge of two
    /// histograms is exactly the histogram of the union of their
    /// samples (pinned by the property suite).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (i, b) in other.buckets.iter().enumerate().take(BUCKETS) {
            self.buckets[i] += b;
        }
    }

    /// The bucket-floor estimate of quantile `q` in `[0, 1]`: the lower
    /// bound `2^i` of the bucket containing the rank-`⌈q·n⌉` sample
    /// (rank clamped to `[1, n]`). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }
    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Bucket-floor estimate of the maximum recorded sample: the lower
    /// bound of the highest non-empty bucket (0 when empty). Bucket
    /// granular, like the quantiles — recording keeps no max register.
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(bucket_floor)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        for k in 1..63usize {
            assert_eq!(bucket_of(1u64 << k), k, "2^{k} starts bucket {k}");
            assert_eq!(bucket_of((1u64 << k) - 1), k - 1, "2^{k}-1 ends bucket {}", k - 1);
        }
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_and_max_from_known_samples() {
        let h = Histogram::new();
        // 90 fast samples in [16, 32), 10 slow in [1024, 2048)
        for _ in 0..90 {
            h.record(20);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        let mut s = HistSnapshot::empty("t");
        h.merge_into(&mut s);
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), 16);
        assert_eq!(s.p90(), 16);
        assert_eq!(s.p99(), 1024);
        assert_eq!(s.max(), 1024);
        assert_eq!(s.quantile(0.0), 16); // rank clamps to 1
        assert_eq!(s.quantile(1.0), 1024);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = HistSnapshot::empty("t");
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max(), 0);
    }
}
