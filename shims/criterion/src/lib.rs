//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no crates.io access, so this shim implements the
//! subset of the Criterion API the `chimera-bench` targets use. Like the
//! real crate it has two modes, chosen from the CLI arguments cargo passes
//! to a `harness = false` target:
//!
//! * **measure mode** (`cargo bench` passes `--bench`): each benchmark is
//!   warmed up briefly, then timed over an adaptive iteration count and a
//!   mean ns/iter line is printed. No statistics, plots, or outlier
//!   analysis — just honest wall-clock means, enough for the bench-driven
//!   perf work ROADMAP.md plans.
//! * **test mode** (anything else, e.g. `cargo test` running the bench
//!   binary): every benchmark closure runs exactly once so `cargo test`
//!   stays fast while still executing each bench body.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched iteration sizes its batches. Accepted for API
/// compatibility; the shim always runs one setup per routine call.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `new("op", param)` or `from_parameter(param)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    measure: bool,
    /// (total elapsed, iterations) of the measured pass, if any.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measure {
            black_box(routine());
            return;
        }
        // Warm up and estimate cost with a short pilot run.
        let pilot_start = Instant::now();
        black_box(routine());
        let pilot = pilot_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / pilot.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if !self.measure {
            let input = setup();
            black_box(routine(input));
            return;
        }
        let input = setup();
        let pilot_start = Instant::now();
        black_box(routine(input));
        let pilot = pilot_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / pilot.as_nanos()).clamp(1, 100_000) as u64;
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.result = Some((measured, iters));
    }
}

fn report(group: &str, id: &str, throughput: Option<Throughput>, result: Option<(Duration, u64)>) {
    let Some((elapsed, iters)) = result else {
        return;
    };
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    let mut line = format!("{group}/{id}: {per_iter:.1} ns/iter ({iters} iters)");
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (per_iter / 1e9);
            line.push_str(&format!(", {rate:.0} elem/s"));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (per_iter / 1e9);
            line.push_str(&format!(", {rate:.0} B/s"));
        }
        None => {}
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes its own iteration counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measure: self.criterion.measure,
            result: None,
        };
        f(&mut b);
        report(&self.name, &id.id, self.throughput, b.result);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            measure: self.criterion.measure,
            result: None,
        };
        f(&mut b, input);
        report(&self.name, &id.id, self.throughput, b.result);
        self
    }

    pub fn finish(self) {}
}

/// The top-level harness handle passed to every bench function.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench invokes harness = false targets with `--bench`;
        // anything else (cargo test) gets the fast single-shot mode.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measure: self.measure,
            result: None,
        };
        f(&mut b);
        report("bench", id, None, b.result);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
