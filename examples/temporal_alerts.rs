//! Temporal alerting with clock events — the HiPAC-style extension.
//!
//! Scenario: orders must be filled before the next periodic audit tick.
//! A trigger listens on the composite `external(clock#AUDIT) + -modify
//! (order.filled)` — "an audit tick arrived and no order was filled since
//! the last consideration" — and escalates every still-open order. A
//! second pattern uses the `Times(n, E)` runtime detector for a velocity
//! check the level-based calculus cannot express (see
//! `chimera-temporal`'s `times_is_inexpressible` test).
//!
//! Run with: `cargo run --example temporal_alerts`

use chimera::calculus::EventExpr;
use chimera::events::{EventType, Window};
use chimera::exec::{Engine, Op};
use chimera::model::{AttrDef, AttrType, Schema, SchemaBuilder, Value};
use chimera::rules::{ActionStmt, CmpOp, Condition, Formula, Term, TriggerDef, VarDecl};
use chimera::temporal::{ClockDriver, ClockSpec, TimesDetector};

const AUDIT: u32 = 1;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("clock", None, vec![]).expect("schema");
    b.class(
        "order",
        None,
        vec![
            AttrDef::with_default("filled", AttrType::Integer, Value::Int(0)),
            AttrDef::with_default("escalations", AttrType::Integer, Value::Int(0)),
        ],
    )
    .expect("schema");
    b.class(
        "stock",
        None,
        vec![AttrDef::new("price", AttrType::Integer)],
    )
    .expect("schema");
    b.build()
}

fn main() {
    let schema = schema();
    let clock = schema.class_by_name("clock").expect("clock");
    let order = schema.class_by_name("order").expect("order");
    let stock = schema.class_by_name("stock").expect("stock");
    let filled = schema.attr_by_name(order, "filled").expect("filled");
    let price = schema.attr_by_name(stock, "price").expect("price");

    let mut engine = Engine::new(schema.clone());

    // deadline trigger: audit tick + absence of any fill since the last
    // consideration ⇒ bump `escalations` on every still-open order.
    let expr = EventExpr::prim(EventType::external(clock, AUDIT))
        .and(EventExpr::prim(EventType::modify(order, filled)).not());
    println!("deadline trigger events: {}", expr.render(&schema));
    let mut escalate = TriggerDef::new("escalateUnfilled", expr);
    escalate.condition = Condition {
        decls: vec![VarDecl {
            name: "O".into(),
            class: "order".into(),
        }],
        formulas: vec![Formula::Compare {
            lhs: Term::attr("O", "filled"),
            op: CmpOp::Eq,
            rhs: Term::int(0),
        }],
    };
    escalate.actions = vec![ActionStmt::Modify {
        var: "O".into(),
        attr: "escalations".into(),
        value: Term::Add(
            Box::new(Term::attr("O", "escalations")),
            Box::new(Term::int(1)),
        ),
    }];
    engine.define_trigger(escalate).expect("define");

    // periodic audit: one tick 3 logical instants into each transaction
    let mut driver = ClockDriver::new(&engine, clock);
    driver.register(ClockSpec::After { delay: 3 }, AUDIT);

    // ── transaction 1: a fill happens before the audit tick ──────────
    // The negation observes the rule's consumption window; the fill is in
    // it, so the audit passes quietly.
    engine.begin().expect("begin");
    let o1 = engine
        .exec_block(&[Op::Create {
            class: order,
            inits: vec![],
        }])
        .expect("block")[0]
        .oid;
    let o2 = engine
        .exec_block(&[Op::Create {
            class: order,
            inits: vec![],
        }])
        .expect("block")[0]
        .oid;
    engine
        .exec_block(&[Op::Modify {
            oid: o1,
            attr: filled,
            value: Value::Int(1),
        }])
        .expect("block");
    let delivered = driver.pump(&mut engine).expect("pump");
    engine.commit().expect("commit");
    println!(
        "txn 1: audit tick delivered ({} occurrence), fill was in the window → \
         o1.escalations = {:?}, o2.escalations = {:?}",
        delivered.len(),
        engine.read_attr(o1, "escalations").expect("read"),
        engine.read_attr(o2, "escalations").expect("read"),
    );

    // ── transaction 2: only stock churn, no fills ─────────────────────
    // Rule windows restart at transaction begin; this window contains no
    // `modify(order.filled)`, so the tick finds the negation active and
    // the still-open o2 is escalated (o1 fails the `filled = 0` test).
    engine.begin().expect("begin");
    driver.reset(&engine);
    for i in 0..3 {
        engine
            .exec_block(&[Op::Create {
                class: stock,
                inits: vec![(price, Value::Int(10 + i))],
            }])
            .expect("block");
    }
    driver.pump(&mut engine).expect("pump");
    engine.commit().expect("commit");
    println!(
        "txn 2: quiet audit window → o1.escalations = {:?}, o2.escalations = {:?}",
        engine.read_attr(o1, "escalations").expect("read"),
        engine.read_attr(o2, "escalations").expect("read"),
    );

    engine.begin().expect("begin");

    // velocity check: three price updates of the same stock object inside
    // the transaction — a count, which no level-based event expression can
    // track; the Times detector reads it off the event base.
    let s = engine.extent(stock)[0];
    for v in [20, 30, 40] {
        engine
            .exec_block(&[Op::Modify {
                oid: s,
                attr: price,
                value: Value::Int(v),
            }])
            .expect("block");
    }
    let times3 = TimesDetector::new(EventType::modify(stock, price), 3);
    let w = Window::from_origin(engine.event_base().now());
    println!(
        "velocity check: {} price modifications (Times(3) active: {}, at instant {:?})",
        times3.count(engine.event_base(), w),
        times3.is_active(engine.event_base(), w),
        times3.occurrence_instant(engine.event_base(), w),
    );

    engine.commit().expect("commit");
    println!(
        "done: {} blocks, {} events, {} rule executions",
        engine.stats().blocks,
        engine.stats().events,
        engine.stats().executions
    );
}
