//! Seeded, deterministic fault schedules.
//!
//! A [`FaultPlan`] answers one question per store operation: *does this
//! invocation fail, and how?* Decisions are a pure function of the plan
//! seed and the operation's ordinal (SplitMix64-finalized), so a plan is
//! reproducible independently of thread interleaving — the property the
//! chaos oracle needs to replay a failing case. Two refinements keep
//! plans useful rather than merely random:
//!
//! * a **transient** fault promises the immediate retry of that
//!   operation succeeds (the plan suppresses its next draw), matching
//!   the "would a retry plausibly help" contract the runtime's bounded
//!   retry is built on;
//! * a **permanent** fault is sticky: every subsequent operation on the
//!   plan fails permanently too, modelling a store whose backing device
//!   is gone rather than a one-off hiccup.

use std::collections::HashMap;

/// The store operation a fault directive targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// `StateStore::append` — staging one job record.
    Append,
    /// `StateStore::commit` — the group-commit fsync.
    Commit,
    /// `StateStore::snapshot` — shard snapshot + log truncation.
    Snapshot,
    /// `StateStore::evict_tenant` — one tenant's eviction snapshot.
    Evict,
}

impl StoreOp {
    pub(crate) fn index(self) -> usize {
        match self {
            StoreOp::Append => 0,
            StoreOp::Commit => 1,
            StoreOp::Snapshot => 2,
            StoreOp::Evict => 3,
        }
    }
}

/// How an injected operation fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// A retryable `io::Error` (kind `Interrupted`); the plan guarantees
    /// the immediate retry succeeds.
    Transient,
    /// A non-retryable `io::Error`; the plan stays broken afterwards.
    Permanent,
    /// The ambiguous commit: the wrapped operation is **performed**, then
    /// reported as a transient failure — data reached disk but the
    /// caller cannot know. A retry is safe (commit of nothing staged is
    /// a no-op) and succeeds. Only defined for [`StoreOp::Commit`]: a
    /// torn *append* would duplicate its record on the retry the
    /// transient report invites, so [`FaultPlan::fail_nth`] rejects
    /// `Torn` on any other op.
    Torn,
}

/// Per-operation fault probabilities, in units of 1/10000 per call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosRates {
    /// Transient-failure rate for `append`.
    pub append_transient: u32,
    /// Transient-failure rate for `commit`.
    pub commit_transient: u32,
    /// Torn/ambiguous rate for `commit`.
    pub commit_torn: u32,
    /// Transient-failure rate for `snapshot`.
    pub snapshot_transient: u32,
    /// Transient-failure rate for `evict_tenant`. The runtime gives an
    /// eviction *no* retry — a fault here means the tenant simply stays
    /// resident — so unlike the other transients this one is observable
    /// as a refused eviction, never as latency.
    pub evict_transient: u32,
}

/// A deterministic schedule of storage faults (see module docs).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rates: ChaosRates,
    /// Explicit `(op, nth) -> fault` overrides; consumed when they fire.
    scheduled: HashMap<(usize, u64), StorageFault>,
    /// Calls seen so far, per operation.
    counts: [u64; 4],
    /// Set after a transient/torn fault: the next call of that op is
    /// forced to succeed (the "retry works" guarantee).
    forced_ok: [bool; 4],
    /// Sticky permanent breakage.
    broken: bool,
}

/// The SplitMix64 finalizer — the workspace's standard seeded mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan that never injects anything (useful as a per-shard default
    /// when only one shard is targeted).
    pub fn none() -> FaultPlan {
        FaultPlan::seeded(0, ChaosRates::default())
    }

    /// A probabilistic plan: each operation call draws against `rates`
    /// using a decision derived purely from `(seed, op, ordinal)`.
    pub fn seeded(seed: u64, rates: ChaosRates) -> FaultPlan {
        FaultPlan {
            seed,
            rates,
            scheduled: HashMap::new(),
            counts: [0; 4],
            forced_ok: [false; 4],
            broken: false,
        }
    }

    /// Schedule an explicit fault on the `nth` call (0-based) of `op`,
    /// overriding the probabilistic draw for that call.
    ///
    /// # Panics
    ///
    /// If `fault` is [`StorageFault::Torn`] and `op` is not
    /// [`StoreOp::Commit`] — torn semantics (perform, then report
    /// failure) are safe to retry only for the group commit; a torn
    /// append would land its record *twice* once the runtime retries.
    pub fn fail_nth(mut self, op: StoreOp, nth: u64, fault: StorageFault) -> FaultPlan {
        assert!(
            fault != StorageFault::Torn || op == StoreOp::Commit,
            "StorageFault::Torn is only defined for StoreOp::Commit (a torn {op:?} \
             would duplicate data on retry)"
        );
        self.scheduled.insert((op.index(), nth), fault);
        self
    }

    /// Calls of `op` seen so far.
    pub fn count(&self, op: StoreOp) -> u64 {
        self.counts[op.index()]
    }

    /// Whether a permanent fault has fired.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Decide the fate of the current call of `op` and advance the
    /// schedule. `None` means the operation proceeds normally.
    pub fn next(&mut self, op: StoreOp) -> Option<StorageFault> {
        let i = op.index();
        let n = self.counts[i];
        self.counts[i] += 1;
        if self.broken {
            return Some(StorageFault::Permanent);
        }
        let fault = match self.scheduled.remove(&(i, n)) {
            Some(f) => Some(f),
            None if self.forced_ok[i] => {
                self.forced_ok[i] = false;
                return None;
            }
            None => self.draw(op, n),
        };
        match fault {
            Some(StorageFault::Permanent) => self.broken = true,
            Some(_) => self.forced_ok[i] = true,
            None => {}
        }
        fault
    }

    fn draw(&self, op: StoreOp, n: u64) -> Option<StorageFault> {
        let (transient, torn) = match op {
            StoreOp::Append => (self.rates.append_transient, 0),
            StoreOp::Commit => (self.rates.commit_transient, self.rates.commit_torn),
            StoreOp::Snapshot => (self.rates.snapshot_transient, 0),
            StoreOp::Evict => (self.rates.evict_transient, 0),
        };
        if transient == 0 && torn == 0 {
            return None;
        }
        let roll = mix(self.seed ^ mix(((op.index() as u64 + 1) << 56) | n)) % 10_000;
        if roll < torn as u64 {
            Some(StorageFault::Torn)
        } else if roll < (torn + transient) as u64 {
            Some(StorageFault::Transient)
        } else {
            None
        }
    }
}

/// Seeded helper for the net side: the `k`-th value of a SplitMix64
/// stream, exposed so the proxy (and tests sizing cut positions) share
/// one deterministic source.
pub(crate) fn stream(seed: u64, k: u64) -> u64 {
    mix(seed.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_faults_fire_on_their_ordinal() {
        let mut p = FaultPlan::none()
            .fail_nth(StoreOp::Commit, 1, StorageFault::Torn)
            .fail_nth(StoreOp::Append, 0, StorageFault::Transient);
        assert_eq!(p.next(StoreOp::Append), Some(StorageFault::Transient));
        // transient/torn guarantee: the retry succeeds
        assert_eq!(p.next(StoreOp::Append), None);
        assert_eq!(p.next(StoreOp::Commit), None);
        assert_eq!(p.next(StoreOp::Commit), Some(StorageFault::Torn));
        assert_eq!(p.next(StoreOp::Commit), None);
        assert!(!p.is_broken());
    }

    #[test]
    #[should_panic(expected = "only defined for StoreOp::Commit")]
    fn torn_on_append_is_rejected_at_plan_construction() {
        let _ = FaultPlan::none().fail_nth(StoreOp::Append, 0, StorageFault::Torn);
    }

    #[test]
    fn permanent_fault_is_sticky_across_ops() {
        let mut p = FaultPlan::none().fail_nth(StoreOp::Commit, 0, StorageFault::Permanent);
        assert_eq!(p.next(StoreOp::Commit), Some(StorageFault::Permanent));
        assert_eq!(p.next(StoreOp::Commit), Some(StorageFault::Permanent));
        assert_eq!(p.next(StoreOp::Append), Some(StorageFault::Permanent));
        assert_eq!(p.next(StoreOp::Snapshot), Some(StorageFault::Permanent));
        assert!(p.is_broken());
    }

    #[test]
    fn seeded_draws_are_deterministic_and_rate_bounded() {
        let rates = ChaosRates {
            commit_transient: 2_000, // 20%
            ..ChaosRates::default()
        };
        let run = |seed: u64| -> Vec<Option<StorageFault>> {
            let mut p = FaultPlan::seeded(seed, rates);
            (0..200).map(|_| p.next(StoreOp::Commit)).collect()
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seeds diverge");
        let faults = run(42).iter().filter(|f| f.is_some()).count();
        assert!(faults > 0, "20% over 200 draws must fire at least once");
        assert!(faults < 100, "rate is a bound, not a certainty");
        // every injected transient is followed by a forced success
        let seq = run(42);
        for w in seq.windows(2) {
            if w[0] == Some(StorageFault::Transient) {
                assert_eq!(w[1], None, "retry after a transient must succeed");
            }
        }
    }

    #[test]
    fn zero_rate_plan_is_silent() {
        let mut p = FaultPlan::none();
        for _ in 0..100 {
            assert_eq!(p.next(StoreOp::Append), None);
            assert_eq!(p.next(StoreOp::Commit), None);
            assert_eq!(p.next(StoreOp::Snapshot), None);
        }
    }
}
