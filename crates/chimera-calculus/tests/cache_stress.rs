//! Threaded stress for the process-wide sharded compiled-plan cache.
//!
//! Many threads compile/probe/evict concurrently: some hammer *identical*
//! expressions (contending on one `Mutex`-wrapped entry), some walk
//! *distinct* expressions far past the per-shard LRU cap (forcing
//! constant eviction + recompilation), and several event bases alternate
//! under one expression (exercising the per-entry evaluator list and its
//! own eviction cap). Every probe is cross-checked against the
//! interpreted reference evaluator, so the assertions hold under any
//! interleaving; CI runs this binary repeatedly to shake out
//! scheduling-dependent flakiness. The compile-time `Send + Sync` audit
//! of the cache types lives next to them in `chimera-calculus/src/plan.rs`.

use chimera_calculus::{occurred_objects, ts_algebraic, ts_logical, ts_logical_interpreted, EventExpr};
use chimera_events::{EventBase, EventType, Timestamp, Window};
use chimera_model::{ClassId, Oid};

fn et(n: u32) -> EventType {
    EventType::external(ClassId(0), n)
}
fn p(n: u32) -> EventExpr {
    EventExpr::prim(et(n))
}

/// A deterministic little history over `types` types × 4 objects.
fn history(seed: u64, len: usize, types: u32) -> EventBase {
    let mut eb = EventBase::new();
    let mut k = seed;
    for _ in 0..len {
        k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        eb.append(et((k >> 33) as u32 % types), Oid((k >> 13) % 4 + 1));
    }
    eb.tick();
    eb
}

/// Identical expressions from many threads: heavy contention on a single
/// cache entry, results must stay exact throughout.
#[test]
fn contended_identical_expressions_stay_exact() {
    let eb = history(7, 120, 4);
    let exprs = [
        p(0).iand(p(1)),
        p(0).iprec(p(1)).or(p(2)),
        p(0).iand(p(1).inot()),
        p(2).and(p(0).iprec(p(3))),
    ];
    let now = eb.now();
    let w = Window::from_origin(now);
    // reference values once, up front, through the interpreter
    let want: Vec<Vec<_>> = exprs
        .iter()
        .map(|e| {
            (1..=now.raw())
                .map(|t| ts_logical_interpreted(e, &eb, w, Timestamp(t)))
                .collect()
        })
        .collect();
    std::thread::scope(|s| {
        for worker in 0..8usize {
            let eb = &eb;
            let exprs = &exprs;
            let want = &want;
            s.spawn(move || {
                for round in 0..30usize {
                    let e = &exprs[(worker + round) % exprs.len()];
                    let wv = &want[(worker + round) % exprs.len()];
                    for t in 1..=now.raw() {
                        assert_eq!(
                            ts_logical(e, eb, w, Timestamp(t)),
                            wv[(t - 1) as usize],
                            "{e} at t{t} (worker {worker}, round {round})"
                        );
                    }
                    // the algebraic dispatch shares the same cache
                    assert_eq!(ts_algebraic(e, eb, w, now), wv[(now.raw() - 1) as usize]);
                }
            });
        }
    });
}

/// Distinct expressions far beyond the shard caps: concurrent insert +
/// LRU eviction + recompilation must neither deadlock nor corrupt values.
#[test]
fn eviction_pressure_from_distinct_expressions() {
    // 16 shards × 64 cap = 1024 live entries; 8 threads × 400 distinct
    // expressions overflow it several times over
    std::thread::scope(|s| {
        for worker in 0..8u32 {
            s.spawn(move || {
                let eb = history(worker as u64 + 1, 40, 8);
                let w = Window::from_origin(eb.now());
                for i in 0..400u32 {
                    let a = worker * 1000 + i;
                    let expr = p(a % 8).iand(p((a + 1) % 8));
                    let got = ts_logical(&expr, &eb, w, eb.now());
                    assert_eq!(
                        got,
                        ts_logical_interpreted(&expr, &eb, w, eb.now()),
                        "{expr} (worker {worker})"
                    );
                }
            });
        }
    });
}

/// One expression, many event bases, many threads: the per-entry
/// evaluator list (scratch keyed by EB uid, capped) must keep every
/// event base's answers exact while evaluators are evicted and regrown.
#[test]
fn alternating_event_bases_share_one_entry() {
    let expr = p(0).iand(p(1));
    let ebs: Vec<EventBase> = (0..12).map(|i| history(100 + i, 60, 3)).collect();
    let want: Vec<_> = ebs
        .iter()
        .map(|eb| {
            let w = Window::from_origin(eb.now());
            ts_logical_interpreted(&expr, eb, w, eb.now())
        })
        .collect();
    std::thread::scope(|s| {
        for worker in 0..6usize {
            let expr = &expr;
            let ebs = &ebs;
            let want = &want;
            s.spawn(move || {
                for round in 0..40usize {
                    let i = (worker * 7 + round) % ebs.len();
                    let eb = &ebs[i];
                    let w = Window::from_origin(eb.now());
                    assert_eq!(
                        ts_logical(expr, eb, w, eb.now()),
                        want[i],
                        "eb {i} (worker {worker}, round {round})"
                    );
                }
            });
        }
    });
}

/// The instance-plan cache (`occurred` formula path) under the same
/// concurrent identical/distinct mix.
#[test]
fn occurred_cache_stays_exact_under_threads() {
    let eb = history(42, 100, 4);
    let w = Window::from_origin(eb.now());
    let shared = p(0).iand(p(1));
    let want_shared = occurred_objects(&shared, &eb, w).unwrap();
    std::thread::scope(|s| {
        for worker in 0..6u32 {
            let eb = &eb;
            let shared = &shared;
            let want_shared = &want_shared;
            s.spawn(move || {
                for i in 0..60u32 {
                    // alternate the hot shared expression with fresh ones
                    if i % 2 == 0 {
                        assert_eq!(&occurred_objects(shared, eb, w).unwrap(), want_shared);
                    } else {
                        let fresh = p((worker * 100 + i) % 4).iprec(p((i + 1) % 4));
                        let objs = occurred_objects(&fresh, eb, w).unwrap();
                        assert!(objs.windows(2).all(|p| p[0] < p[1]), "sorted + distinct");
                    }
                }
            });
        }
    });
}
