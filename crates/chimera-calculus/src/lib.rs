//! # chimera-calculus
//!
//! The event calculus of *Composite Events in Chimera* (Meo, Psaila, Ceri —
//! EDBT 1996): the paper's primary contribution.
//!
//! The calculus composes primitive event types with a **minimal set of
//! orthogonal operators** along three dimensions (Fig. 2):
//!
//! * the *boolean* dimension — conjunction, disjunction, negation;
//! * the *temporal* dimension — precedence;
//! * the *granularity* dimension — each operator exists in a
//!   **set-oriented** form (any affected objects) and an
//!   **instance-oriented** form (all components on the *same* object).
//!
//! Semantics is given by the signed-timestamp function `ts(E, t)`
//! (per-object: `ots(E, t, oid)`): positive iff the expression is *active*,
//! in which case the value is the activation stamp; negative (= `-t`)
//! otherwise. A rule is triggered when the `ts` of its event expression
//! turns positive over a non-empty observation window (§4.4).
//!
//! Module map:
//!
//! * [`expr`] — the expression AST, well-formedness, Fig. 1/2 metadata;
//! * [`ts`] — set-oriented evaluation, both the paper's *logical-style*
//!   and *algebraic-style* definitions (§4.2), cross-checked in tests;
//! * [`instance`] — per-object `ots` evaluation and the instance→set
//!   boundary (§4.3);
//! * [`occurrence`] — occurrence enumeration for the `occurred` and `at`
//!   event formulas (§3.3);
//! * [`rewrite`] — the algebraic laws of §4.2 (De Morgan, associativity,
//!   distributivity, precedence factoring) and a law-preserving simplifier;
//! * [`optimize`] — the §5.1 static optimization: derivation and
//!   simplification rules computing the variation set `V(E)` and the
//!   arrival-relevance filter used by the trigger support;
//! * [`plan`] — compiled evaluation plans: flat arena op arrays with
//!   interned leaf slots and a reusable per-object stamp scratchpad, the
//!   production path for the §4.3 instance→set boundary (wired into
//!   [`ts_logical`]/[`ts_algebraic`] and cached per rule by the engine);
//! * [`incremental`] — a compact per-rule detector maintaining `ts`
//!   online in O(|expr|) per arrival, the §5 implementation sketch taken
//!   to its conclusion (observably equivalent to the from-scratch
//!   evaluators, property-tested); its node arenas are the compiled
//!   plans of [`plan`].

pub mod error;
pub mod expr;
pub mod incremental;
pub mod instance;
pub mod occurrence;
pub mod optimize;
pub mod plan;
pub mod rewrite;
pub mod ts;

pub use error::CalculusError;
pub use expr::{EventExpr, OperatorInfo, FIG1_OPERATORS};
pub use incremental::IncrementalTs;
pub use instance::{boundary_ts_algebraic, boundary_ts_logical, ots_algebraic, ots_logical};
pub use occurrence::{at_occurrences, occurred_objects};
pub use optimize::{RelevanceFilter, Scope, Sign, Variation, VariationSet};
pub use plan::{Plan, PlanEval};
pub use rewrite::{nnf, simplify, Law, LAWS};
pub use ts::{
    ts_algebraic, ts_algebraic_interpreted, ts_logical, ts_logical_interpreted, TsVal,
};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, CalculusError>;
