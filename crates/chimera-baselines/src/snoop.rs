//! Snoop-style *recent context* detector (§1.1).
//!
//! Snoop detects composites with an operator tree whose nodes keep the
//! most recent constituent occurrences (the "recent" context) and emit a
//! composite occurrence whenever a terminator arrives. This baseline
//! supports the negation-free, set-oriented fragment with conjunction,
//! disjunction and sequence.
//!
//! Emission instants coincide with the calculus' *fresh activation
//! instants* — event arrivals `te` with `ts(E, te) = te` — which is what
//! the agreement tests assert (the same notion `at` uses on the instance
//! level). Like Ode's automaton, the model cannot express negation,
//! instance operators, or Chimera's consumption-window semantics.

use chimera_calculus::{CalculusError, EventExpr};
use chimera_events::{EventOccurrence, Timestamp};

#[derive(Debug, Clone)]
enum Node {
    Prim(chimera_events::EventType),
    Or(usize, usize),
    And(usize, usize),
    Seq(usize, usize),
}

/// Per-node recent state: the most recent emission instant.
#[derive(Debug, Clone)]
pub struct SnoopRecentDetector {
    nodes: Vec<Node>,
    recent: Vec<Option<Timestamp>>,
    root: usize,
}

impl SnoopRecentDetector {
    /// Compile an expression (negation-free, set-oriented fragment only).
    pub fn compile(expr: &EventExpr) -> Result<Self, CalculusError> {
        let mut nodes = Vec::new();
        let root = Self::build(expr, &mut nodes)?;
        let recent = vec![None; nodes.len()];
        Ok(SnoopRecentDetector {
            nodes,
            recent,
            root,
        })
    }

    fn build(expr: &EventExpr, nodes: &mut Vec<Node>) -> Result<usize, CalculusError> {
        let node = match expr {
            EventExpr::Prim(ty) => Node::Prim(*ty),
            EventExpr::Or(a, b) => {
                let (na, nb) = (Self::build(a, nodes)?, Self::build(b, nodes)?);
                Node::Or(na, nb)
            }
            EventExpr::And(a, b) => {
                let (na, nb) = (Self::build(a, nodes)?, Self::build(b, nodes)?);
                Node::And(na, nb)
            }
            EventExpr::Prec(a, b) => {
                let (na, nb) = (Self::build(a, nodes)?, Self::build(b, nodes)?);
                Node::Seq(na, nb)
            }
            _ => return Err(CalculusError::SetOrientedFormula),
        };
        nodes.push(node);
        Ok(nodes.len() - 1)
    }

    /// Feed one event; returns the root's emissions for this event.
    pub fn feed(&mut self, ev: &EventOccurrence) -> Vec<Timestamp> {
        let n = self.nodes.len();
        // emissions per node for this event
        let mut emitted: Vec<Option<Timestamp>> = vec![None; n];
        let prev = self.recent.clone();
        for i in 0..n {
            let e = match &self.nodes[i] {
                Node::Prim(ty) => (ev.ty == *ty).then_some(ev.ts),
                Node::Or(a, b) => emitted[*a].max(emitted[*b]),
                Node::And(a, b) => {
                    // a terminator completes if the other side has a
                    // recent (or simultaneous) occurrence.
                    let left = emitted[*a].and_then(|t| {
                        prev[*b].or(emitted[*b]).map(|o| t.max(o))
                    });
                    let right = emitted[*b].and_then(|t| {
                        prev[*a].or(emitted[*a]).map(|o| t.max(o))
                    });
                    left.max(right)
                }
                Node::Seq(a, b) => emitted[*b].and_then(|t| {
                    // initiator strictly precedes the terminator
                    prev[*a].filter(|ia| *ia < t).map(|_| t)
                }),
            };
            emitted[i] = e;
            if let Some(t) = e {
                self.recent[i] = Some(self.recent[i].map_or(t, |r| r.max(t)));
            }
        }
        emitted[self.root].into_iter().collect()
    }

    /// Process a whole stream, collecting all root emissions.
    pub fn detect_all(&mut self, stream: &[EventOccurrence]) -> Vec<Timestamp> {
        let mut out = Vec::new();
        for ev in stream {
            out.extend(self.feed(ev));
        }
        out
    }

    /// Clear all recent state.
    pub fn reset(&mut self) {
        self.recent.iter_mut().for_each(|r| *r = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::{ts_logical, EventExpr};
    use chimera_events::{EventBase, EventType, Window};
    use chimera_model::{ClassId, Oid};

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }

    fn run(expr: &EventExpr, stream: &[u32]) -> (Vec<Timestamp>, Vec<Timestamp>) {
        let mut d = SnoopRecentDetector::compile(expr).unwrap();
        let mut eb = EventBase::new();
        let mut occs = Vec::new();
        for (i, &tyn) in stream.iter().enumerate() {
            occs.push(eb.append_at(et(tyn), Oid(1), Timestamp(i as u64 + 1)));
        }
        let emissions = d.detect_all(&occs);
        // calculus fresh-activation instants
        let now = Timestamp(stream.len() as u64);
        let w = Window::from_origin(now);
        let fresh: Vec<Timestamp> = occs
            .iter()
            .map(|o| o.ts)
            .filter(|&te| {
                ts_logical(expr, &eb, w, te).activation() == Some(te)
            })
            .collect();
        (emissions, fresh)
    }

    #[test]
    fn sequence_emissions_match_fresh_activations() {
        let expr = p(0).prec(p(1));
        for stream in [
            vec![0u32, 1],
            vec![1, 0],
            vec![0, 1, 1],
            vec![0, 2, 1, 0, 1],
            vec![1, 1],
        ] {
            let (em, fresh) = run(&expr, &stream);
            assert_eq!(em, fresh, "stream {stream:?}");
        }
    }

    #[test]
    fn conjunction_emissions_match_fresh_activations() {
        let expr = p(0).and(p(1));
        for stream in [
            vec![0u32, 1],
            vec![1, 0],
            vec![0, 1, 0],
            vec![0, 0],
            vec![2, 0, 2, 1],
        ] {
            let (em, fresh) = run(&expr, &stream);
            assert_eq!(em, fresh, "stream {stream:?}");
        }
    }

    #[test]
    fn disjunction_emissions_match_fresh_activations() {
        let expr = p(0).or(p(1));
        for stream in [vec![0u32, 1, 2, 0], vec![2, 2], vec![1]] {
            let (em, fresh) = run(&expr, &stream);
            assert_eq!(em, fresh, "stream {stream:?}");
        }
    }

    #[test]
    fn composite_tree_agreement() {
        let exprs = [
            p(0).and(p(1)).prec(p(2)),
            p(0).or(p(1)).and(p(2)),
            p(0).prec(p(1)).or(p(2).prec(p(0))),
        ];
        let streams: Vec<Vec<u32>> = vec![
            vec![0, 1, 2],
            vec![2, 1, 0],
            vec![0, 2, 1, 2],
            vec![1, 0, 2, 0, 1],
        ];
        for expr in &exprs {
            for stream in &streams {
                let (em, fresh) = run(expr, stream);
                assert_eq!(em, fresh, "{expr} on {stream:?}");
            }
        }
    }

    #[test]
    fn negation_and_instance_rejected() {
        assert!(SnoopRecentDetector::compile(&p(0).not()).is_err());
        assert!(SnoopRecentDetector::compile(&p(0).iprec(p(1))).is_err());
    }

    #[test]
    fn reset_clears_state() {
        let mut d = SnoopRecentDetector::compile(&p(0).prec(p(1))).unwrap();
        let mut eb = EventBase::new();
        let a = eb.append_at(et(0), Oid(1), Timestamp(1));
        let b = eb.append_at(et(1), Oid(1), Timestamp(2));
        assert_eq!(d.detect_all(&[a, b]).len(), 1);
        d.reset();
        let b2 = eb.append_at(et(1), Oid(1), Timestamp(3));
        assert!(d.feed(&b2).is_empty(), "initiator forgotten after reset");
    }
}
