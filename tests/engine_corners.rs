//! Engine corner cases: trigger lifecycle, migrations through scripts,
//! select events as triggers, targeted-rule enforcement, and transaction
//! isolation of rule windows.

use chimera::calculus::EventExpr;
use chimera::events::EventType;
use chimera::exec::{Engine, Op};
use chimera::interp::Interpreter;
use chimera::model::{AttrDef, AttrType, SchemaBuilder, Value};
use chimera::rules::condition::{Condition, Formula, Term, VarDecl};
use chimera::rules::{ActionStmt, TriggerDef};

#[test]
fn drop_trigger_stops_reactions() {
    let mut b = SchemaBuilder::new();
    b.class("c", None, vec![AttrDef::new("x", AttrType::Integer)])
        .unwrap();
    let schema = b.build();
    let class = schema.class_by_name("c").unwrap();
    let mut engine = Engine::new(schema);
    let mut def = TriggerDef::new("t", EventExpr::prim(EventType::create(class)));
    def.condition = Condition {
        decls: vec![VarDecl {
            name: "S".into(),
            class: "c".into(),
        }],
        formulas: vec![Formula::Occurred {
            expr: EventExpr::prim(EventType::create(class)),
            var: "S".into(),
        }],
    };
    def.actions = vec![ActionStmt::Modify {
        var: "S".into(),
        attr: "x".into(),
        value: Term::int(1),
    }];
    engine.define_trigger(def).unwrap();
    engine.begin().unwrap();
    let a = engine
        .exec_block(&[Op::Create {
            class,
            inits: vec![],
        }])
        .unwrap()[0]
        .oid;
    assert_eq!(engine.read_attr(a, "x").unwrap(), Value::Int(1));
    engine.drop_trigger("t").unwrap();
    assert!(engine.drop_trigger("t").is_err(), "double drop");
    let b2 = engine
        .exec_block(&[Op::Create {
            class,
            inits: vec![],
        }])
        .unwrap()[0]
        .oid;
    assert_eq!(engine.read_attr(b2, "x").unwrap(), Value::Null);
    engine.commit().unwrap();
}

#[test]
fn select_event_triggers_rule() {
    // a rule on select(c): auditing reads — Chimera counts select among
    // the event types (§2).
    let mut b = SchemaBuilder::new();
    b.class(
        "c",
        None,
        vec![AttrDef::with_default(
            "reads",
            AttrType::Integer,
            Value::Int(0),
        )],
    )
    .unwrap();
    let schema = b.build();
    let class = schema.class_by_name("c").unwrap();
    let mut engine = Engine::new(schema);
    let mut def = TriggerDef::new("audit", EventExpr::prim(EventType::select(class)));
    def.condition = Condition {
        decls: vec![VarDecl {
            name: "S".into(),
            class: "c".into(),
        }],
        formulas: vec![Formula::Occurred {
            expr: EventExpr::prim(EventType::select(class)),
            var: "S".into(),
        }],
    };
    def.actions = vec![ActionStmt::Modify {
        var: "S".into(),
        attr: "reads".into(),
        value: Term::Add(Box::new(Term::attr("S", "reads")), Box::new(Term::int(1))),
    }];
    engine.define_trigger(def).unwrap();
    engine.begin().unwrap();
    let oid = engine
        .exec_block(&[Op::Create {
            class,
            inits: vec![],
        }])
        .unwrap()[0]
        .oid;
    engine
        .exec_block(&[Op::Select { class, deep: true }])
        .unwrap();
    assert_eq!(engine.read_attr(oid, "reads").unwrap(), Value::Int(1));
    engine.commit().unwrap();
}

#[test]
fn rule_windows_do_not_cross_transactions() {
    // a conjunction rule whose two halves arrive in different committed
    // transactions must NOT fire: windows reset at begin (§4.1: the EB is
    // the log "since the beginning of the transaction").
    let mut b = SchemaBuilder::new();
    b.class("c", None, vec![AttrDef::new("x", AttrType::Integer)])
        .unwrap();
    b.class("d", None, vec![]).unwrap();
    let schema = b.build();
    let c = schema.class_by_name("c").unwrap();
    let d = schema.class_by_name("d").unwrap();
    let mut engine = Engine::new(schema);
    let expr = EventExpr::prim(EventType::create(c)).and(EventExpr::prim(EventType::create(d)));
    let mut def = TriggerDef::new("conj", expr);
    def.actions = vec![ActionStmt::Create {
        class: "d".into(),
        inits: vec![],
    }];
    // empty condition is always-true: track firings through stats
    engine.define_trigger(def).unwrap();

    engine.begin().unwrap();
    engine
        .exec_block(&[Op::Create {
            class: c,
            inits: vec![],
        }])
        .unwrap();
    engine.commit().unwrap();
    assert_eq!(engine.stats().executions, 0);

    engine.begin().unwrap();
    engine
        .exec_block(&[Op::Create {
            class: d,
            inits: vec![],
        }])
        .unwrap();
    engine.commit().unwrap();
    assert_eq!(
        engine.stats().executions,
        0,
        "halves in different transactions must not combine"
    );

    // both in one transaction: fires
    engine.begin().unwrap();
    engine
        .exec_block(&[
            Op::Create {
                class: c,
                inits: vec![],
            },
            Op::Create {
                class: d,
                inits: vec![],
            },
        ])
        .unwrap();
    engine.commit().unwrap();
    assert_eq!(engine.stats().executions, 1);
}

#[test]
fn migrations_through_scripts_fire_specialize_rules() {
    let mut chim = Interpreter::from_source(
        r#"
define class vehicle
  attributes wheels: integer default 4, tagged: boolean default false
end
define class truck extends vehicle
  attributes axles: integer default 2
end
define immediate trigger onSpecialize
  events specialize(truck)
  condition truck(T), occurred(specialize(truck), T)
  actions modify(T.tagged, true)
end
begin;
let v = create vehicle;
specialize v to truck;
commit;
"#,
    )
    .unwrap();
    chim.run_all().unwrap();
    let v = chim.var("v").unwrap();
    let obj = chim.engine().get_object(v).unwrap();
    assert_eq!(
        chim.engine().schema().class_name(obj.class),
        "truck",
        "migrated"
    );
    assert_eq!(chim.engine().read_attr(v, "tagged").unwrap(), Value::Bool(true));
    assert_eq!(chim.engine().read_attr(v, "axles").unwrap(), Value::Int(2));
}

#[test]
fn generalize_via_script_drops_subclass_attrs() {
    let mut chim = Interpreter::from_source(
        r#"
define class vehicle attributes wheels: integer default 4 end
define class truck extends vehicle attributes axles: integer default 3 end
begin;
let t = create truck;
generalize t to vehicle;
commit;
"#,
    )
    .unwrap();
    chim.run_all().unwrap();
    let t = chim.var("t").unwrap();
    let obj = chim.engine().get_object(t).unwrap();
    assert_eq!(chim.engine().schema().class_name(obj.class), "vehicle");
    assert_eq!(obj.attrs.len(), 1);
    assert!(chim.engine().read_attr(t, "axles").is_err());
}

#[test]
fn empty_condition_rule_runs_once_per_trigger() {
    // no declarations, no formulas: one empty binding tuple → the action
    // runs exactly once per consideration.
    let mut b = SchemaBuilder::new();
    b.class("c", None, vec![]).unwrap();
    b.class("log", None, vec![]).unwrap();
    let schema = b.build();
    let c = schema.class_by_name("c").unwrap();
    let log = schema.class_by_name("log").unwrap();
    let mut engine = Engine::new(schema);
    let mut def = TriggerDef::new("t", EventExpr::prim(EventType::create(c)));
    def.actions = vec![ActionStmt::Create {
        class: "log".into(),
        inits: vec![],
    }];
    engine.define_trigger(def).unwrap();
    engine.begin().unwrap();
    // three creations in ONE block → one consideration → one log entry
    engine
        .exec_block(&[
            Op::Create { class: c, inits: vec![] },
            Op::Create { class: c, inits: vec![] },
            Op::Create { class: c, inits: vec![] },
        ])
        .unwrap();
    assert_eq!(engine.extent(log).len(), 1);
    engine.commit().unwrap();
}
