//! The pluggable storage layer the runtime composes: a [`StateStore`]
//! trait with an [`InMemoryStore`] no-op backend and a [`DurableStore`]
//! built from the group-commit job log plus full-fidelity shard
//! snapshots.
//!
//! Protocol, from the shard worker's point of view:
//!
//! 1. `recover()` once at startup — returns the last shard snapshot (if
//!    any) plus the verified job-log tail to replay, and repairs a torn
//!    tail in place;
//! 2. per job: `append(tenant, record)` *before* executing it;
//! 3. per drained queue batch: `commit()` — **one** fsync covering every
//!    job appended since the previous commit (the group commit that
//!    amortizes the ~ms sync across the batch);
//! 4. occasionally: `snapshot(tenants)` at a safe point — writes the
//!    shard snapshot atomically and truncates the job log.
//!
//! The worker answers clients only after step 3, so the acknowledged
//! prefix is always a subset of the durable prefix.

use crate::joblog::{JobGroup, JobLog, JobRecord};
use crate::shardsnap::{ShardSnapshot, TenantSnapshot};
use crate::{PersistError, Result};
use std::path::{Path, PathBuf};

/// When the durable backend fsyncs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// One sync per appended job (each job is its own group). Maximum
    /// safety granularity, pays the full fsync per job.
    EveryJob,
    /// One sync per explicit [`StateStore::commit`] — the group-commit
    /// mode; every job appended since the last commit shares the fsync.
    GroupCommit,
}

/// Monotonic counters a store exposes for the runtime's stats surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Job records appended (durable backends only).
    pub appends: u64,
    /// fsyncs issued (group commits for the batching backend).
    pub syncs: u64,
    /// Shard snapshots written.
    pub snapshots: u64,
    /// Wall-clock nanoseconds spent inside fsync (cumulative over
    /// `syncs`) — the telemetry layer's ground truth for how much of a
    /// batch's latency the group commit actually bought.
    pub sync_nanos: u64,
}

/// What a store hands back at startup.
#[derive(Debug)]
pub struct ShardRecovery {
    /// The last durable shard snapshot, if one exists.
    pub snapshot: Option<ShardSnapshot>,
    /// Verified job groups to replay on top of the snapshot, in order.
    pub tail: Vec<JobGroup>,
    /// Description of a torn tail that was cut and repaired, if any.
    pub torn: Option<String>,
    /// Per-tenant eviction snapshots newer than the shard snapshot, one
    /// per evicted tenant (see [`StateStore::evict_tenant`]). A tenant
    /// present here supersedes any copy of the same tenant inside
    /// `snapshot`; `tail` groups with `seq > watermark` still apply on
    /// top of it.
    pub evicted: Vec<EvictedTenant>,
}

/// One evicted tenant's durable state as recovered from its
/// `tenant-<id>.tsnap` file.
#[derive(Debug, Clone)]
pub struct EvictedTenant {
    /// The job-log sequence the snapshot covers: every group with
    /// `seq <= watermark` is already folded into `snap`.
    pub watermark: u64,
    /// The tenant's full-fidelity state at the watermark.
    pub snap: TenantSnapshot,
}

/// The storage contract a runtime shard programs against.
pub trait StateStore: Send {
    /// Read back durable state and prepare the store for appending. Must
    /// be called exactly once, before any append.
    fn recover(&mut self) -> Result<ShardRecovery>;
    /// Stage one job intent. Under [`SyncPolicy::EveryJob`] this also
    /// syncs; under group commit it is an in-memory append.
    fn append(&mut self, tenant: u64, record: &JobRecord) -> Result<()>;
    /// Make everything appended since the last commit durable (one
    /// fsync). No-op when nothing is staged.
    fn commit(&mut self) -> Result<()>;
    /// Write a full shard snapshot at the current sequence and truncate
    /// the job log. Callers must only do this at a safe point (no open
    /// transactions) and after a `commit`.
    fn snapshot(&mut self, tenants: &[TenantSnapshot]) -> Result<()>;
    /// Persist one tenant's state so its RAM engine can be dropped
    /// (tenant eviction). Durable backends commit anything staged, then
    /// write the tenant's snapshot to a side file keyed by the covered
    /// log sequence, so [`StateStore::recover`] can hand the tenant back
    /// (plus any newer tail groups) without a full shard snapshot. The
    /// default is a no-op `Ok`: volatile backends have nothing to
    /// persist, and eviction there just frees RAM (the caller keeps its
    /// own copy of `snap`).
    fn evict_tenant(&mut self, snap: &TenantSnapshot) -> Result<()> {
        let _ = snap;
        Ok(())
    }
    /// Durable groups accumulated since the last snapshot (drives the
    /// runtime's periodic-compaction policy).
    fn groups_since_snapshot(&self) -> u64;
    /// Whether this store survives a process crash.
    fn is_durable(&self) -> bool;
    /// Counter snapshot for stats reporting.
    fn counters(&self) -> StoreCounters;
}

/// The no-op backend: tenants live only in RAM, exactly the pre-durable
/// runtime behaviour.
#[derive(Debug, Default)]
pub struct InMemoryStore;

impl StateStore for InMemoryStore {
    fn recover(&mut self) -> Result<ShardRecovery> {
        Ok(ShardRecovery {
            snapshot: None,
            tail: Vec::new(),
            torn: None,
            evicted: Vec::new(),
        })
    }
    fn append(&mut self, _tenant: u64, _record: &JobRecord) -> Result<()> {
        Ok(())
    }
    fn commit(&mut self) -> Result<()> {
        Ok(())
    }
    fn snapshot(&mut self, _tenants: &[TenantSnapshot]) -> Result<()> {
        Ok(())
    }
    fn groups_since_snapshot(&self) -> u64 {
        0
    }
    fn is_durable(&self) -> bool {
        false
    }
    fn counters(&self) -> StoreCounters {
        StoreCounters::default()
    }
}

/// The durable backend: `jobs.wal` (group-commit job log) plus
/// `snap.chi` (full-fidelity shard snapshot) in one shard directory.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    policy: SyncPolicy,
    log: Option<JobLog>,
    snap_seq: u64,
    counters: StoreCounters,
}

impl DurableStore {
    /// Open a store rooted at `dir` (created if missing). Appending is
    /// refused until [`StateStore::recover`] has run.
    pub fn open(dir: &Path, policy: SyncPolicy) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            policy,
            log: None,
            snap_seq: 0,
            counters: StoreCounters::default(),
        })
    }

    /// The job-log path inside the shard directory.
    pub fn log_path(&self) -> PathBuf {
        self.dir.join("jobs.wal")
    }

    /// The snapshot path inside the shard directory.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snap.chi")
    }

    /// The eviction-snapshot path for one tenant.
    pub fn tsnap_path(&self, tenant: u64) -> PathBuf {
        self.dir.join(format!("tenant-{tenant}.tsnap"))
    }

    fn log_mut(&mut self) -> Result<&mut JobLog> {
        self.log
            .as_mut()
            .ok_or_else(|| PersistError::Corrupt("store used before recover()".into()))
    }

    /// Scan the shard directory for `tenant-<id>.tsnap` files and load
    /// the ones still newer than the shard snapshot (`watermark >=
    /// snap_seq`); stale ones — only possible after a crash between a
    /// full snapshot and its tsnap cleanup — are deleted. Each tsnap is
    /// a one-tenant [`ShardSnapshot`] whose `seq` is the watermark, so
    /// the codec (checksums, atomic write) is shared wholesale.
    fn scan_tsnaps(&self) -> Result<Vec<EvictedTenant>> {
        let mut evicted = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name
                .strip_prefix("tenant-")
                .and_then(|rest| rest.strip_suffix(".tsnap"))
            else {
                continue;
            };
            let Ok(tenant) = id.parse::<u64>() else {
                continue;
            };
            let path = entry.path();
            let Some(snap) = ShardSnapshot::read(&path)? else {
                continue;
            };
            if snap.seq < self.snap_seq {
                let _ = std::fs::remove_file(&path);
                continue;
            }
            let Some(ts) = snap.tenants.into_iter().find(|t| t.tenant == tenant) else {
                return Err(PersistError::Corrupt(format!(
                    "tsnap {name} does not contain tenant {tenant}"
                )));
            };
            evicted.push(EvictedTenant {
                watermark: snap.seq,
                snap: ts,
            });
        }
        evicted.sort_by_key(|e| e.snap.tenant);
        Ok(evicted)
    }
}

impl StateStore for DurableStore {
    fn recover(&mut self) -> Result<ShardRecovery> {
        let snapshot = ShardSnapshot::read(&self.snapshot_path())?;
        self.snap_seq = snapshot.as_ref().map_or(0, |s| s.seq);
        let log_path = self.log_path();
        let outcome = JobLog::read(&log_path, self.snap_seq + 1)?;
        JobLog::repair(&log_path, &outcome)?;
        let next_seq = self.snap_seq + 1 + outcome.groups.len() as u64;
        self.log = Some(JobLog::open_append(&log_path, next_seq)?);
        let evicted = self.scan_tsnaps()?;
        Ok(ShardRecovery {
            snapshot,
            tail: outcome.groups,
            torn: outcome.torn,
            evicted,
        })
    }

    fn append(&mut self, tenant: u64, record: &JobRecord) -> Result<()> {
        let every_job = self.policy == SyncPolicy::EveryJob;
        let log = self.log_mut()?;
        log.stage(tenant, record);
        self.counters.appends += 1;
        if every_job {
            let started = std::time::Instant::now();
            self.log_mut()?.sync()?;
            self.counters.syncs += 1;
            self.counters.sync_nanos += started.elapsed().as_nanos() as u64;
        }
        Ok(())
    }

    fn commit(&mut self) -> Result<()> {
        let started = std::time::Instant::now();
        if self.log_mut()?.sync()?.is_some() {
            self.counters.syncs += 1;
            self.counters.sync_nanos += started.elapsed().as_nanos() as u64;
        }
        Ok(())
    }

    fn snapshot(&mut self, tenants: &[TenantSnapshot]) -> Result<()> {
        // seal anything still staged so the snapshot sequence is exact
        self.commit()?;
        let seq = self.log_mut()?.next_seq() - 1;
        let snap = ShardSnapshot {
            seq,
            tenants: tenants.to_vec(),
        };
        snap.write(&self.snapshot_path())?;
        self.log_mut()?.truncate(seq + 1)?;
        self.snap_seq = seq;
        self.counters.snapshots += 1;
        // The full snapshot covers every tenant the caller handed us, so
        // their eviction side files are now stale; best-effort cleanup
        // (recover() deletes stragglers a crash leaves behind).
        for ts in &snap.tenants {
            let _ = std::fs::remove_file(self.tsnap_path(ts.tenant));
        }
        Ok(())
    }

    fn evict_tenant(&mut self, snap: &TenantSnapshot) -> Result<()> {
        // Seal anything staged so the watermark covers every group the
        // tenant's state already reflects.
        self.commit()?;
        let watermark = self.log_mut()?.next_seq() - 1;
        let tsnap = ShardSnapshot {
            seq: watermark,
            tenants: vec![snap.clone()],
        };
        tsnap.write(&self.tsnap_path(snap.tenant))?;
        Ok(())
    }

    fn groups_since_snapshot(&self) -> u64 {
        self.log
            .as_ref()
            .map_or(0, |l| l.next_seq().saturating_sub(self.snap_seq + 1))
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn counters(&self) -> StoreCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chimera-persist-store-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_is_inert() {
        let mut s = InMemoryStore;
        let rec = s.recover().unwrap();
        assert!(rec.snapshot.is_none() && rec.tail.is_empty() && rec.torn.is_none());
        s.append(1, &JobRecord::Begin).unwrap();
        s.commit().unwrap();
        s.snapshot(&[]).unwrap();
        assert!(!s.is_durable());
        assert_eq!(s.counters(), StoreCounters::default());
    }

    #[test]
    fn append_before_recover_is_refused() {
        let dir = tmpdir("norec");
        let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
        assert!(s.append(1, &JobRecord::Begin).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
            s.recover().unwrap();
            s.append(1, &JobRecord::Begin).unwrap();
            s.append(2, &JobRecord::Commit).unwrap();
            s.commit().unwrap();
            s.append(1, &JobRecord::Rollback).unwrap();
            s.commit().unwrap();
            let c = s.counters();
            assert_eq!((c.appends, c.syncs), (3, 2));
            assert!(c.sync_nanos > 0, "syncs happened, so sync time accrued");
            assert_eq!(s.groups_since_snapshot(), 2);
        }
        let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
        let rec = s.recover().unwrap();
        assert!(rec.snapshot.is_none() && rec.torn.is_none());
        assert_eq!(rec.tail.len(), 2);
        assert_eq!(
            rec.tail[0].jobs,
            vec![(1, JobRecord::Begin), (2, JobRecord::Commit)]
        );
        assert_eq!(rec.tail[1].jobs, vec![(1, JobRecord::Rollback)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_job_policy_syncs_per_append() {
        let dir = tmpdir("everyjob");
        let mut s = DurableStore::open(&dir, SyncPolicy::EveryJob).unwrap();
        s.recover().unwrap();
        s.append(1, &JobRecord::Begin).unwrap();
        s.append(1, &JobRecord::Commit).unwrap();
        s.commit().unwrap(); // nothing staged: no extra sync
        let c = s.counters();
        assert_eq!((c.appends, c.syncs), (2, 2));
        assert_eq!(s.groups_since_snapshot(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_and_recovery_resumes() {
        let dir = tmpdir("snap");
        {
            let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
            s.recover().unwrap();
            s.append(1, &JobRecord::Begin).unwrap();
            s.commit().unwrap();
            s.snapshot(&[]).unwrap();
            assert_eq!(s.groups_since_snapshot(), 0);
            s.append(1, &JobRecord::Commit).unwrap();
            s.commit().unwrap();
            assert_eq!(s.groups_since_snapshot(), 1);
        }
        let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
        let rec = s.recover().unwrap();
        let snap = rec.snapshot.expect("snapshot present");
        assert_eq!(snap.seq, 1);
        assert_eq!(rec.tail.len(), 1);
        assert_eq!(rec.tail[0].seq, 2);
        assert_eq!(rec.tail[0].jobs, vec![(1, JobRecord::Commit)]);
        let _ = fs::remove_dir_all(&dir);
    }

    fn tsnap_of(tenant: u64, jobs_applied: u64) -> TenantSnapshot {
        TenantSnapshot {
            tenant,
            jobs_applied,
            job_errors: 0,
            last_error: None,
            objects: vec![],
            next_oid: 0,
            events: vec![],
            trigger_sources: vec![],
            rules: vec![],
            stats: [0; 6],
        }
    }

    #[test]
    fn evicted_tenant_survives_reopen() {
        let dir = tmpdir("evict");
        {
            let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
            s.recover().unwrap();
            s.append(5, &JobRecord::Begin).unwrap();
            s.append(5, &JobRecord::Commit).unwrap();
            s.commit().unwrap();
            s.evict_tenant(&tsnap_of(5, 2)).unwrap();
            assert!(s.tsnap_path(5).exists());
            // the tenant keeps accruing log records after eviction only
            // via *other* tenants' groups; its own state is sealed
            s.append(7, &JobRecord::Begin).unwrap();
            s.commit().unwrap();
        }
        let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
        let rec = s.recover().unwrap();
        assert_eq!(rec.evicted.len(), 1);
        assert_eq!(rec.evicted[0].snap.tenant, 5);
        assert_eq!(rec.evicted[0].snap.jobs_applied, 2);
        assert_eq!(rec.evicted[0].watermark, 1, "one group committed pre-evict");
        assert_eq!(rec.tail.len(), 2, "tail still replays from seq 1");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_snapshot_clears_covered_tsnaps() {
        let dir = tmpdir("evictclear");
        let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
        s.recover().unwrap();
        s.append(5, &JobRecord::Begin).unwrap();
        s.commit().unwrap();
        s.evict_tenant(&tsnap_of(5, 1)).unwrap();
        assert!(s.tsnap_path(5).exists());
        // the runtime folds evicted tenants into every full snapshot, so
        // the side file is covered and cleaned up
        s.snapshot(&[tsnap_of(5, 1)]).unwrap();
        assert!(!s.tsnap_path(5).exists());
        drop(s);
        let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
        let rec = s.recover().unwrap();
        assert!(rec.evicted.is_empty());
        assert_eq!(rec.snapshot.unwrap().tenants.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tsnap_is_deleted_on_recover() {
        let dir = tmpdir("evictstale");
        {
            let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
            s.recover().unwrap();
            s.append(5, &JobRecord::Begin).unwrap();
            s.commit().unwrap();
            s.evict_tenant(&tsnap_of(5, 1)).unwrap();
            // crash-shaped hole: a later full snapshot that *misses* the
            // tsnap cleanup (simulated by snapshotting other tenants)
            s.append(7, &JobRecord::Begin).unwrap();
            s.commit().unwrap();
            s.snapshot(&[tsnap_of(5, 1), tsnap_of(7, 1)]).unwrap();
            // resurrect a stale side file as a crashed cleanup would
            let stale = ShardSnapshot {
                seq: 1,
                tenants: vec![tsnap_of(5, 1)],
            };
            stale.write(&s.tsnap_path(5)).unwrap();
        }
        let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
        let rec = s.recover().unwrap();
        assert!(rec.evicted.is_empty(), "stale tsnap ignored");
        assert!(!s.tsnap_path(5).exists(), "and deleted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_evict_is_a_noop() {
        let mut s = InMemoryStore;
        s.evict_tenant(&tsnap_of(1, 0)).unwrap();
        assert_eq!(s.counters(), StoreCounters::default());
    }

    #[test]
    fn torn_tail_is_repaired_on_recover() {
        let dir = tmpdir("torn");
        {
            let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
            s.recover().unwrap();
            s.append(1, &JobRecord::Begin).unwrap();
            s.commit().unwrap();
            s.append(1, &JobRecord::Commit).unwrap();
            s.commit().unwrap();
        }
        let log = dir.join("jobs.wal");
        let full = fs::read(&log).unwrap();
        fs::write(&log, &full[..full.len() - 3]).unwrap(); // tear group 2
        let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
        let rec = s.recover().unwrap();
        assert!(rec.torn.is_some());
        assert_eq!(rec.tail.len(), 1);
        // appended groups continue the repaired sequence
        s.append(2, &JobRecord::Begin).unwrap();
        s.commit().unwrap();
        drop(s);
        let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
        let rec = s.recover().unwrap();
        assert!(rec.torn.is_none());
        assert_eq!(rec.tail.len(), 2);
        assert_eq!(rec.tail[1].jobs, vec![(2, JobRecord::Begin)]);
        let _ = fs::remove_dir_all(&dir);
    }
}
