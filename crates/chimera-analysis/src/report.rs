//! The combined analysis report.

use crate::confluence::{confluence_warnings, ConfluenceWarning};
use crate::graph::{TerminationVerdict, TriggeringGraph};
use crate::Result;
use chimera_model::Schema;
use chimera_rules::TriggerDef;
use std::fmt;

/// Everything the static analyses have to say about a rule set.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The triggering graph.
    pub graph: TriggeringGraph,
    /// Conservative termination verdict.
    pub termination: TerminationVerdict,
    /// Cascade-depth bound for acyclic rule sets.
    pub max_cascade_depth: Option<usize>,
    /// Unordered conflicting pairs.
    pub confluence: Vec<ConfluenceWarning>,
}

impl AnalysisReport {
    /// No warnings of any kind?
    pub fn is_clean(&self) -> bool {
        self.termination.is_terminating() && self.confluence.is_empty()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "triggering graph: {} rules, {} edges",
            self.graph.len(),
            self.graph.edges().len()
        )?;
        writeln!(f, "termination: {}", self.termination)?;
        if let Some(d) = self.max_cascade_depth {
            writeln!(f, "max cascade depth: {d}")?;
        }
        if self.confluence.is_empty() {
            writeln!(f, "confluence: no unordered conflicting pairs")?;
        } else {
            writeln!(f, "confluence warnings:")?;
            for w in &self.confluence {
                writeln!(f, "  - {w}")?;
            }
        }
        Ok(())
    }
}

/// Run all analyses over a rule set.
pub fn analyze(defs: &[TriggerDef], schema: &Schema) -> Result<AnalysisReport> {
    let graph = TriggeringGraph::build(defs, schema)?;
    let termination = graph.termination();
    let max_cascade_depth = graph.max_cascade_depth();
    let confluence = confluence_warnings(defs, schema)?;
    Ok(AnalysisReport {
        graph,
        termination,
        max_cascade_depth,
        confluence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::EventExpr;
    use chimera_events::EventType;
    use chimera_model::{AttrDef, AttrType, SchemaBuilder};
    use chimera_rules::{ActionStmt, Condition, Term, VarDecl};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class("c", None, vec![AttrDef::new("x", AttrType::Integer)])
            .unwrap();
        b.build()
    }

    #[test]
    fn clean_report_displays() {
        let s = schema();
        let c = s.class_by_name("c").unwrap();
        let def = TriggerDef::new("quiet", EventExpr::prim(EventType::create(c)));
        let report = analyze(&[def], &s).unwrap();
        assert!(report.is_clean());
        let text = report.to_string();
        assert!(text.contains("1 rules, 0 edges"));
        assert!(text.contains("terminates"));
        assert!(text.contains("no unordered conflicting pairs"));
    }

    #[test]
    fn dirty_report_displays_both_warnings() {
        let s = schema();
        let c = s.class_by_name("c").unwrap();
        let x = s.attr_by_name(c, "x").unwrap();
        let mk = |name: &str| {
            let mut def =
                TriggerDef::new(name, EventExpr::prim(EventType::modify(c, x)));
            def.condition = Condition {
                decls: vec![VarDecl {
                    name: "V".into(),
                    class: "c".into(),
                }],
                formulas: vec![],
            };
            def.actions = vec![ActionStmt::Modify {
                var: "V".into(),
                attr: "x".into(),
                value: Term::int(1),
            }];
            def
        };
        let report = analyze(&[mk("a"), mk("b")], &s).unwrap();
        assert!(!report.is_clean());
        assert!(report.max_cascade_depth.is_none());
        let text = report.to_string();
        assert!(text.contains("may loop"));
        assert!(text.contains("confluence warnings"));
    }
}
