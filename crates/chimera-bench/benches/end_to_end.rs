//! PERF-5 — end-to-end engine throughput on the paper's stock domain:
//! transactions per second with the trigger set installed vs bare, and
//! with the §5.1 optimization on vs off.

use chimera_exec::EngineConfig;
use chimera_workload::{StockWorkload, StockWorkloadConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn run_workload(with_triggers: bool, optimized: bool, transactions: usize) -> u64 {
    let mut w = StockWorkload::new(StockWorkloadConfig {
        transactions,
        blocks_per_txn: 5,
        ops_per_block: 4,
        seed: 4242,
        with_triggers,
        engine: EngineConfig {
            use_static_optimization: optimized,
            ..EngineConfig::default()
        },
    });
    w.run();
    w.engine.stats().events
}

fn bench_end_to_end(c: &mut Criterion) {
    const TXNS: usize = 50;
    let mut g = c.benchmark_group("engine_stock_domain");
    g.throughput(Throughput::Elements(TXNS as u64));
    for (label, with_triggers, optimized) in [
        ("bare", false, true),
        ("triggers_optimized", true, true),
        ("triggers_unoptimized", true, false),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(with_triggers, optimized),
            |b, &(wt, opt)| {
                b.iter(|| black_box(run_workload(wt, opt, TXNS)));
            },
        );
    }
    g.finish();

    let mut g2 = c.benchmark_group("engine_rule_count");
    // rule-count scaling: duplicate the trigger set k times
    for &k in &[1usize, 4, 16] {
        g2.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut w = StockWorkload::new(StockWorkloadConfig {
                    transactions: 10,
                    blocks_per_txn: 5,
                    ops_per_block: 4,
                    seed: 77,
                    with_triggers: true,
                    engine: EngineConfig::default(),
                });
                // extra (never-firing, distinctly named) copies
                for i in 0..(k - 1) {
                    for mut def in chimera_workload::stock_triggers(w.engine.schema()) {
                        def.name = format!("{}#{}", def.name, i);
                        def.priority = -1;
                        w.engine.define_trigger(def).unwrap();
                    }
                }
                w.run();
                black_box(w.engine.stats().considerations)
            });
        });
    }
    g2.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
