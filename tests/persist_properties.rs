//! Property suites for the durability layer.
//!
//! * codec round-trip over arbitrary values/objects (including adversarial
//!   strings full of separators and escapes);
//! * WAL fuzzing: arbitrary byte tails appended to a valid log never
//!   panic the reader and never corrupt the valid prefix;
//! * random cut points (a denser version of the exhaustive unit test, over
//!   randomized workloads).

use chimera::model::{ClassId, Object, Oid, Value};
use chimera::persist::codec::{decode_object, decode_value, encode_object, encode_value};
use chimera::persist::{RedoRecord, Wal};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(|bits| Value::float(f64::from_bits(bits))),
        ".{0,40}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::Time),
        any::<u64>().prop_map(|n| Value::Ref(Oid(n))),
    ]
}

fn arb_object() -> impl Strategy<Value = Object> {
    (
        1u64..1_000,
        0u32..8,
        prop::collection::vec(arb_value(), 0..6),
    )
        .prop_map(|(oid, class, attrs)| Object {
            oid: Oid(oid),
            class: ClassId(class),
            attrs,
        })
}

// `Value` carries the bitwise `TotalF64` float policy, so round-trip
// assertions are plain equality — NaN payloads included.
proptest! {
    #[test]
    fn value_codec_round_trips(v in arb_value()) {
        let tok = encode_value(&v);
        prop_assert!(!tok.contains(' '));
        prop_assert!(!tok.contains(','));
        prop_assert!(!tok.contains('\n'));
        let back = decode_value(&tok).unwrap();
        prop_assert_eq!(&back, &v, "{:?} != {:?}", &v, &back);
    }

    #[test]
    fn object_codec_round_trips(obj in arb_object()) {
        let payload = encode_object(&obj);
        prop_assert!(!payload.contains('\n'));
        let back = decode_object(&payload).unwrap();
        prop_assert_eq!(&back, &obj, "{:?} != {:?}", &back, &obj);
    }

    #[test]
    fn decode_never_panics_on_noise(s in ".{0,60}") {
        let _ = decode_value(&s);
        let _ = decode_object(&s);
    }
}

fn tmpfile(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("chimera-persist-props");
    fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.log", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Appending arbitrary garbage to a valid WAL never panics the reader
    /// and never loses or alters the valid batches.
    #[test]
    fn wal_reader_survives_garbage_tails(
        objs in prop::collection::vec(arb_object(), 1..5),
        garbage in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let path = tmpfile("garbage");
        let _ = fs::remove_file(&path);
        let mut wal = Wal::open_append(&path, 1).unwrap();
        for (i, obj) in objs.iter().enumerate() {
            wal.append(vec![RedoRecord::Put(obj.clone())], 1_000 + i as u64).unwrap();
        }
        drop(wal);
        let clean = Wal::read(&path, 1).unwrap();
        prop_assert_eq!(clean.batches.len(), objs.len());

        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&garbage);
        fs::write(&path, &bytes).unwrap();
        let noisy = Wal::read(&path, 1).unwrap();
        // valid prefix intact; garbage either torn or (if it happens to
        // parse) ignored — but never fewer batches than before
        prop_assert!(noisy.batches.len() >= clean.batches.len());
        for (a, b) in clean.batches.iter().zip(&noisy.batches) {
            prop_assert_eq!(a, b);
        }
        let _ = fs::remove_file(&path);
    }

    /// A random cut anywhere in the log yields a clean prefix of batches.
    #[test]
    fn wal_random_cut_is_a_prefix(
        objs in prop::collection::vec(arb_object(), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let path = tmpfile("cut");
        let _ = fs::remove_file(&path);
        let mut wal = Wal::open_append(&path, 1).unwrap();
        for (i, obj) in objs.iter().enumerate() {
            wal.append(vec![RedoRecord::Put(obj.clone())], 1_000 + i as u64).unwrap();
        }
        drop(wal);
        let full = fs::read(&path).unwrap();
        let all = Wal::read(&path, 1).unwrap();
        let cut = (full.len() as f64 * cut_frac) as usize;
        fs::write(&path, &full[..cut]).unwrap();
        let out = Wal::read(&path, 1).unwrap();
        prop_assert!(out.batches.len() <= all.batches.len());
        for (a, b) in out.batches.iter().zip(&all.batches) {
            prop_assert_eq!(a, b);
        }
        // applying the surviving prefix never references a later batch
        prop_assert_eq!(out.valid_len as usize <= cut, true);
        let _ = fs::remove_file(&path);
    }
}
