//! PERF-lifecycle — the cost of living under a residency budget (the
//! PR-10 tentpole): session throughput at 1024 tenants as the cap
//! tightens, and the latency a cold claim pays for transparent
//! rehydration.
//!
//! Two experiments:
//!
//! * **`lifecycle/throughput/{unbounded,256,64}`**: one full ingestion
//!   session — 1024 tenants, a Zipf job mix, flush — per residency cap,
//!   as separate Criterion ids so all three land in
//!   `CHIMERA_BENCH_JSON`. The unbounded run is the pre-lifecycle
//!   baseline; the capped runs price the evict/rehydrate churn a 16×
//!   over-subscribed working set (cap 64) forces.
//! * **the self-reported cold-claim numbers**: p50/p99 round-trip of a
//!   job submitted to a long-evicted tenant (claim → rehydrate →
//!   execute → flush) against the same round-trip on a resident tenant,
//!   sampled across the cold population and merged into `BENCH.json` as
//!   `lifecycle/cold_claim_{p50,p99}_us` / `lifecycle/hot_claim_p50_us`.
//!
//! Runs on in-memory storage: eviction parks snapshots in the home's
//! RAM map there, so the numbers isolate the engine freeze/rebuild cost
//! from disk noise (the durable path is priced in `durability.rs`).

use chimera_calculus::EventExpr;
use chimera_events::EventType;
use chimera_exec::EngineConfig;
use chimera_lifecycle::LifecycleConfig;
use chimera_model::{AttrDef, AttrType, Oid, Schema, SchemaBuilder};
use chimera_rules::TriggerDef;
use chimera_runtime::{Backpressure, Job, Runtime, RuntimeConfig, Scheduler, TenantId};
use chimera_workload::{ZipfTenants, ZipfTenantsConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

fn measure_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("item", None, vec![AttrDef::new("qty", AttrType::Integer)])
        .unwrap();
    b.build()
}

/// A small rule set over 8 external channels, so every engine carries
/// rule state (the part of a snapshot round-trip that isn't just bytes).
fn rules(schema: &Schema) -> Vec<TriggerDef> {
    let item = schema.class_by_name("item").unwrap();
    let p = |n: u32| EventExpr::prim(EventType::external(item, n));
    (0..4usize)
        .map(|i| {
            let a = 1000 + (i as u32 % 8);
            let b = 1000 + ((i as u32 + 3) % 8);
            let expr = if i % 2 == 0 { p(a).and(p(b)) } else { p(a).prec(p(b)) };
            TriggerDef::new(format!("r{i}"), expr)
        })
        .collect()
}

/// Job `j` for tenant `tenant`: `per_block` external events, half on
/// the rules' channels.
fn block(
    schema: &Schema,
    tenant: u64,
    j: u64,
    per_block: usize,
) -> Vec<(chimera_model::ClassId, u32, Oid)> {
    let item = schema.class_by_name("item").unwrap();
    let mut k = tenant.wrapping_mul(0x9E37_79B9).wrapping_add(j);
    (0..per_block)
        .map(|_| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let ch = if (k >> 33) % 2 == 0 {
                1000 + ((k >> 13) % 8) as u32
            } else {
                ((k >> 13) % 8) as u32
            };
            (item, ch, Oid((k >> 7) % 32 + 1))
        })
        .collect()
}

fn runtime(schema: &Schema, defs: &[TriggerDef], shards: usize, cap: Option<usize>) -> Runtime {
    Runtime::new(
        schema.clone(),
        defs.to_vec(),
        RuntimeConfig {
            shards,
            queue_capacity: 256,
            backpressure: Backpressure::Block,
            scheduler: Scheduler::LoadAware,
            engine: EngineConfig {
                max_rule_steps: usize::MAX / 2,
                ..EngineConfig::default()
            },
            lifecycle: match cap {
                Some(n) => LifecycleConfig::with_max_resident(n),
                None => LifecycleConfig::unbounded(),
            },
            ..RuntimeConfig::default()
        },
    )
    .expect("valid rule set")
}

/// One full ingestion session over `tenants` tenants; returns events fed.
fn run_session(
    schema: &Schema,
    defs: &[TriggerDef],
    shards: usize,
    cap: Option<usize>,
    mix: &[u64],
    per_block: usize,
) -> u64 {
    let rt = runtime(schema, defs, shards, cap);
    for (j, &t) in mix.iter().enumerate() {
        // each block is its own transaction: a tenant parked mid-txn is
        // unevictable, and the lifecycle churn is the thing under test
        submit_block(&rt, schema, t, j as u64, per_block);
    }
    rt.flush().unwrap();
    let stats = rt.stats();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(stats.job_errors + stats.job_panics, 0);
    if let Some(cap) = cap {
        // every distinct tenant past the cap was shed at least once
        let distinct = {
            let mut seen: Vec<u64> = mix.to_vec();
            seen.sort_unstable();
            seen.dedup();
            seen.len() as u64
        };
        assert!(
            stats.evictions >= distinct.saturating_sub(cap as u64),
            "an over-subscribed cap must evict"
        );
    }
    mix.len() as u64 * per_block as u64
}

/// One transactional block for `t`: begin → raise → commit, through the
/// per-tenant FIFO.
fn submit_block(rt: &Runtime, schema: &Schema, t: u64, j: u64, per_block: usize) {
    rt.submit(TenantId(t), Job::Begin).unwrap();
    rt.submit(TenantId(t), Job::RaiseExternal(block(schema, t, j, per_block)))
        .unwrap();
    rt.submit(TenantId(t), Job::Commit).unwrap();
}

/// The fixed Zipf job mix, drawn once so every cap times the identical
/// workload.
fn job_mix(tenants: u64, jobs: usize) -> Vec<u64> {
    ZipfTenants::new(ZipfTenantsConfig {
        tenants,
        s: 1.1,
        hot_boost: 1.0,
        seed: 0xBEEF,
    })
    .ranks(jobs)
}

fn bench_lifecycle(c: &mut Criterion) {
    let schema = schema();
    let defs = rules(&schema);
    let (tenants, jobs, per_block, shards) =
        if measure_mode() { (1024u64, 4096usize, 8usize, 2usize) } else { (16, 48, 4, 2) };
    let caps: &[(&str, Option<usize>)] = if measure_mode() {
        &[("unbounded", None), ("256", Some(256)), ("64", Some(64))]
    } else {
        &[("unbounded", None), ("4", Some(4))]
    };
    let mix = job_mix(tenants, jobs);
    let mut g = c.benchmark_group("lifecycle");
    g.throughput(Throughput::Elements(jobs as u64 * per_block as u64));
    for &(name, cap) in caps {
        g.bench_with_input(BenchmarkId::new("throughput", name), &cap, |b, &cap| {
            b.iter(|| {
                black_box(run_session(&schema, &defs, shards, cap, &mix, per_block))
            });
        });
    }
    g.finish();
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let i = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[i]
}

/// Where the shim puts `BENCH.json` (same resolution rules as the
/// criterion shim's `CHIMERA_BENCH_JSON` handling), or `None` when
/// emission is off.
fn bench_json_path() -> Option<PathBuf> {
    let v = std::env::var_os("CHIMERA_BENCH_JSON")?;
    if v.is_empty() || v == "0" {
        return None;
    }
    if v != "1" {
        return Some(PathBuf::from(v));
    }
    if let Ok(exe) = std::env::current_exe() {
        for anc in exe.ancestors() {
            if anc.file_name().is_some_and(|n| n == "target") {
                return Some(anc.join("BENCH.json"));
            }
        }
    }
    Some(PathBuf::from("target/BENCH.json"))
}

/// Merge the claim-latency numbers into `BENCH.json` alongside the
/// shim's per-bench means (read-modify-write of the shim's line format;
/// bench targets run sequentially, so nothing races this).
fn record_latencies(entries_new: &[(&str, f64)]) {
    let Some(path) = bench_json_path() else {
        return;
    };
    let text = std::fs::read_to_string(&path).unwrap_or_default();
    let mut entries: Vec<(String, f64)> = text
        .lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let rest = line.strip_prefix('"')?;
            let (name, value) = rest.split_once("\": ")?;
            Some((name.to_string(), value.trim().parse::<f64>().ok()?))
        })
        .collect();
    for &(name, v) in entries_new {
        match entries.iter_mut().find(|(n, _)| n == name) {
            Some(e) => e.1 = v,
            None => entries.push((name.to_string(), v)),
        }
    }
    let mut s = String::from("{\n");
    for (i, (name, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("\"{name}\": {v:.1}{sep}\n"));
    }
    s.push_str("}\n");
    if let Err(e) = std::fs::write(&path, s) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// The cold-claim tail, reported by the bench itself: fill 1024 tenants
/// through a cap of 64, then time the full submit→flush round-trip
/// against long-evicted tenants (each claim rehydrates) and against
/// resident ones (the baseline the rehydration delta rides on).
fn report_cold_claims(c: &mut Criterion) {
    let _ = c;
    let schema = schema();
    let defs = rules(&schema);
    let (tenants, cap, shards, samples) =
        if measure_mode() { (1024u64, 64usize, 2usize, 96usize) } else { (16, 4, 2, 4) };
    let rt = runtime(&schema, &defs, shards, Some(cap));
    // populate: every tenant runs a few blocks, so each engine carries
    // objects, an event log, and rule stamps into its snapshot
    for t in 0..tenants {
        for j in 0..3u64 {
            submit_block(&rt, &schema, t, j, 8);
        }
    }
    rt.flush().unwrap();
    let roundtrip = |t: u64| {
        let start = Instant::now();
        submit_block(&rt, &schema, t, 99, 8);
        rt.flush().unwrap();
        start.elapsed().as_secs_f64() * 1e6
    };
    // cold samples: the low ids went cold first and stayed cold — spread
    // across them, re-checking residency so a sample never lands hot
    let mut cold: Vec<f64> = Vec::with_capacity(samples);
    let stride = (tenants / 2) / samples as u64;
    for i in 0..samples as u64 {
        let t = i * stride.max(1);
        cold.push(roundtrip(t));
    }
    // hot samples: immediately re-claim the same tenant — resident now
    let mut hot: Vec<f64> = Vec::with_capacity(samples);
    for i in 0..samples as u64 {
        let t = tenants - 1 - (i % cap as u64);
        submit_block(&rt, &schema, t, 98, 8);
        rt.flush().unwrap();
        hot.push(roundtrip(t));
    }
    let stats = rt.stats();
    assert!(stats.rehydrations >= cold.len() as u64 / 2, "cold samples must rehydrate");
    cold.sort_by(f64::total_cmp);
    hot.sort_by(f64::total_cmp);
    let (c50, c99) = (percentile(&cold, 0.50), percentile(&cold, 0.99));
    let h50 = percentile(&hot, 0.50);
    if !measure_mode() {
        return; // the run above is the coverage; tiny samples aren't numbers
    }
    println!(
        "lifecycle cold claims, {tenants} tenants / cap {cap}: cold p50 {c50:.0}us \
         p99 {c99:.0}us, hot p50 {h50:.0}us ({} rehydrations, {} evictions)",
        stats.rehydrations, stats.evictions
    );
    record_latencies(&[
        ("lifecycle/cold_claim_p50_us", c50),
        ("lifecycle/cold_claim_p99_us", c99),
        ("lifecycle/hot_claim_p50_us", h50),
    ]);
}

criterion_group!(benches, bench_lifecycle, report_cold_claims);
criterion_main!(benches);
