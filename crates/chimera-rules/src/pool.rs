//! A persistent, parked worker pool for the probe phase of a check
//! round.
//!
//! The parallel check round used to spawn scoped threads per round
//! (`std::thread::scope`), paying the spawn/join cost — tens of µs — on
//! every block for small-block workloads with large rule tables. This
//! pool keeps the workers alive and parked on a condvar between rounds:
//! a round publishes its chunk tasks, wakes the pool, participates in
//! the work itself, and returns only when every task has run.
//!
//! The tasks borrow the submitting round's stack (the candidate slots,
//! the shared probe-instant sets, the memo snapshot), which a
//! `'static`-threaded pool cannot express directly. [`ProbePool::run`]
//! therefore erases the task lifetime (see the safety note there) and
//! restores the scoped-spawn guarantee *dynamically*: it blocks until
//! the last task has finished and been dropped, so no borrow ever
//! outlives the call — the same property `thread::scope` proves
//! statically.
//!
//! Determinism: the pool executes exactly the closures it is given;
//! which thread runs which chunk is scheduler-dependent, but each chunk
//! writes only its own output slot, so results are bit-identical to the
//! scoped-spawn (and to the sequential) round — `tests/
//! runtime_equivalence.rs` holds unchanged.

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// A borrowing round task: boxed so it can cross into the pool, `Send`
/// so any worker may claim it, alive only for the submitting round.
pub(crate) type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// The lifetime-erased form the pool's `'static` threads hold.
type StaticTask = Box<dyn FnOnce() + Send + 'static>;

/// Work handed to the pool for one round.
#[derive(Default)]
struct State {
    /// This round's tasks; slots are `take`n as they are claimed.
    tasks: Vec<Option<StaticTask>>,
    /// First unclaimed slot.
    next: usize,
    /// Tasks claimed or unclaimed but not yet finished.
    pending: usize,
    /// A task panicked this round (reported by the submitter).
    panicked: bool,
    /// The pool is being dropped; workers exit.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between rounds.
    work: Condvar,
    /// The submitter parks here until `pending` reaches zero.
    done: Condvar,
}

/// The persistent probe worker pool behind a [`SharedProbePool`]
/// handle. Threads are spawned lazily on the first parallel round and
/// parked between rounds; a support running sequentially
/// (`check_workers <= 1`) never spawns any. The pool itself is not
/// `Clone` — sharing happens one level up through the `Arc`-backed
/// handle, so a cloned [`crate::TriggerSupport`] *shares* its pool
/// (and its parked threads) with the original.
#[derive(Default)]
pub(crate) struct ProbePool {
    shared: Option<Arc<Shared>>,
    threads: Vec<JoinHandle<()>>,
}

impl ProbePool {
    /// Run `tasks` across `workers` threads total — `workers - 1` pool
    /// threads plus the calling thread, which participates instead of
    /// idling — and return once every task has executed. Panics (after
    /// all tasks settle) if any task panicked, matching the join
    /// behavior of the scoped spawn this pool replaced.
    pub(crate) fn run(&mut self, workers: usize, tasks: Vec<Task<'_>>) {
        if tasks.is_empty() {
            return;
        }
        self.ensure_threads(workers.saturating_sub(1));
        let shared = self.shared.as_ref().expect("ensure_threads populated");
        {
            let mut st = lock(&shared.state);
            debug_assert!(st.pending == 0 && st.tasks.is_empty(), "rounds never nest");
            st.pending = tasks.len();
            st.next = 0;
            st.panicked = false;
            // SAFETY: the erased tasks never outlive this call. `run`
            // returns only after `pending` drops to zero, and a task's
            // claim slot is `take`n before execution, so by then every
            // task has run and been dropped; the borrows captured in
            // them (`'_`) are all live for the whole call. This is the
            // scoped-thread guarantee, enforced by the `done` wait
            // below instead of by `thread::scope`'s join.
            st.tasks = tasks
                .into_iter()
                .map(|t| Some(unsafe { std::mem::transmute::<Task<'_>, StaticTask>(t) }))
                .collect();
            shared.work.notify_all();
        }
        // the submitting thread is worker 0: claim chunks like the rest
        work_off_queue(shared);
        let mut st = lock(&shared.state);
        while st.pending > 0 {
            st = shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.tasks.clear();
        st.next = 0;
        if std::mem::take(&mut st.panicked) {
            drop(st);
            panic!("check worker panicked");
        }
    }

    /// Grow the pool to at least `n` parked threads.
    fn ensure_threads(&mut self, n: usize) {
        let shared = self
            .shared
            .get_or_insert_with(|| {
                Arc::new(Shared {
                    state: Mutex::new(State::default()),
                    work: Condvar::new(),
                    done: Condvar::new(),
                })
            })
            .clone();
        while self.threads.len() < n {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("chimera-probe-{}", self.threads.len()))
                .spawn(move || worker_loop(&shared))
                .expect("spawn probe pool thread");
            self.threads.push(handle);
        }
    }
}

impl Drop for ProbePool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            lock(&shared.state).shutdown = true;
            shared.work.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ProbePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbePool")
            .field("threads", &self.threads.len())
            .finish()
    }
}

/// A cloneable handle to one probe pool, so the pool's threads can be
/// shared across engines. A multi-tenant shard installs **one** pool on
/// every tenant engine it owns ([`use_shared_pool`] via the engine
/// config path), keeping the parked-thread count per *shard* —
/// `check_workers - 1` — instead of per tenant; a standalone
/// [`crate::TriggerSupport`] just uses its own private handle. The
/// mutex is uncontended in the sharded runtime (a shard runs one job at
/// a time) and merely serializes rounds if independent engines do share
/// a handle across threads.
///
/// [`use_shared_pool`]: crate::TriggerSupport::use_shared_pool
#[derive(Clone, Default, Debug)]
pub struct SharedProbePool {
    inner: Arc<Mutex<ProbePool>>,
}

impl SharedProbePool {
    /// Run one round's tasks on the shared pool (see [`ProbePool::run`]).
    pub(crate) fn run(&self, workers: usize, tasks: Vec<Task<'_>>) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .run(workers, tasks)
    }
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A parked pool thread: wake on published work, drain the queue, park.
fn worker_loop(shared: &Shared) {
    loop {
        {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.next < st.tasks.len() {
                    break;
                }
                st = shared
                    .work
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        work_off_queue(shared);
    }
}

/// Claim and run queued tasks until none are left, then report. A
/// panicking task is caught so `pending` still settles (the submitter
/// re-raises the panic once the round is fully drained).
fn work_off_queue(shared: &Shared) {
    loop {
        let task = {
            let mut st = lock(&shared.state);
            if st.next >= st.tasks.len() {
                return;
            }
            let slot = st.next;
            let task = st.tasks[slot].take().expect("unclaimed slot is Some");
            st.next += 1;
            task
        };
        let result = std::panic::catch_unwind(AssertUnwindSafe(task));
        let mut st = lock(&shared.state);
        if result.is_err() {
            st.panicked = true;
        }
        st.pending -= 1;
        if st.pending == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn rounds_reuse_parked_threads_and_see_borrows() {
        let mut pool = ProbePool::default();
        // several rounds over the same pool: borrows of round-local
        // stack data are filled in by the time `run` returns
        for round in 0..5usize {
            let mut outputs = [0usize; 8];
            let tasks: Vec<Task<'_>> = outputs
                .iter_mut()
                .enumerate()
                .map(|(i, out)| -> Task<'_> { Box::new(move || *out = round * 100 + i) })
                .collect();
            pool.run(3, tasks);
            for (i, out) in outputs.iter().enumerate() {
                assert_eq!(*out, round * 100 + i);
            }
            // workers requested: 3 → 2 pool threads + the caller
            assert_eq!(pool.threads.len(), 2);
        }
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..2)
            .map(|_| -> Task<'_> {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        // a larger round grows the pool
        pool.run(4, tasks);
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert_eq!(pool.threads.len(), 3);
    }

    #[test]
    fn task_panic_is_reraised_after_the_round_settles() {
        let mut pool = ProbePool::default();
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let ran = &ran;
            let tasks: Vec<Task<'_>> = (0..4)
                .map(|i| -> Task<'_> {
                    Box::new(move || {
                        if i == 1 {
                            panic!("boom");
                        }
                        ran.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            pool.run(2, tasks);
        }));
        assert!(result.is_err(), "panic propagates to the submitter");
        assert_eq!(ran.load(Ordering::Relaxed), 3, "other tasks still ran");
        // and the pool stays serviceable for the next round
        let mut ok = false;
        let tasks: Vec<Task<'_>> = std::iter::once(Box::new(|| ok = true) as Task<'_>).collect();
        pool.run(2, tasks);
        assert!(ok);
    }
}
