//! Lifecycle-equivalence oracle for the tenant residency layer (the
//! PR-10 tentpole).
//!
//! The claim under test: **eviction and rehydration are invisible to
//! tenant semantics.** A runtime squeezed through a tiny residency cap
//! — every batch potentially evicting the engine that just ran and
//! rehydrating one that was parked — must leave every tenant
//! bit-identical to a plain sequential [`Engine`] replaying that
//! tenant's script: objects and extents, the full event log with
//! timestamps, rule consumption windows, engine counters,
//! open-transaction state, and the error bookkeeping. The same must
//! hold across a crash: recovery over eviction snapshots (`tsnap`
//! files) plus the log tail is exactly the per-tenant surviving prefix.
//!
//! Three tests:
//! * a proptest over random multi-tenant scripts × caps × shard counts
//!   × schedulers (pinned and load-aware stealing), live;
//! * a proptest adding a crash — the log truncated at an arbitrary byte
//!   — and recovery under the same cap, with `survived(t)` computed
//!   from the on-disk state itself (full snapshot, tsnap watermarks,
//!   valid log tail);
//! * the acceptance run: 1024 tenants through a cap of 64, the
//!   `tenants_resident` gauge never past the cap once quiesced (and
//!   never past cap + workers while claims are in flight), then a
//!   restart proving rehydration over recovery.

use chimera::events::Timestamp;
use chimera::exec::{Engine, EngineConfig, Op};
use chimera::lifecycle::LifecycleConfig;
use chimera::model::{AttrDef, AttrType, ClassId, Oid, Schema, SchemaBuilder, Value};
use chimera::persist::{JobLog, ShardSnapshot};
use chimera::prelude::EventType;
use chimera::rules::{ActionStmt, TriggerDef};
use chimera::runtime::{
    DurabilityConfig, Job, Runtime, RuntimeConfig, Scheduler, StorageMode, TenantId,
};
use chimera::workload::{ExprGenConfig, RandomExprGen};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "item",
        None,
        vec![
            AttrDef::new("qty", AttrType::Integer),
            AttrDef::with_default("tag", AttrType::Integer, Value::Int(0)),
        ],
    )
    .unwrap();
    let s = b.build();
    assert_eq!(s.class_by_name("item").unwrap(), ClassId(0));
    s
}

/// Runtime-wide triggers: random §3 expressions, a third with Create
/// actions so firings have net store effects the oracle can diff —
/// trigger state is the most intricate thing a snapshot round-trip has
/// to preserve, so lifecycle churn gets the full treatment.
fn runtime_triggers(seed: u64) -> Vec<TriggerDef> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RandomExprGen::new(ExprGenConfig {
        event_types: 4,
        max_depth: 3,
        instance_prob: 0.5,
        negation_prob: 0.2,
        seed: seed ^ 0x11FE,
    });
    let k = rng.random_range(2..5usize);
    (0..k)
        .map(|i| {
            let mut def = TriggerDef::new(format!("r{i}"), g.generate());
            def.priority = rng.random_range(0..3i32);
            if i % 3 == 0 {
                def.actions = vec![ActionStmt::Create {
                    class: "item".into(),
                    inits: vec![],
                }];
            }
            def
        })
        .collect()
}

/// A tenant-local trigger source. Only 3 distinct names exist, so
/// scripts redefine names and exercise the error path — and evicted
/// tenants carry their sources through the snapshot round-trip.
fn trigger_source(k: u64) -> String {
    format!(
        "define immediate trigger s{} for item\n\
           events create, modify(qty)\n\
           condition item(S), S.qty > S.tag\n\
           actions modify(S.qty, S.tag)\n\
         end",
        k % 3
    )
}

fn random_job(rng: &mut StdRng, in_txn: bool, item: ClassId) -> Job {
    if !in_txn {
        if rng.random_range(0..5u32) == 0 {
            return Job::DefineTriggerSource(trigger_source(rng.random_range(0..3u64)));
        }
        return Job::Begin;
    }
    match rng.random_range(0..11u32) {
        0..=4 => {
            let n = rng.random_range(1..4usize);
            let events = (0..n)
                .map(|_| {
                    (
                        item,
                        rng.random_range(0..4u32),
                        Oid(rng.random_range(0..4u64)),
                    )
                })
                .collect();
            Job::RaiseExternal(events)
        }
        5..=6 => {
            let n = rng.random_range(1..3usize);
            let ops = (0..n)
                .map(|_| Op::Create {
                    class: item,
                    inits: vec![(chimera::model::AttrId(0), Value::Int(rng.random_range(0..200i64)))],
                })
                .collect();
            Job::ExecBlock(ops)
        }
        7 => Job::Commit,
        8 => Job::Rollback,
        _ => Job::DefineTriggerSource(trigger_source(rng.random_range(0..3u64))),
    }
}

/// Everything observable about one tenant engine *except* the
/// trigger-support probe counters (those measure probe work done by
/// this process, not tenant state).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observed {
    stats: chimera::exec::EngineStats,
    in_txn: bool,
    eb_now: Timestamp,
    eb_log: Vec<(EventType, Oid, Timestamp)>,
    rules: Vec<(String, bool, bool, Timestamp, Timestamp, Timestamp)>,
    extent: Vec<Oid>,
}

fn observe(engine: &mut Engine, item: ClassId) -> Observed {
    let mut extent = engine.extent(item);
    extent.sort_unstable();
    Observed {
        stats: engine.stats(),
        in_txn: engine.in_transaction(),
        eb_now: engine.event_base().now(),
        eb_log: engine
            .event_base()
            .iter()
            .map(|e| (e.ty, e.oid, e.ts))
            .collect(),
        rules: engine
            .rules()
            .iter()
            .map(|(def, st)| {
                (
                    def.name.clone(),
                    st.triggered,
                    st.witness,
                    st.last_consideration,
                    st.last_consumption,
                    st.checked_upto,
                )
            })
            .collect(),
        extent,
    }
}

/// The sequential oracle: a fresh single-threaded engine replaying the
/// first `prefix` of one tenant's jobs, with the exact semantics of the
/// shard worker's `apply`.
fn oracle_replay(
    schema: &Schema,
    triggers: &[TriggerDef],
    engine_cfg: &EngineConfig,
    jobs: &[Job],
    prefix: usize,
    item: ClassId,
) -> (Observed, u64, Option<String>) {
    let mut engine = Engine::with_config(schema.clone(), engine_cfg.clone());
    for def in triggers {
        engine.define_trigger(def.clone()).unwrap();
    }
    let mut errors = 0u64;
    let mut last_error = None;
    for job in &jobs[..prefix] {
        let res: Result<(), String> = match job.clone() {
            Job::Begin => engine.begin().map_err(|e| e.to_string()),
            Job::ExecBlock(ops) => engine.exec_block(&ops).map(|_| ()).map_err(|e| e.to_string()),
            Job::RaiseExternal(ev) => {
                engine.raise_external(&ev).map(|_| ()).map_err(|e| e.to_string())
            }
            Job::Commit => engine.commit().map_err(|e| e.to_string()),
            Job::Rollback => engine.rollback().map_err(|e| e.to_string()),
            Job::DefineTriggerSource(src) => apply_trigger_source(&mut engine, schema, &src),
            _ => Ok(()),
        };
        if let Err(msg) = res {
            errors += 1;
            last_error = Some(msg);
        }
    }
    (observe(&mut engine, item), errors, last_error)
}

/// Mirror of the shard worker's trigger-source application: every
/// declaration defines or the job undoes its own definitions.
fn apply_trigger_source(engine: &mut Engine, schema: &Schema, src: &str) -> Result<(), String> {
    let decls = chimera::lang::parse_trigger_decls(src, schema).map_err(|e| e.to_string())?;
    let mut defined: Vec<String> = Vec::with_capacity(decls.len());
    for decl in &decls {
        let result = decl
            .lower(schema)
            .map_err(|e| e.to_string())
            .and_then(|def| {
                let name = def.name.clone();
                engine
                    .define_trigger(def)
                    .map(|()| name)
                    .map_err(|e| e.to_string())
            });
        match result {
            Ok(name) => defined.push(name),
            Err(msg) => {
                for name in defined.iter().rev() {
                    let _ = engine.drop_trigger(name);
                }
                return Err(msg);
            }
        }
    }
    Ok(())
}

/// `survived(t)` for every tenant, lifecycle-aware: a tenant covered by
/// an eviction snapshot counts the tsnap's `jobs_applied` plus its jobs
/// in tail groups past the tsnap watermark; everyone else counts the
/// full snapshot's `jobs_applied` plus all their tail jobs — exactly
/// the arithmetic `recover` performs.
fn survived_jobs(dir: &Path, shards: usize) -> HashMap<u64, u64> {
    let mut survived: HashMap<u64, u64> = HashMap::new();
    for i in 0..shards {
        let shard_dir = dir.join(format!("shard-{i}"));
        let mut snap_seq = 0u64;
        let mut snapped: HashMap<u64, u64> = HashMap::new();
        if let Ok(Some(snap)) = ShardSnapshot::read(&shard_dir.join("snap.chi")) {
            snap_seq = snap.seq;
            for t in &snap.tenants {
                snapped.insert(t.tenant, t.jobs_applied);
            }
        }
        // eviction snapshots newer than the shard snapshot supersede its
        // copy of the same tenant; stale ones are ignored exactly as the
        // store's recover scan deletes them
        let mut watermark: HashMap<u64, u64> = HashMap::new();
        if let Ok(entries) = std::fs::read_dir(&shard_dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if !name.starts_with("tenant-") || !name.ends_with(".tsnap") {
                    continue;
                }
                let snap = ShardSnapshot::read(&entry.path())
                    .expect("tsnap is readable")
                    .expect("tsnap is present");
                if snap.seq < snap_seq {
                    continue;
                }
                for t in &snap.tenants {
                    snapped.insert(t.tenant, t.jobs_applied);
                    watermark.insert(t.tenant, snap.seq);
                }
            }
        }
        for (tenant, applied) in &snapped {
            *survived.entry(*tenant).or_default() += applied;
        }
        let wal = shard_dir.join("jobs.wal");
        if !wal.exists() {
            continue;
        }
        let outcome = JobLog::read(&wal, snap_seq + 1).expect("log tail is readable");
        for group in &outcome.groups {
            for (tenant, _) in &group.jobs {
                if watermark.get(tenant).is_some_and(|&w| group.seq <= w) {
                    continue; // already inside the tenant's tsnap
                }
                *survived.entry(*tenant).or_default() += 1;
            }
        }
    }
    survived
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chimera-lifecycle-equiv-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Residency enforcement runs on the workers (after rehydrations and
/// releases), so a freshly-flushed runtime may still be shedding its
/// last over-budget engine. Bounded wait, never a sleep-and-hope.
fn await_residency(rt: &Runtime, cap: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resident = rt.stats().tenants_resident;
        if resident <= cap || Instant::now() >= deadline {
            return resident;
        }
        std::thread::yield_now();
    }
}

/// Run one interleaved multi-tenant script under a residency cap and
/// return the per-tenant job lists.
fn run_capped(
    rt: &Runtime,
    s: &Schema,
    script_seed: u64,
    tenants: u64,
    steps: usize,
) -> Vec<Vec<Job>> {
    let item = s.class_by_name("item").unwrap();
    let mut rng = StdRng::seed_from_u64(script_seed);
    let mut in_txn = vec![false; tenants as usize];
    let mut per_tenant: Vec<Vec<Job>> = vec![Vec::new(); tenants as usize];
    for _ in 0..steps {
        let t = rng.random_range(0..tenants) as usize;
        let job = random_job(&mut rng, in_txn[t], item);
        match job {
            Job::Begin => in_txn[t] = true,
            Job::Commit | Job::Rollback => in_txn[t] = false,
            _ => {}
        }
        per_tenant[t].push(job.clone());
        rt.submit(TenantId(t as u64), job).unwrap();
    }
    rt.flush().unwrap();
    per_tenant
}

/// Compare every tenant (resident or parked) against the sequential
/// oracle replaying `survived(t)` of its script.
fn check_equivalence(
    rt: &Runtime,
    s: &Schema,
    triggers: &[TriggerDef],
    engine_cfg: &EngineConfig,
    per_tenant: &[Vec<Job>],
    survived: &HashMap<u64, u64>,
) -> Result<(), TestCaseError> {
    let item = s.class_by_name("item").unwrap();
    for (t, jobs) in per_tenant.iter().enumerate() {
        let n = survived.get(&(t as u64)).copied().unwrap_or(0);
        prop_assert!(
            (n as usize) <= jobs.len(),
            "tenant {t}: survived {n} > submitted {}",
            jobs.len()
        );
        let got = rt.with_tenant(TenantId(t as u64), |e| observe(e, item));
        if n == 0 {
            prop_assert!(got.is_none(), "tenant {t}: no surviving jobs, but an engine exists");
            continue;
        }
        let got = got.expect("tenant with surviving jobs is observable even when evicted");
        let (want, want_errors, want_last) =
            oracle_replay(s, triggers, engine_cfg, jobs, n as usize, item);
        prop_assert_eq!(&got, &want, "tenant {} diverged through eviction churn", t);
        let (errors, last) = rt.tenant_errors(TenantId(t as u64)).unwrap();
        prop_assert_eq!(errors, want_errors, "tenant {} error count", t);
        prop_assert_eq!(last, want_last, "tenant {} last error", t);
    }
    Ok(())
}

fn full_prefix(per_tenant: &[Vec<Job>]) -> HashMap<u64, u64> {
    per_tenant
        .iter()
        .enumerate()
        .map(|(t, jobs)| (t as u64, jobs.len() as u64))
        .collect()
}

/// Does this script leave its tenant inside a transaction? Such tenants
/// are pinned in RAM — eviction skips mid-transaction engines — so the
/// quiesced working set is allowed to hold them *on top of* the cap.
fn mid_txn(jobs: &[Job]) -> bool {
    let mut in_txn = false;
    for j in jobs {
        match j {
            Job::Begin => in_txn = true,
            Job::Commit | Job::Rollback => in_txn = false,
            _ => {}
        }
    }
    in_txn
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The live property: random scripts forced through caps far below
    /// the tenant count (so nearly every batch evicts and rehydrates)
    /// ⇒ every tenant is bit-identical to its sequential replay, the
    /// quiesced working set respects the cap, and no jobs were lost.
    #[test]
    fn capped_runtime_is_bit_identical_to_sequential_replay(
        rule_seed in any::<u64>(),
        script_seed in any::<u64>(),
        cap in 1usize..4,
        tenants in 4u64..9,
        steps in 8usize..40,
        shards in 1usize..3,
        load_aware in any::<bool>(),
    ) {
        let s = schema();
        let triggers = runtime_triggers(rule_seed);
        let engine_cfg = EngineConfig { max_rule_steps: 64, ..EngineConfig::default() };
        let dir = tmpdir("live");
        let rt = Runtime::new(
            s.clone(),
            triggers.clone(),
            RuntimeConfig {
                shards,
                scheduler: if load_aware { Scheduler::LoadAware } else { Scheduler::Pinned },
                storage: StorageMode::Durable(DurabilityConfig {
                    dir: dir.clone(),
                    group_commit: true,
                    snapshot_every: 0,
                }),
                engine: engine_cfg.clone(),
                lifecycle: LifecycleConfig::with_max_resident(cap),
                ..Default::default()
            },
        )
        .unwrap();
        let per_tenant = run_capped(&rt, &s, script_seed, tenants, steps);
        let stats = rt.stats();
        prop_assert_eq!(stats.jobs_processed, stats.jobs_submitted);
        // tenants the random script never touched have no engine at all
        let active = per_tenant.iter().filter(|jobs| !jobs.is_empty()).count();
        prop_assert_eq!(stats.tenants, active, "every touched tenant is still addressable");
        // tenants parked inside a transaction are unevictable, so the
        // quiesced working set may hold them on top of the cap
        let stuck = per_tenant.iter().filter(|jobs| mid_txn(jobs)).count();
        let budget = (cap + stuck) as u64;
        let resident = await_residency(&rt, budget);
        prop_assert!(
            resident <= budget,
            "quiesced residency {resident} exceeds cap {cap} + {stuck} mid-transaction"
        );
        check_equivalence(&rt, &s, &triggers, &engine_cfg, &per_tenant, &full_prefix(&per_tenant))?;
        drop(rt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The crash property: the same churn, then the log truncated at an
    /// arbitrary byte and recovery under the same cap ⇒ every tenant is
    /// the sequential replay of exactly its on-disk surviving prefix —
    /// whether it crashed resident (full snapshot / tail) or evicted
    /// (tsnap watermark + tail past it).
    #[test]
    fn crashed_capped_runtime_recovers_surviving_prefix(
        rule_seed in any::<u64>(),
        script_seed in any::<u64>(),
        cap in 1usize..4,
        tenants in 4u64..9,
        steps in 8usize..40,
        shards in 1usize..3,
        snapshot_choice in 0u64..2,
        cut_shard in 0usize..2,
        cut_frac in 0.0f64..1.0,
    ) {
        let snapshot_every = snapshot_choice * 3; // 0 (never) or every 3 groups
        let s = schema();
        let triggers = runtime_triggers(rule_seed);
        let engine_cfg = EngineConfig { max_rule_steps: 64, ..EngineConfig::default() };
        let dir = tmpdir("crash");
        let config = |d: PathBuf| RuntimeConfig {
            shards,
            storage: StorageMode::Durable(DurabilityConfig {
                dir: d,
                group_commit: true,
                snapshot_every,
            }),
            engine: engine_cfg.clone(),
            lifecycle: LifecycleConfig::with_max_resident(cap),
            ..Default::default()
        };
        let rt = Runtime::new(s.clone(), triggers.clone(), config(dir.clone())).unwrap();
        let per_tenant = run_capped(&rt, &s, script_seed, tenants, steps);
        let stats = rt.stats();
        prop_assert_eq!(stats.jobs_processed, stats.jobs_submitted);
        // wait for enforcement so tsnap files actually exist on disk
        // (mid-transaction tenants stay resident on top of the cap)
        let stuck = per_tenant.iter().filter(|jobs| mid_txn(jobs)).count();
        await_residency(&rt, (cap + stuck) as u64);
        drop(rt);
        // the crash: truncate one shard's log at an arbitrary byte
        let wal = dir.join(format!("shard-{}", cut_shard % shards)).join("jobs.wal");
        if let Ok(bytes) = std::fs::read(&wal) {
            let cut = (bytes.len() as f64 * cut_frac) as usize;
            std::fs::write(&wal, &bytes[..cut.min(bytes.len())]).unwrap();
        }
        let survived = survived_jobs(&dir, shards);
        let (rt, _report) = Runtime::recover(s.clone(), triggers.clone(), config(dir.clone())).unwrap();
        check_equivalence(&rt, &s, &triggers, &engine_cfg, &per_tenant, &survived)?;
        drop(rt);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The acceptance run: 1024 tenants through a residency cap of 64.
/// The gauge must never pass cap + workers while running (enforcement
/// is worker-side, so in-flight claims are the only legal overshoot),
/// must settle at ≤ 64 once quiesced, every tenant must be
/// bit-identical to its sequential replay, and a restart must recover
/// the full population — rehydrating parked tenants on demand.
#[test]
fn thousand_tenants_through_a_cap_of_64() {
    const TENANTS: u64 = 1024;
    const CAP: u64 = 64;
    let s = schema();
    let triggers = runtime_triggers(0xACCE97);
    let engine_cfg = EngineConfig {
        max_rule_steps: 64,
        ..EngineConfig::default()
    };
    let item = s.class_by_name("item").unwrap();
    let dir = tmpdir("acceptance");
    let shards = 2usize;
    let config = || RuntimeConfig {
        shards,
        scheduler: Scheduler::LoadAware,
        storage: StorageMode::Durable(DurabilityConfig {
            dir: dir.clone(),
            group_commit: true,
            snapshot_every: 0,
        }),
        engine: engine_cfg.clone(),
        lifecycle: LifecycleConfig::with_max_resident(CAP as usize),
        ..Default::default()
    };
    let rt = Runtime::new(s.clone(), triggers.clone(), config()).unwrap();
    // every tenant runs the same 3-job script with a tenant-flavoured
    // payload, so the oracle is cheap but states still differ
    let script = |t: u64| {
        vec![
            Job::Begin,
            Job::ExecBlock(vec![Op::Create {
                class: item,
                inits: vec![(chimera::model::AttrId(0), Value::Int((t % 97) as i64))],
            }]),
            Job::Commit,
        ]
    };
    for t in 0..TENANTS {
        for job in script(t) {
            rt.submit(TenantId(t), job).unwrap();
        }
        // sample the gauge as the working set churns: worker-side
        // enforcement bounds overshoot by the claims in flight
        if t % 64 == 0 {
            let resident = rt.stats().tenants_resident;
            assert!(
                resident <= CAP + shards as u64,
                "mid-run residency {resident} exceeds cap {CAP} + {shards} in-flight claims"
            );
        }
    }
    rt.flush().unwrap();
    let stats = rt.stats();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(stats.tenants as u64, TENANTS);
    let resident = await_residency(&rt, CAP);
    assert!(resident <= CAP, "quiesced residency {resident} exceeds cap {CAP}");
    let evictions = rt.stats().evictions;
    assert!(
        evictions >= TENANTS - CAP,
        "filling 1024 tenants through 64 slots must evict at least the difference \
         (got {evictions})"
    );
    // spot-check equivalence across the population (every 37th tenant),
    // each observation transparently rehydrating a parked engine
    for t in (0..TENANTS).step_by(37) {
        let jobs = script(t);
        let (want, _, _) = oracle_replay(&s, &triggers, &engine_cfg, &jobs, jobs.len(), item);
        let got = rt
            .with_tenant(TenantId(t), |e| observe(e, item))
            .expect("tenant is observable while evicted");
        assert_eq!(got, want, "tenant {t} diverged through eviction churn");
    }
    drop(rt);
    // restart: recovery repopulates the full tenant set from tsnaps +
    // tail, parking cold tenants and rehydrating them on first touch
    let (rt, report) = Runtime::recover(s.clone(), triggers.clone(), config()).unwrap();
    // the run never wrote a full snapshot (snapshot_every: 0), so the
    // snapshot-recovered population is exactly the tsnap-parked tenants;
    // the ones resident at shutdown come back through tail replay
    assert!(
        report.tenants_recovered >= TENANTS - CAP,
        "at least the evicted tenants recover from tsnaps (got {})",
        report.tenants_recovered
    );
    let stats = rt.stats();
    assert_eq!(stats.tenants as u64, TENANTS, "recovery must repopulate all tenants");
    assert!(
        stats.tenants_resident <= CAP + shards as u64,
        "recovery residency {} exceeds cap {CAP} + workers",
        stats.tenants_resident
    );
    // touching a parked tenant with real work forces rehydration —
    // tenant 0 is the coldest in the run, guaranteed long evicted
    let probe = 0;
    for job in [Job::Begin, Job::Rollback] {
        rt.submit(TenantId(probe), job).unwrap();
    }
    rt.flush().unwrap();
    assert!(
        rt.stats().rehydrations >= 1,
        "claiming a parked tenant must rehydrate"
    );
    let jobs: Vec<Job> = script(probe)
        .into_iter()
        .chain([Job::Begin, Job::Rollback])
        .collect();
    let (want, _, _) = oracle_replay(&s, &triggers, &engine_cfg, &jobs, jobs.len(), item);
    let got = rt
        .with_tenant(TenantId(probe), |e| observe(e, item))
        .expect("rehydrated tenant has an engine");
    assert_eq!(got, want, "rehydrated tenant diverged");
    drop(rt);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Audit for the rehydration/snapshot interaction: a full home snapshot
/// (`snapshot_every: 1` — attempted after every committed batch) racing
/// a worker's rehydration of an evicted tenant must never omit that
/// tenant. The evicted-map→registry handover is published under the
/// home store lock — the same lock the snapshot holds while collecting
/// both sets — so the snapshot sees the tenant in at least one of them.
/// Without that, a snapshot could catch a tenant in *neither*, write a
/// full snapshot omitting it, and advance the snapshot sequence past
/// the tenant's tsnap watermark; a crash before the home's next
/// snapshot would then lose the tenant's pre-snapshot history (recovery
/// deletes the tsnap as stale).
///
/// Honesty note: the racy window is a few microseconds wide and the
/// *next* completed snapshot on the home (typically the rehydrated
/// tenant's own batch) re-covers the tenant, so a black-box test cannot
/// reliably reproduce the lost-state outcome — the lock-ordering
/// argument in `rehydrate_if_evicted` is the real guarantee. What this
/// test does pin down is the surrounding invariant no other test
/// covers: full-snapshot compaction (`snapshot_every > 0`) interleaved
/// with eviction/rehydration churn, audited against an *absolute*
/// per-tenant history count across a restart every round (the crash
/// proptest's oracle is derived from the on-disk state itself, so a
/// snapshot that silently dropped a tenant would fool it).
#[test]
fn full_snapshots_racing_rehydration_lose_no_tenant() {
    const TENANTS: u64 = 48;
    const ROUNDS: usize = 8;
    const CAP: usize = 16;
    // Seed objects fatten every tenant so the snapshot's serialization
    // span (registry scan → evicted-map fold, the span the handover
    // must be atomic against) is wide enough for the churn to probe it.
    const SEED_OBJECTS: usize = 128;
    let s = schema();
    let item = s.class_by_name("item").unwrap();
    let dir = tmpdir("snap-race");
    let config = || RuntimeConfig {
        shards: 2,
        scheduler: Scheduler::LoadAware,
        storage: StorageMode::Durable(DurabilityConfig {
            dir: dir.clone(),
            group_commit: true,
            snapshot_every: 1,
        }),
        lifecycle: LifecycleConfig::with_max_resident(CAP),
        ..Default::default()
    };
    // no runtime triggers: each committed round adds exactly one object,
    // so a dropped tenant or lost round shows up as a hard count miss
    let round_script = |t: u64, round: usize| {
        let creates = if round == 1 { SEED_OBJECTS + 1 } else { 1 };
        vec![
            Job::Begin,
            Job::ExecBlock(
                (0..creates)
                    .map(|_| Op::Create {
                        class: item,
                        inits: vec![(chimera::model::AttrId(0), Value::Int((t % 97) as i64))],
                    })
                    .collect(),
            ),
            Job::Commit,
        ]
    };
    // Each round ends with a shutdown + recovery that audits every
    // tenant's full history. A lost-to-the-race tenant is *healed* by
    // its own next eviction (a fresh tsnap carries the full RAM state),
    // so only a race with no later eviction is observable — restarting
    // every round makes each one a "final" round instead of giving the
    // bug ROUNDS-1 chances to hide.
    let mut rt = Runtime::new(s.clone(), Vec::new(), config()).unwrap();
    for round in 1..=ROUNDS {
        for t in 0..TENANTS {
            for job in round_script(t, round) {
                rt.submit(TenantId(t), job).unwrap();
            }
        }
        rt.flush().unwrap();
        let stats = rt.stats();
        assert_eq!(stats.jobs_processed, stats.jobs_submitted);
        assert!(
            stats.snapshots > 0 && stats.evictions > 0,
            "round {round} must snapshot and evict (snapshots {}, evictions {})",
            stats.snapshots,
            stats.evictions
        );
        assert!(
            stats.rehydrations > 0 || round == 1,
            "round {round} must rehydrate parked tenants"
        );
        drop(rt);
        let (recovered, _report) = Runtime::recover(s.clone(), Vec::new(), config()).unwrap();
        rt = recovered;
        let stats = rt.stats();
        assert_eq!(
            stats.tenants as u64, TENANTS,
            "round {round}: a full snapshot concurrent with rehydration dropped tenants"
        );
        for t in 0..TENANTS {
            let extent = rt
                .with_tenant(TenantId(t), |e| e.extent(item).len())
                .expect("every tenant survives the snapshot/rehydration churn");
            assert_eq!(
                extent,
                SEED_OBJECTS + round,
                "tenant {t} lost committed state after round {round}"
            );
        }
    }
    drop(rt);
    let _ = std::fs::remove_dir_all(&dir);
}
