//! # chimera-runtime
//!
//! A sharded, multi-tenant parallel runtime over the single-threaded
//! Chimera engine.
//!
//! The paper's §5 execution architecture assumes one transaction's Event
//! Base per detector: a [`chimera_exec::Engine`] is deliberately a
//! single-threaded reactive machine. This crate serves *many concurrent
//! sessions* with that machine by composing three layers of parallelism,
//! none of which changes the per-tenant semantics:
//!
//! 1. **Tenant homes + exclusive claims** — every tenant ([`TenantId`])
//!    owns a private engine (schema + store + event base + rule table)
//!    and is *homed* on one of N shards by hash. The home owns the
//!    tenant's durable state and backpressure budget; execution is a
//!    separate concern: a worker *claims* a ready tenant exclusively,
//!    runs a FIFO batch of its jobs, and releases it. At most one worker
//!    ever holds a tenant, so all of a tenant's jobs execute in
//!    submission order — exactly the sequential engine, tenant by
//!    tenant — regardless of *which* thread ran each batch.
//! 2. **Load-aware admission pool** — jobs are staged per tenant in an
//!    admission pool; a tenant with staged jobs and no active claim sits
//!    in its home shard's ready deque. Workers drain their own deque
//!    first and, under [`Scheduler::LoadAware`] (the default), **steal
//!    whole ready tenants** from other homes when their own is empty —
//!    so one hot tenant (or a hash collision of warm ones) no longer
//!    caps the runtime at a single core while the other workers idle.
//!    [`Scheduler::Pinned`] keeps the old strictly-homed placement as a
//!    measurable baseline. Each home admits at most `queue_capacity`
//!    staged jobs; a full home either *blocks* the submitter or *sheds*
//!    the job per the configured [`Backpressure`], with counters for
//!    both (plus `steals` and per-shard breakdowns) in [`RuntimeStats`].
//! 3. **Intra-shard check parallelism** — inside an engine, the per-block
//!    trigger check round itself can fan the rule table's probe work out
//!    across a scoped worker pool over the block's shared EB epoch delta
//!    (`EngineConfig::check_workers`); the sequential round is the same
//!    code path run as a single chunk, so `parallel == sequential` is a
//!    testable property, not an aspiration.
//!
//! The equivalence oracle is the plain sequential [`chimera_exec::Engine`]:
//! `tests/runtime_equivalence.rs` (facade-level) proves that interleaved
//! multi-tenant traffic through the runtime — including steal-heavy
//! shapes: one tenant over many workers, many colliding tenants over two
//! workers, skewed job mixes, both scheduler modes — leaves every tenant
//! with the identical triggered-rule sets, consumption windows, and net
//! effects as a per-tenant sequential replay.
//!
//! ## Durable tenants
//!
//! Each home shard owns a `chimera_persist::StateStore`. With
//! [`StorageMode::Durable`] the claiming worker appends every job's
//! intent to the *tenant's home shard's* job log *before* execution, and
//! the whole claimed batch shares one fsync (**group commit**) before
//! anyone is answered — so an acknowledged job is always durable, the
//! ~ms fsync cost is amortized across the batch, and a tenant's log
//! order equals its execution order no matter which worker ran the batch
//! (claims are exclusive, appends precede execution within a claim).
//! [`Runtime::recover`] rebuilds every tenant bit-identically from the
//! shard snapshot + job-log replay (event logs, consumption windows,
//! rule stamps, error bookkeeping and open transactions included);
//! periodic snapshots truncate the log. The crash oracle is
//! `tests/durable_recovery.rs`: kill the process at any byte of the log
//! — including a torn final record — and recovery equals a sequential
//! replay of exactly the surviving prefix.
//!
//! ## Storage robustness
//!
//! Store faults are classified transient-vs-permanent
//! (`chimera_persist::PersistError::is_transient`). A transient fault on
//! append/commit/snapshot gets a bounded retry with doubling backoff
//! (counted in [`RuntimeStats::store_retries`]) before anything
//! escalates; only an exhausted budget or a permanent error *poisons*
//! the home. A poisoned home degrades, it does not crash: its tenants'
//! jobs are answered with the typed [`JobOutcome::RefusedDurability`]
//! (never a hang, never a silent drop — submission/completion accounting
//! still closes), every other shard keeps full service, and
//! [`RuntimeStats::shards_poisoned`] makes the state observable. The
//! operator repair path is [`Runtime::reopen_shard_store`]: after a
//! flush, a replacement store is built, the live tenants homed there are
//! snapshotted into it, and the home resumes durable service. Fault
//! injection for all of this lives in the `chimera-chaos` crate (a
//! [`StoreWrap`] hook wraps each home's store); the oracle is
//! `tests/chaos_recovery.rs`. One escape hatch keeps the repair path
//! reachable: a poisoned home still *runs* [`Job::Rollback`] (RAM-only,
//! nothing logged — the store is dead and rolling back needs nothing
//! from it), so a tenant demoted mid-transaction can reach the
//! committed-only state `reopen_shard_store` requires.
//!
//! ## Telemetry
//!
//! With [`RuntimeConfig::telemetry`] on, every worker feeds a shared
//! `chimera_telemetry::Telemetry` recorder ([`Runtime::telemetry`]):
//! per-job stage histograms — queue wait (submission → claim), WAL
//! append, execution, the group-commit fsync, reply delivery — plus
//! counters (batches claimed, store retries, demotions, poisonings)
//! and postmortem trace events (jobs claimed, homes poisoned, stores
//! reopened) in a fixed-capacity ring. Recording is one `Instant` read
//! plus one relaxed `fetch_add` into a per-worker shard; the default
//! off mode is a `None` branch (`benches/telemetry.rs` bounds on-mode
//! within 5% of off on the house block workload). `chimera-net`
//! exposes the whole registry over the wire as `MetricsSnapshot`.
//!
//! ## Quick tour
//!
//! ```
//! use chimera_runtime::{Job, Runtime, RuntimeConfig, TenantId};
//! use chimera_exec::Op;
//! use chimera_model::{AttrDef, AttrType, SchemaBuilder};
//!
//! let mut b = SchemaBuilder::new();
//! b.class("stock", None, vec![AttrDef::new("qty", AttrType::Integer)]).unwrap();
//! let schema = b.build();
//! let stock = schema.class_by_name("stock").unwrap();
//!
//! let rt = Runtime::new(schema, vec![], RuntimeConfig::default()).unwrap();
//! for t in 0..8 {
//!     rt.submit(TenantId(t), Job::Begin).unwrap();
//!     rt.submit(TenantId(t), Job::ExecBlock(vec![Op::Create { class: stock, inits: vec![] }])).unwrap();
//!     rt.submit(TenantId(t), Job::Commit).unwrap();
//! }
//! rt.flush().unwrap();
//! let stats = rt.stats();
//! assert_eq!(stats.tenants, 8);
//! assert_eq!(stats.engine.commits, 8);
//! assert_eq!(stats.jobs_processed, stats.jobs_submitted);
//! ```

mod pool;
mod runtime;
mod shard;
mod stats;

pub use runtime::{
    Backpressure, DurabilityConfig, Job, JobId, JobOutcome, JobReply, JobSummary, RecoveryReport,
    Runtime, RuntimeConfig, RuntimeError, Scheduler, StorageMode, StoreWrap, TenantId,
};
pub use stats::{RuntimeStats, ShardStats};

/// Compile-time `Send`/`Sync` audit of everything the runtime moves onto
/// or shares between worker threads. A regression here (say, a `Rc`
/// slipping into the rule table) becomes a build error, not a data race.
#[allow(dead_code)]
const fn assert_send<T: Send>() {}
#[allow(dead_code)]
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send::<chimera_exec::Engine>();
    assert_send::<chimera_rules::RuleTable>();
    assert_send::<chimera_rules::TriggerSupport>();
    assert_send::<chimera_rules::RuleState>();
    assert_send_sync::<chimera_calculus::PlanEval>();
    assert_send_sync::<chimera_events::EventBase>();
    assert_send_sync::<Runtime>();
    assert_send::<Job>();
};
