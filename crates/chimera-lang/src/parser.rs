//! Recursive-descent parser.
//!
//! Event expressions follow the Fig. 1 priorities exactly:
//!
//! ```text
//! disj  := conj (',' conj)*              -- set disjunction (loosest)
//! conj  := neg (('+' | '<') neg)*        -- set conjunction / precedence
//! neg   := '-' neg | idisj               -- set negation
//! idisj := iconj (',=' iconj)*           -- instance disjunction
//! iconj := ineg (('+=' | '<=') ineg)*    -- instance conjunction / prec.
//! ineg  := '-=' ineg | atom              -- instance negation
//! atom  := '(' disj ')' | event_atom
//! ```
//!
//! Inside the `occurred`/`at` event formulas only the instance-oriented
//! fragment is accepted (§3.3), which also disambiguates the bare `,`
//! separating formula arguments from the set-disjunction operator.
//!
//! Event atoms resolve against the schema built so far; inside a rule
//! `for CLASS`, bare atoms (`create`, `modify(quantity)`) default to the
//! target class, otherwise the class-qualified forms (`create(stock)`,
//! `modify(stock.quantity)`) are required.

use crate::ast::{AttrSpec, ClassDecl, Item, Program, ScriptStmt, TriggerDecl};
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};
use crate::Result;
use chimera_calculus::EventExpr;
use chimera_events::EventType;
use chimera_model::{AttrDef, AttrType, ClassId, Schema, SchemaBuilder, Value};
use chimera_rules::condition::{CmpOp, Condition, Formula, Term, VarDecl};
use chimera_rules::{ActionStmt, ConsumptionMode, CouplingMode};

/// The parser. Tracks a growing schema so trigger declarations can
/// resolve event-type names against earlier class declarations.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    builder: SchemaBuilder,
}

/// Parse a whole program; returns the AST and the schema implied by its
/// class declarations.
pub fn parse_program(src: &str) -> Result<(Program, Schema)> {
    let mut p = Parser::new(src)?;
    let prog = p.program()?;
    Ok((prog, p.builder.build()))
}

/// Parse a standalone event expression against an existing schema
/// (`target` supplies the class for bare atoms).
pub fn parse_event_expr(src: &str, schema: &Schema, target: Option<ClassId>) -> Result<EventExpr> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        builder: SchemaBuilder::new(),
    };
    let expr = p.event_disj_with(schema, target)?;
    p.expect_eof()?;
    Ok(expr)
}

/// Parse a sequence of `define … trigger … end` declarations against an
/// *existing* schema — the entry point for callers whose classes are
/// already fixed (a networked `DefineTriggers` request, a trigger loaded
/// into a live engine). Class declarations and script statements are
/// rejected: only triggers may arrive through here.
pub fn parse_trigger_decls(src: &str, schema: &Schema) -> Result<Vec<TriggerDecl>> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        builder: SchemaBuilder::new(),
    };
    let mut decls = Vec::new();
    while !matches!(p.peek(), TokenKind::Eof) {
        p.expect_kw("define")?;
        if p.peek().is_kw("class") {
            return Err(p.err(
                "class declarations are not allowed here: the schema is already fixed",
            ));
        }
        decls.push(p.trigger_decl_with(schema)?);
    }
    Ok(decls)
}

impl Parser {
    /// New parser over a source string.
    pub fn new(src: &str) -> Result<Self> {
        Ok(Parser {
            tokens: lex(src)?,
            pos: 0,
            builder: SchemaBuilder::new(),
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }
    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }
    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }
    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }
    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }
    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }
    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected {}", self.peek())))
        }
    }
    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.span())
    }

    // ------------------------------------------------------ program level

    /// `program := item*`
    pub fn program(&mut self) -> Result<Program> {
        let mut items = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item> {
        if self.peek().is_kw("define") {
            self.bump();
            // define class … | define [modes] trigger …
            if self.peek().is_kw("class") {
                self.bump();
                Ok(Item::Class(self.class_decl()?))
            } else {
                Ok(Item::Trigger(self.trigger_decl()?))
            }
        } else {
            Ok(Item::Stmt(self.script_stmt()?))
        }
    }

    // ---------------------------------------------------------- class decl

    fn class_decl(&mut self) -> Result<ClassDecl> {
        let name = self.ident()?;
        let superclass = if self.eat_kw("extends") {
            Some(self.ident()?)
        } else {
            None
        };
        let mut attrs = Vec::new();
        if self.eat_kw("attributes") {
            loop {
                let aname = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ident()?;
                let default = if self.eat_kw("default") {
                    Some(self.value_literal()?)
                } else {
                    None
                };
                attrs.push(AttrSpec {
                    name: aname,
                    ty,
                    default,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("end")?;
        let decl = ClassDecl {
            name,
            superclass,
            attrs,
        };
        self.feed_class(&decl)?;
        Ok(decl)
    }

    /// Register a parsed class with the internal schema builder.
    fn feed_class(&mut self, decl: &ClassDecl) -> Result<()> {
        let mut defs = Vec::with_capacity(decl.attrs.len());
        for a in &decl.attrs {
            let ty = attr_type_by_name(&a.ty)
                .ok_or_else(|| self.err(format!("unknown attribute type `{}`", a.ty)))?;
            let def = match &a.default {
                Some(v) => AttrDef::with_default(&a.name, ty, v.clone()),
                None => AttrDef::new(&a.name, ty),
            };
            defs.push(def);
        }
        self.builder
            .class(&decl.name, decl.superclass.as_deref(), defs)
            .map_err(|e| self.err(e.to_string()))?;
        Ok(())
    }

    fn value_literal(&mut self) -> Result<Value> {
        match self.bump() {
            TokenKind::Int(v) => Ok(Value::Int(v)),
            TokenKind::Float(v) => Ok(Value::float(v)),
            TokenKind::Str(s) => Ok(Value::Str(s)),
            TokenKind::Minus => match self.bump() {
                TokenKind::Int(v) => Ok(Value::Int(-v)),
                TokenKind::Float(v) => Ok(Value::float(-v)),
                other => Err(self.err(format!("expected number after `-`, found {other}"))),
            },
            TokenKind::Ident(s) if s == "true" => Ok(Value::Bool(true)),
            TokenKind::Ident(s) if s == "false" => Ok(Value::Bool(false)),
            TokenKind::Ident(s) if s == "null" => Ok(Value::Null),
            other => Err(self.err(format!("expected literal, found {other}"))),
        }
    }

    // -------------------------------------------------------- trigger decl

    fn trigger_decl(&mut self) -> Result<TriggerDecl> {
        let schema = self.builder.current().clone();
        self.trigger_decl_with(&schema)
    }

    /// Parse one trigger declaration (after its `define`) resolving
    /// names against `schema` — the schema built so far when parsing a
    /// whole program, or a caller-supplied one ([`parse_trigger_decls`]).
    fn trigger_decl_with(&mut self, schema: &Schema) -> Result<TriggerDecl> {
        let mut coupling = CouplingMode::Immediate;
        let mut consumption = ConsumptionMode::Consuming;
        loop {
            if self.eat_kw("immediate") {
                coupling = CouplingMode::Immediate;
            } else if self.eat_kw("deferred") {
                coupling = CouplingMode::Deferred;
            } else if self.eat_kw("consuming") {
                consumption = ConsumptionMode::Consuming;
            } else if self.eat_kw("preserving") {
                consumption = ConsumptionMode::Preserving;
            } else {
                break;
            }
        }
        self.expect_kw("trigger")?;
        let name = self.ident()?;
        let target_name = if self.eat_kw("for") {
            Some(self.ident()?)
        } else {
            None
        };
        let target = match &target_name {
            Some(n) => Some(
                schema
                    .class_by_name(n)
                    .map_err(|e| self.err(e.to_string()))?,
            ),
            None => None,
        };
        self.expect_kw("events")?;
        let events = self.event_disj_with(schema, target)?;
        let condition = if self.eat_kw("condition") {
            self.condition(schema, target)?
        } else {
            Condition::always()
        };
        let actions = if self.eat_kw("actions") || self.eat_kw("action") {
            self.actions()?
        } else {
            Vec::new()
        };
        let priority = if self.eat_kw("priority") {
            match self.bump() {
                TokenKind::Int(v) => v as i32,
                TokenKind::Minus => match self.bump() {
                    TokenKind::Int(v) => -(v as i32),
                    other => return Err(self.err(format!("expected integer, found {other}"))),
                },
                other => return Err(self.err(format!("expected integer, found {other}"))),
            }
        } else {
            0
        };
        self.expect_kw("end")?;
        events
            .validate()
            .map_err(|e| self.err(format!("invalid event expression: {e}")))?;
        Ok(TriggerDecl {
            name,
            target: target_name,
            events,
            condition,
            actions,
            coupling,
            consumption,
            priority,
        })
    }

    // ---------------------------------------------------- event expressions

    fn event_disj_with(&mut self, schema: &Schema, target: Option<ClassId>) -> Result<EventExpr> {
        let mut lhs = self.event_conj(schema, target)?;
        while self.eat(&TokenKind::Comma) {
            let rhs = self.event_conj(schema, target)?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn event_conj(&mut self, schema: &Schema, target: Option<ClassId>) -> Result<EventExpr> {
        let mut lhs = self.event_neg(schema, target)?;
        loop {
            if self.eat(&TokenKind::Plus) {
                let rhs = self.event_neg(schema, target)?;
                lhs = lhs.and(rhs);
            } else if self.eat(&TokenKind::Lt) {
                let rhs = self.event_neg(schema, target)?;
                lhs = lhs.prec(rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn event_neg(&mut self, schema: &Schema, target: Option<ClassId>) -> Result<EventExpr> {
        if self.eat(&TokenKind::Minus) {
            Ok(self.event_neg(schema, target)?.not())
        } else {
            self.event_idisj(schema, target)
        }
    }

    fn event_idisj(&mut self, schema: &Schema, target: Option<ClassId>) -> Result<EventExpr> {
        let mut lhs = self.event_iconj(schema, target)?;
        while self.eat(&TokenKind::CommaEq) {
            let rhs = self.event_iconj(schema, target)?;
            lhs = lhs.ior(rhs);
        }
        Ok(lhs)
    }

    fn event_iconj(&mut self, schema: &Schema, target: Option<ClassId>) -> Result<EventExpr> {
        let mut lhs = self.event_ineg(schema, target)?;
        loop {
            if self.eat(&TokenKind::PlusEq) {
                let rhs = self.event_ineg(schema, target)?;
                lhs = lhs.iand(rhs);
            } else if self.eat(&TokenKind::LtEq) {
                let rhs = self.event_ineg(schema, target)?;
                lhs = lhs.iprec(rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn event_ineg(&mut self, schema: &Schema, target: Option<ClassId>) -> Result<EventExpr> {
        if self.eat(&TokenKind::MinusEq) {
            Ok(self.event_ineg(schema, target)?.inot())
        } else {
            self.event_atom(schema, target)
        }
    }

    fn event_atom(&mut self, schema: &Schema, target: Option<ClassId>) -> Result<EventExpr> {
        if self.eat(&TokenKind::LParen) {
            let e = self.event_disj_with(schema, target)?;
            self.expect(TokenKind::RParen)?;
            return Ok(e);
        }
        let kw = self.ident()?;
        let ty = self.event_type_tail(&kw, schema, target)?;
        Ok(EventExpr::prim(ty))
    }

    /// Instance-oriented-only expression (for `occurred`/`at` arguments).
    fn event_instance_expr(
        &mut self,
        schema: &Schema,
        target: Option<ClassId>,
    ) -> Result<EventExpr> {
        let mut lhs = self.event_instance_conj(schema, target)?;
        while self.eat(&TokenKind::CommaEq) {
            let rhs = self.event_instance_conj(schema, target)?;
            lhs = lhs.ior(rhs);
        }
        Ok(lhs)
    }

    fn event_instance_conj(
        &mut self,
        schema: &Schema,
        target: Option<ClassId>,
    ) -> Result<EventExpr> {
        let mut lhs = self.event_instance_neg(schema, target)?;
        loop {
            if self.eat(&TokenKind::PlusEq) {
                let rhs = self.event_instance_neg(schema, target)?;
                lhs = lhs.iand(rhs);
            } else if self.eat(&TokenKind::LtEq) {
                let rhs = self.event_instance_neg(schema, target)?;
                lhs = lhs.iprec(rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn event_instance_neg(
        &mut self,
        schema: &Schema,
        target: Option<ClassId>,
    ) -> Result<EventExpr> {
        if self.eat(&TokenKind::MinusEq) {
            Ok(self.event_instance_neg(schema, target)?.inot())
        } else if self.eat(&TokenKind::LParen) {
            let e = self.event_instance_expr(schema, target)?;
            self.expect(TokenKind::RParen)?;
            Ok(e)
        } else {
            let kw = self.ident()?;
            Ok(EventExpr::prim(self.event_type_tail(&kw, schema, target)?))
        }
    }

    /// After an event keyword: the optional `(class[.attr])` tail.
    fn event_type_tail(
        &mut self,
        kw: &str,
        schema: &Schema,
        target: Option<ClassId>,
    ) -> Result<EventType> {
        let needs_attr = kw == "modify";
        let make = |class: ClassId, attr: Option<&str>, p: &Self| -> Result<EventType> {
            match kw {
                "create" => Ok(EventType::create(class)),
                "delete" => Ok(EventType::delete(class)),
                "generalize" => Ok(EventType::generalize(class)),
                "specialize" => Ok(EventType::specialize(class)),
                "select" => Ok(EventType::select(class)),
                "modify" => {
                    let a = attr.ok_or_else(|| p.err("modify requires an attribute"))?;
                    let aid = schema
                        .attr_by_name(class, a)
                        .map_err(|e| p.err(e.to_string()))?;
                    Ok(EventType::modify(class, aid))
                }
                "external" => {
                    Err(p.err("external events need a channel: `external(class#N)`"))
                }
                other => Err(p.err(format!("unknown event type `{other}`"))),
            }
        };
        if self.eat(&TokenKind::LParen) {
            let first = self.ident()?;
            // disambiguate: `(class)`, `(class.attr)`, `(class#chan)`, or
            // targeted `(attr)`
            if self.eat(&TokenKind::Hash) {
                if kw != "external" {
                    return Err(self.err(format!("`#` is only valid in external events, not `{kw}`")));
                }
                let chan = match self.bump() {
                    TokenKind::Int(v) if v >= 0 => v as u32,
                    other => {
                        return Err(self.err(format!("expected channel number, found {other}")))
                    }
                };
                self.expect(TokenKind::RParen)?;
                let class = schema
                    .class_by_name(&first)
                    .map_err(|e| self.err(e.to_string()))?;
                return Ok(EventType::external(class, chan));
            }
            if self.eat(&TokenKind::Dot) {
                let attr = self.ident()?;
                self.expect(TokenKind::RParen)?;
                let class = schema
                    .class_by_name(&first)
                    .map_err(|e| self.err(e.to_string()))?;
                make(class, Some(&attr), self)
            } else {
                self.expect(TokenKind::RParen)?;
                if needs_attr {
                    // `modify(attr)` requires a target class
                    let class = target.ok_or_else(|| {
                        self.err("untargeted rule: write `modify(class.attr)`")
                    })?;
                    make(class, Some(&first), self)
                } else if let Ok(class) = schema.class_by_name(&first) {
                    make(class, None, self)
                } else if let Some(tclass) = target {
                    // not a class name: maybe a targeted attr by mistake
                    let _ = tclass;
                    Err(self.err(format!("unknown class `{first}`")))
                } else {
                    Err(self.err(format!("unknown class `{first}`")))
                }
            }
        } else {
            // bare atom: needs target class
            let class = target.ok_or_else(|| {
                self.err(format!("untargeted rule: write `{kw}(class)`"))
            })?;
            make(class, None, self)
        }
    }

    // ----------------------------------------------------------- condition

    fn condition(&mut self, schema: &Schema, target: Option<ClassId>) -> Result<Condition> {
        let mut decls = Vec::new();
        let mut formulas = Vec::new();
        loop {
            if self.peek().is_kw("occurred") {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let expr = self.event_instance_expr(schema, target)?;
                self.expect(TokenKind::Comma)?;
                let var = self.ident()?;
                self.expect(TokenKind::RParen)?;
                formulas.push(Formula::Occurred { expr, var });
            } else if self.peek().is_kw("at") {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let expr = self.event_instance_expr(schema, target)?;
                self.expect(TokenKind::Comma)?;
                let var = self.ident()?;
                self.expect(TokenKind::Comma)?;
                let time_var = self.ident()?;
                self.expect(TokenKind::RParen)?;
                formulas.push(Formula::At {
                    expr,
                    var,
                    time_var,
                });
            } else if matches!(self.peek(), TokenKind::Ident(_))
                && matches!(self.tokens.get(self.pos + 1).map(|t| &t.kind), Some(TokenKind::LParen))
            {
                // class(Var) declaration
                let class = self.ident()?;
                self.expect(TokenKind::LParen)?;
                let var = self.ident()?;
                self.expect(TokenKind::RParen)?;
                decls.push(VarDecl { name: var, class });
            } else {
                // comparison: term op term
                let lhs = self.term()?;
                let op = self.cmp_op()?;
                let rhs = self.term()?;
                formulas.push(Formula::Compare { lhs, op, rhs });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Condition { decls, formulas })
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::NotEq => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::LtEq => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::GtEq => CmpOp::Ge,
            other => return Err(self.err(format!("expected comparison operator, found {other}"))),
        };
        self.bump();
        Ok(op)
    }

    // --------------------------------------------------------------- terms

    /// `term := factor (('+'|'-') factor)*`
    pub fn term(&mut self) -> Result<Term> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                lhs = Term::Add(Box::new(lhs), Box::new(self.factor()?));
            } else if self.eat(&TokenKind::Minus) {
                lhs = Term::Sub(Box::new(lhs), Box::new(self.factor()?));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Term> {
        let mut lhs = self.primary()?;
        while self.eat(&TokenKind::Star) {
            lhs = Term::Mul(Box::new(lhs), Box::new(self.primary()?));
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Term> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.bump();
                let t = self.term()?;
                self.expect(TokenKind::RParen)?;
                Ok(t)
            }
            TokenKind::Int(_)
            | TokenKind::Float(_)
            | TokenKind::Str(_)
            | TokenKind::Minus => Ok(Term::Const(self.value_literal()?)),
            TokenKind::Ident(s) if s == "true" || s == "false" || s == "null" => {
                Ok(Term::Const(self.value_literal()?))
            }
            TokenKind::Ident(_) => {
                let var = self.ident()?;
                if self.eat(&TokenKind::Dot) {
                    let attr = self.ident()?;
                    Ok(Term::attr(var, attr))
                } else {
                    Ok(Term::var(var))
                }
            }
            other => Err(self.err(format!("expected term, found {other}"))),
        }
    }

    // ------------------------------------------------------------- actions

    fn actions(&mut self) -> Result<Vec<ActionStmt>> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Ident(s)
                    if matches!(
                        s.as_str(),
                        "modify" | "create" | "delete" | "specialize" | "generalize"
                    ) =>
                {
                    out.push(self.action_stmt()?);
                    // optional separators
                    while self.eat(&TokenKind::Semi) || self.eat(&TokenKind::Comma) {}
                }
                _ => break,
            }
        }
        if out.is_empty() {
            return Err(self.err("expected at least one action statement"));
        }
        Ok(out)
    }

    fn action_stmt(&mut self) -> Result<ActionStmt> {
        let kw = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let stmt = match kw.as_str() {
            "delete" => {
                let var = self.ident()?;
                ActionStmt::Delete { var }
            }
            "specialize" | "generalize" => {
                let var = self.ident()?;
                self.expect(TokenKind::Comma)?;
                let tgt = self.ident()?;
                if kw == "specialize" {
                    ActionStmt::Specialize { var, target: tgt }
                } else {
                    ActionStmt::Generalize { var, target: tgt }
                }
            }
            "create" => {
                let class = self.ident()?;
                let mut inits = Vec::new();
                while self.eat(&TokenKind::Comma) {
                    let attr = self.ident()?;
                    self.expect(TokenKind::Colon)?;
                    inits.push((attr, self.term()?));
                }
                ActionStmt::Create { class, inits }
            }
            "modify" => {
                // form 1: modify(Var.attr, term)
                // form 2 (paper): modify(class.attr, Var, term)
                let first = self.ident()?;
                self.expect(TokenKind::Dot)?;
                let attr = self.ident()?;
                self.expect(TokenKind::Comma)?;
                let second = self.term()?;
                if self.eat(&TokenKind::Comma) {
                    let value = self.term()?;
                    let Term::Var(var) = second else {
                        return Err(self.err("expected variable as second modify argument"));
                    };
                    ActionStmt::Modify { var, attr, value }
                } else {
                    ActionStmt::Modify {
                        var: first,
                        attr,
                        value: second,
                    }
                }
            }
            other => return Err(self.err(format!("unknown action `{other}`"))),
        };
        self.expect(TokenKind::RParen)?;
        Ok(stmt)
    }

    // -------------------------------------------------------------- script

    fn script_stmt(&mut self) -> Result<ScriptStmt> {
        if self.eat(&TokenKind::LBrace) {
            let mut stmts = Vec::new();
            while !self.eat(&TokenKind::RBrace) {
                if matches!(self.peek(), TokenKind::Eof) {
                    return Err(self.err("unterminated `{` block"));
                }
                stmts.push(self.script_stmt()?);
            }
            return Ok(ScriptStmt::Block(stmts));
        }
        let stmt = if self.eat_kw("begin") {
            ScriptStmt::Begin
        } else if self.eat_kw("commit") {
            ScriptStmt::Commit
        } else if self.eat_kw("rollback") {
            ScriptStmt::Rollback
        } else if self.eat_kw("let") {
            let binding = self.ident()?;
            self.expect(TokenKind::Eq)?;
            self.expect_kw("create")?;
            let (class, inits) = self.create_tail()?;
            ScriptStmt::Create {
                binding: Some(binding),
                class,
                inits,
            }
        } else if self.eat_kw("create") {
            let (class, inits) = self.create_tail()?;
            ScriptStmt::Create {
                binding: None,
                class,
                inits,
            }
        } else if self.eat_kw("modify") {
            let var = self.ident()?;
            self.expect(TokenKind::Dot)?;
            let attr = self.ident()?;
            self.expect(TokenKind::Eq)?;
            let value = self.term()?;
            ScriptStmt::Modify { var, attr, value }
        } else if self.eat_kw("delete") {
            ScriptStmt::Delete { var: self.ident()? }
        } else if self.eat_kw("specialize") {
            let var = self.ident()?;
            self.expect_kw("to")?;
            ScriptStmt::Specialize {
                var,
                target: self.ident()?,
            }
        } else if self.eat_kw("generalize") {
            let var = self.ident()?;
            self.expect_kw("to")?;
            ScriptStmt::Generalize {
                var,
                target: self.ident()?,
            }
        } else if self.eat_kw("select") {
            ScriptStmt::Select {
                class: self.ident()?,
            }
        } else if self.eat_kw("raise") {
            let class = self.ident()?;
            self.expect(TokenKind::Hash)?;
            let channel = match self.bump() {
                TokenKind::Int(v) if v >= 0 => v as u32,
                other => return Err(self.err(format!("expected channel number, found {other}"))),
            };
            ScriptStmt::Raise { class, channel }
        } else {
            return Err(self.err(format!("expected statement, found {}", self.peek())));
        };
        self.expect(TokenKind::Semi)?;
        Ok(stmt)
    }

    fn create_tail(&mut self) -> Result<(String, Vec<(String, Term)>)> {
        let class = self.ident()?;
        let mut inits = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                let attr = self.ident()?;
                self.expect(TokenKind::Colon)?;
                inits.push((attr, self.term()?));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        Ok((class, inits))
    }
}

fn attr_type_by_name(name: &str) -> Option<AttrType> {
    Some(match name {
        "integer" | "int" => AttrType::Integer,
        "float" | "real" => AttrType::Float,
        "string" => AttrType::String,
        "boolean" | "bool" => AttrType::Boolean,
        "time" => AttrType::Time,
        "object" => AttrType::ObjectRef,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA_SRC: &str = "
define class stock
  attributes quantity: integer,
             max_quantity: integer default 100,
             min_quantity: integer default 0
end
define class show
  attributes quantity: integer
end
define class stockOrder
  attributes del_quantity: integer
end
";

    fn schema() -> Schema {
        parse_program(SCHEMA_SRC).unwrap().1
    }

    #[test]
    fn trigger_decls_parse_against_an_existing_schema() {
        let schema = schema();
        let decls = parse_trigger_decls(
            "define immediate trigger reorder for stock
               events create , modify(quantity)
               condition stock(S), S.quantity > S.max_quantity
               actions modify(S.quantity, S.max_quantity)
             end
             define deferred trigger audit
               events create(stockOrder)
             end",
            &schema,
        )
        .unwrap();
        assert_eq!(decls.len(), 2);
        assert_eq!(decls[0].name, "reorder");
        assert_eq!(decls[0].target.as_deref(), Some("stock"));
        let def = decls[0].lower(&schema).unwrap();
        assert_eq!(def.target, Some(schema.class_by_name("stock").unwrap()));
        assert_eq!(decls[1].coupling, CouplingMode::Deferred);

        // classes are fixed: a class declaration is rejected outright
        let err = parse_trigger_decls("define class rogue end", &schema).unwrap_err();
        assert!(err.to_string().contains("schema is already fixed"), "{err}");
        // and unknown names fail cleanly, not at lowering time
        assert!(parse_trigger_decls(
            "define trigger t events create(ghost) end",
            &schema
        )
        .is_err());
    }

    #[test]
    fn class_declarations_build_schema() {
        let (prog, schema) = parse_program(SCHEMA_SRC).unwrap();
        assert_eq!(prog.classes().count(), 3);
        let stock = schema.class_by_name("stock").unwrap();
        let maxq = schema.attr_by_name(stock, "max_quantity").unwrap();
        assert_eq!(
            schema.class(stock).unwrap().attrs[maxq.index()].default,
            Value::Int(100)
        );
    }

    #[test]
    fn inheritance_in_declarations() {
        let (_, schema) = parse_program(
            "define class a attributes x: integer end
             define class b extends a attributes y: float end",
        )
        .unwrap();
        let a = schema.class_by_name("a").unwrap();
        let b = schema.class_by_name("b").unwrap();
        assert!(schema.is_strict_subclass(b, a));
    }

    #[test]
    fn event_expression_priorities() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let q = s.attr_by_name(stock, "quantity").unwrap();
        // instance ops bind tighter than set ops
        let e = parse_event_expr(
            "create(stock) + create(stock) <= modify(stock.quantity)",
            &s,
            None,
        )
        .unwrap();
        let create = EventExpr::prim(EventType::create(stock));
        let modify = EventExpr::prim(EventType::modify(stock, q));
        assert_eq!(e, create.clone().and(create.clone().iprec(modify.clone())));
        // negation binds tighter than conjunction
        let e2 = parse_event_expr("- create(stock) + modify(stock.quantity)", &s, None).unwrap();
        assert_eq!(e2, create.clone().not().and(modify.clone()));
        // disjunction loosest
        let e3 =
            parse_event_expr("create(stock) , modify(stock.quantity) + create(stock)", &s, None)
                .unwrap();
        assert_eq!(e3, create.clone().or(modify.clone().and(create.clone())));
        // parens override
        let e4 =
            parse_event_expr("(create(stock) , modify(stock.quantity)) + create(stock)", &s, None)
                .unwrap();
        assert_eq!(e4, create.clone().or(modify).and(create));
    }

    #[test]
    fn targeted_atoms_use_target_class() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let q = s.attr_by_name(stock, "quantity").unwrap();
        let e = parse_event_expr("create , modify(quantity)", &s, Some(stock)).unwrap();
        assert_eq!(
            e,
            EventExpr::prim(EventType::create(stock))
                .or(EventExpr::prim(EventType::modify(stock, q)))
        );
        // untargeted bare atom is an error
        assert!(parse_event_expr("create", &s, None).is_err());
        assert!(parse_event_expr("modify(quantity)", &s, None).is_err());
    }

    #[test]
    fn paper_trigger_parses() {
        let src = format!(
            "{SCHEMA_SRC}
define immediate trigger checkStockQty for stock
  events create
  condition stock(S), occurred(create, S),
            S.quantity > S.max_quantity
  actions modify(stock.quantity, S, S.max_quantity)
end"
        );
        let (prog, schema) = parse_program(&src).unwrap();
        let t = prog.triggers().next().unwrap();
        assert_eq!(t.name, "checkStockQty");
        assert_eq!(t.target.as_deref(), Some("stock"));
        assert_eq!(t.coupling, CouplingMode::Immediate);
        let stock = schema.class_by_name("stock").unwrap();
        assert_eq!(t.events, EventExpr::prim(EventType::create(stock)));
        assert_eq!(t.condition.decls.len(), 1);
        assert_eq!(t.condition.formulas.len(), 2);
        assert_eq!(t.actions.len(), 1);
        assert!(matches!(
            &t.actions[0],
            ActionStmt::Modify { var, attr, .. } if var == "S" && attr == "quantity"
        ));
    }

    #[test]
    fn occurred_accepts_instance_expressions_only() {
        let src = format!(
            "{SCHEMA_SRC}
define trigger t for stock
  events create
  condition stock(S), occurred(create <= modify(quantity), S)
  actions delete(S)
end"
        );
        let (prog, schema) = parse_program(&src).unwrap();
        let t = prog.triggers().next().unwrap();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        match &t.condition.formulas[0] {
            Formula::Occurred { expr, var } => {
                assert_eq!(var, "S");
                assert_eq!(
                    expr,
                    &EventExpr::prim(EventType::create(stock))
                        .iprec(EventExpr::prim(EventType::modify(stock, q)))
                );
            }
            other => panic!("unexpected formula {other:?}"),
        }
    }

    #[test]
    fn at_formula_parses() {
        let src = format!(
            "{SCHEMA_SRC}
define trigger t for stock
  events create
  condition stock(S), at(create, S, T), T >= 3
  actions delete(S)
end"
        );
        let (prog, _) = parse_program(&src).unwrap();
        let t = prog.triggers().next().unwrap();
        assert!(matches!(
            &t.condition.formulas[0],
            Formula::At { var, time_var, .. } if var == "S" && time_var == "T"
        ));
        assert!(matches!(
            &t.condition.formulas[1],
            Formula::Compare { op: CmpOp::Ge, .. }
        ));
    }

    #[test]
    fn trigger_modes_and_priority() {
        let src = format!(
            "{SCHEMA_SRC}
define deferred preserving trigger t for stock
  events create
  actions delete(S)
  priority 7
end"
        );
        let (prog, _) = parse_program(&src).unwrap();
        let t = prog.triggers().next().unwrap();
        assert_eq!(t.coupling, CouplingMode::Deferred);
        assert_eq!(t.consumption, ConsumptionMode::Preserving);
        assert_eq!(t.priority, 7);
    }

    #[test]
    fn invalid_event_expression_rejected_at_parse() {
        // set conjunction inside instance operator
        let src = format!(
            "{SCHEMA_SRC}
define trigger bad for stock
  events (create + delete) += modify(quantity)
  actions delete(S)
end"
        );
        assert!(parse_program(&src).is_err());
    }

    #[test]
    fn script_statements() {
        let src = format!(
            "{SCHEMA_SRC}
begin;
let s1 = create stock(quantity: 10, max_quantity: 50);
create show;
{{ modify s1.quantity = 20; delete s1; }}
select stock;
commit;
rollback;
"
        );
        let (prog, _) = parse_program(&src).unwrap();
        let stmts: Vec<_> = prog
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Stmt(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(stmts.len(), 7);
        assert_eq!(stmts[0], &ScriptStmt::Begin);
        assert!(matches!(
            stmts[1],
            ScriptStmt::Create { binding: Some(b), class, .. } if b == "s1" && class == "stock"
        ));
        assert!(matches!(stmts[2], ScriptStmt::Create { binding: None, .. }));
        match stmts[3] {
            ScriptStmt::Block(inner) => assert_eq!(inner.len(), 2),
            other => panic!("expected block, got {other:?}"),
        }
        assert!(matches!(stmts[4], ScriptStmt::Select { class } if class == "stock"));
        assert_eq!(stmts[5], &ScriptStmt::Commit);
        assert_eq!(stmts[6], &ScriptStmt::Rollback);
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_program("define class stock attributes q: bogus end").unwrap_err();
        assert!(err.to_string().contains("unknown attribute type"));
        let err = parse_program("begin").unwrap_err();
        assert!(err.to_string().contains("`;`"), "{err}");
    }

    #[test]
    fn external_events_and_raise() {
        // external event type in a trigger's event part
        let src = format!(
            "{SCHEMA_SRC}
define trigger onTick for stock
  events external(stock#3) + -modify(quantity)
end
begin;
raise stock#3;
commit;
"
        );
        let (prog, schema) = parse_program(&src).unwrap();
        let t = prog.triggers().next().unwrap();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        assert_eq!(
            t.events,
            EventExpr::prim(EventType::external(stock, 3))
                .and(EventExpr::prim(EventType::modify(stock, q)).not())
        );
        // the raise statement
        let raise = prog
            .items
            .iter()
            .find_map(|i| match i {
                crate::ast::Item::Stmt(crate::ast::ScriptStmt::Raise { class, channel }) => {
                    Some((class.clone(), *channel))
                }
                _ => None,
            })
            .expect("raise statement parsed");
        assert_eq!(raise, ("stock".to_string(), 3));
        // printing the event expression re-parses (`external(stock#3)`)
        let printed = t.events.render(&schema);
        assert!(printed.contains("external(stock#3)"), "{printed}");
        let back = crate::parse_event_expr(&printed, &schema, None).unwrap();
        assert_eq!(back, t.events);
    }

    #[test]
    fn external_event_errors() {
        let src = format!(
            "{SCHEMA_SRC}
define trigger t for stock events external(stock) end"
        );
        let err = parse_program(&src).unwrap_err();
        assert!(err.to_string().contains("channel"), "{err}");
        let src2 = format!(
            "{SCHEMA_SRC}
define trigger t for stock events create(stock#1) end"
        );
        let err2 = parse_program(&src2).unwrap_err();
        assert!(err2.to_string().contains("only valid in external"), "{err2}");
        let src3 = format!(
            "{SCHEMA_SRC}
begin; raise stock#x;"
        );
        let err3 = parse_program(&src3).unwrap_err();
        assert!(err3.to_string().contains("channel number"), "{err3}");
    }

    #[test]
    fn action_forms() {
        let src = format!(
            "{SCHEMA_SRC}
define trigger t for stock
  events create
  condition stock(S), occurred(create, S)
  actions modify(S.quantity, 5);
          create(show, quantity: S.quantity);
          specialize(S, stock);
          generalize(S, stock);
          delete(S)
end"
        );
        let (prog, _) = parse_program(&src).unwrap();
        let t = prog.triggers().next().unwrap();
        assert_eq!(t.actions.len(), 5);
        assert!(matches!(&t.actions[0], ActionStmt::Modify { var, .. } if var == "S"));
        assert!(matches!(&t.actions[1], ActionStmt::Create { class, inits } if class == "show" && inits.len() == 1));
        assert!(matches!(&t.actions[2], ActionStmt::Specialize { .. }));
        assert!(matches!(&t.actions[3], ActionStmt::Generalize { .. }));
        assert!(matches!(&t.actions[4], ActionStmt::Delete { .. }));
    }
}
