//! Crash-recovery oracle for the durable runtime (the PR-6 tentpole).
//!
//! The claim under test: **an acknowledged job is durable, and recovery
//! is bit-identical to a sequential replay of exactly the surviving
//! prefix.** The suite simulates a crash by byte-truncating one shard's
//! job log at an arbitrary position — including mid-record, the torn
//! final write a real crash leaves — then recovers a fresh runtime from
//! the directory and compares every tenant against a plain sequential
//! [`Engine`] replaying the first `survived(t)` of that tenant's jobs:
//! objects and extents, the full event log with timestamps, rule
//! consumption windows (`last_consideration` / `last_consumption` /
//! `checked_upto`), engine counters, open-transaction state, and the
//! error bookkeeping.
//!
//! `survived(t)` is computed from the on-disk state itself through the
//! persist layer's readers (snapshot `jobs_applied` + the tenant's jobs
//! in the valid log tail), so the oracle makes no assumption about
//! where the cut landed: whole surviving groups count, the torn tail
//! does not.
//!
//! Two tests: a deterministic single-shard run cut at *every* byte of
//! the log, and a proptest over random multi-tenant scripts × shard
//! counts × sync policies × snapshot cadences × cut positions.

use chimera::events::Timestamp;
use chimera::exec::{Engine, EngineConfig, Op};
use chimera::model::{AttrDef, AttrType, ClassId, Oid, Schema, SchemaBuilder, Value};
use chimera::persist::{JobLog, ShardSnapshot};
use chimera::prelude::EventType;
use chimera::rules::{ActionStmt, TriggerDef};
use chimera::runtime::{
    DurabilityConfig, Job, Runtime, RuntimeConfig, Scheduler, StorageMode, TenantId,
};
use chimera::workload::{ExprGenConfig, RandomExprGen, ZipfTenants, ZipfTenantsConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "item",
        None,
        vec![
            AttrDef::new("qty", AttrType::Integer),
            AttrDef::with_default("tag", AttrType::Integer, Value::Int(0)),
        ],
    )
    .unwrap();
    let s = b.build();
    assert_eq!(s.class_by_name("item").unwrap(), ClassId(0));
    s
}

/// Runtime-wide triggers: random §3 expressions, a third with Create
/// actions so firings have net store effects the oracle can diff.
fn runtime_triggers(seed: u64) -> Vec<TriggerDef> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RandomExprGen::new(ExprGenConfig {
        event_types: 4,
        max_depth: 3,
        instance_prob: 0.5,
        negation_prob: 0.2,
        seed: seed ^ 0xD1CE,
    });
    let k = rng.random_range(2..5usize);
    (0..k)
        .map(|i| {
            let mut def = TriggerDef::new(format!("r{i}"), g.generate());
            def.priority = rng.random_range(0..3i32);
            if i % 3 == 0 {
                def.actions = vec![ActionStmt::Create {
                    class: "item".into(),
                    inits: vec![],
                }];
            }
            def
        })
        .collect()
}

/// A tenant-local trigger source (one declaration). Only 3 distinct
/// names exist, so scripts redefine names and exercise the error path —
/// a duplicate definition must fail identically at replay.
fn trigger_source(k: u64) -> String {
    format!(
        "define immediate trigger s{} for item\n\
           events create, modify(qty)\n\
           condition item(S), S.qty > S.tag\n\
           actions modify(S.qty, S.tag)\n\
         end",
        k % 3
    )
}

fn random_job(rng: &mut StdRng, in_txn: bool, item: ClassId) -> Job {
    if !in_txn {
        // occasionally define a trigger before any transaction exists
        if rng.random_range(0..5u32) == 0 {
            return Job::DefineTriggerSource(trigger_source(rng.random_range(0..3u64)));
        }
        return Job::Begin;
    }
    match rng.random_range(0..11u32) {
        0..=4 => {
            let n = rng.random_range(1..4usize);
            let events = (0..n)
                .map(|_| {
                    (
                        item,
                        rng.random_range(0..4u32),
                        Oid(rng.random_range(0..4u64)),
                    )
                })
                .collect();
            Job::RaiseExternal(events)
        }
        5..=6 => {
            let n = rng.random_range(1..3usize);
            let ops = (0..n)
                .map(|_| Op::Create {
                    class: item,
                    inits: vec![(chimera::model::AttrId(0), Value::Int(rng.random_range(0..200i64)))],
                })
                .collect();
            Job::ExecBlock(ops)
        }
        7 => Job::Commit,
        8 => Job::Rollback,
        _ => Job::DefineTriggerSource(trigger_source(rng.random_range(0..3u64))),
    }
}

/// Everything observable about one tenant engine *except* the
/// trigger-support probe counters: those measure probe work done by
/// *this process* (a recovered engine re-probed only the replayed
/// tail), not tenant state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observed {
    stats: chimera::exec::EngineStats,
    in_txn: bool,
    eb_now: Timestamp,
    eb_log: Vec<(EventType, Oid, Timestamp)>,
    rules: Vec<(String, bool, bool, Timestamp, Timestamp, Timestamp)>,
    extent: Vec<Oid>,
}

fn observe(engine: &mut Engine, item: ClassId) -> Observed {
    let mut extent = engine.extent(item);
    extent.sort_unstable();
    Observed {
        stats: engine.stats(),
        in_txn: engine.in_transaction(),
        eb_now: engine.event_base().now(),
        eb_log: engine
            .event_base()
            .iter()
            .map(|e| (e.ty, e.oid, e.ts))
            .collect(),
        rules: engine
            .rules()
            .iter()
            .map(|(def, st)| {
                (
                    def.name.clone(),
                    st.triggered,
                    st.witness,
                    st.last_consideration,
                    st.last_consumption,
                    st.checked_upto,
                )
            })
            .collect(),
        extent,
    }
}

/// The sequential oracle: a fresh single-threaded engine replaying the
/// first `prefix` of one tenant's jobs, with the exact semantics of the
/// shard worker's `apply` (including the all-or-nothing trigger-source
/// job). Returns the observed state plus the error bookkeeping.
fn oracle_replay(
    schema: &Schema,
    triggers: &[TriggerDef],
    engine_cfg: &EngineConfig,
    jobs: &[Job],
    prefix: usize,
    item: ClassId,
) -> (Observed, u64, Option<String>) {
    let mut engine = Engine::with_config(schema.clone(), engine_cfg.clone());
    for def in triggers {
        engine.define_trigger(def.clone()).unwrap();
    }
    let mut errors = 0u64;
    let mut last_error = None;
    for job in &jobs[..prefix] {
        let res: Result<(), String> = match job.clone() {
            Job::Begin => engine.begin().map_err(|e| e.to_string()),
            Job::ExecBlock(ops) => engine.exec_block(&ops).map(|_| ()).map_err(|e| e.to_string()),
            Job::RaiseExternal(ev) => {
                engine.raise_external(&ev).map(|_| ()).map_err(|e| e.to_string())
            }
            Job::Commit => engine.commit().map_err(|e| e.to_string()),
            Job::Rollback => engine.rollback().map_err(|e| e.to_string()),
            Job::DefineTriggerSource(src) => apply_trigger_source(&mut engine, schema, &src),
            _ => Ok(()),
        };
        if let Err(msg) = res {
            errors += 1;
            last_error = Some(msg);
        }
    }
    (observe(&mut engine, item), errors, last_error)
}

/// Mirror of the shard worker's trigger-source application: every
/// declaration defines or the job undoes its own definitions.
fn apply_trigger_source(engine: &mut Engine, schema: &Schema, src: &str) -> Result<(), String> {
    let decls = chimera::lang::parse_trigger_decls(src, schema).map_err(|e| e.to_string())?;
    let mut defined: Vec<String> = Vec::with_capacity(decls.len());
    for decl in &decls {
        let result = decl
            .lower(schema)
            .map_err(|e| e.to_string())
            .and_then(|def| {
                let name = def.name.clone();
                engine
                    .define_trigger(def)
                    .map(|()| name)
                    .map_err(|e| e.to_string())
            });
        match result {
            Ok(name) => defined.push(name),
            Err(msg) => {
                for name in defined.iter().rev() {
                    let _ = engine.drop_trigger(name);
                }
                return Err(msg);
            }
        }
    }
    Ok(())
}

/// `survived(t)` for every tenant, from the on-disk state alone: each
/// shard's snapshot `jobs_applied` plus the tenant's jobs in the valid
/// tail of its (possibly truncated) log. Whole groups survive; a torn
/// tail does not.
fn survived_jobs(dir: &Path, shards: usize) -> HashMap<u64, u64> {
    let mut survived: HashMap<u64, u64> = HashMap::new();
    for i in 0..shards {
        let shard_dir = dir.join(format!("shard-{i}"));
        let snap_seq = match ShardSnapshot::read(&shard_dir.join("snap.chi")) {
            Ok(Some(snap)) => {
                for t in &snap.tenants {
                    *survived.entry(t.tenant).or_default() += t.jobs_applied;
                }
                snap.seq
            }
            _ => 0,
        };
        let wal = shard_dir.join("jobs.wal");
        if !wal.exists() {
            continue;
        }
        let outcome = JobLog::read(&wal, snap_seq + 1).expect("log tail is readable");
        for group in &outcome.groups {
            for (tenant, _) in &group.jobs {
                *survived.entry(*tenant).or_default() += 1;
            }
        }
    }
    survived
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chimera-durable-recovery-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run one interleaved multi-tenant script against a durable runtime,
/// then shut it down cleanly. Returns the per-tenant job lists.
#[allow(clippy::too_many_arguments)]
fn run_live(
    dir: &Path,
    s: &Schema,
    triggers: &[TriggerDef],
    engine_cfg: &EngineConfig,
    shards: usize,
    group_commit: bool,
    snapshot_every: u64,
    script_seed: u64,
    tenants: u64,
    steps: usize,
) -> Vec<Vec<Job>> {
    let item = s.class_by_name("item").unwrap();
    let rt = Runtime::new(
        s.clone(),
        triggers.to_vec(),
        RuntimeConfig {
            shards,
            storage: StorageMode::Durable(DurabilityConfig {
                dir: dir.to_path_buf(),
                group_commit,
                snapshot_every,
            }),
            engine: engine_cfg.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(script_seed);
    let mut in_txn = vec![false; tenants as usize];
    let mut per_tenant: Vec<Vec<Job>> = vec![Vec::new(); tenants as usize];
    for _ in 0..steps {
        let t = rng.random_range(0..tenants) as usize;
        let job = random_job(&mut rng, in_txn[t], item);
        match job {
            Job::Begin => in_txn[t] = true,
            Job::Commit | Job::Rollback => in_txn[t] = false,
            _ => {}
        }
        per_tenant[t].push(job.clone());
        rt.submit(TenantId(t as u64), job).unwrap();
    }
    rt.flush().unwrap();
    let stats = rt.stats();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert!(stats.wal_syncs >= 1, "durable run must have synced");
    per_tenant
}

/// Recover from `dir` and compare every tenant with the sequential
/// oracle replaying exactly the on-disk surviving prefix.
fn check_recovery(
    storage: &DurabilityConfig,
    s: &Schema,
    triggers: &[TriggerDef],
    engine_cfg: &EngineConfig,
    shards: usize,
    per_tenant: &[Vec<Job>],
) -> Result<(), TestCaseError> {
    let dir = storage.dir.clone();
    let dir = dir.as_path();
    let item = s.class_by_name("item").unwrap();
    let survived = survived_jobs(dir, shards);
    let (rt, report) = Runtime::recover(
        s.clone(),
        triggers.to_vec(),
        RuntimeConfig {
            shards,
            storage: StorageMode::Durable(storage.clone()),
            engine: engine_cfg.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    let mut replayed_total = 0u64;
    for (t, jobs) in per_tenant.iter().enumerate() {
        let n = survived.get(&(t as u64)).copied().unwrap_or(0);
        prop_assert!(
            (n as usize) <= jobs.len(),
            "tenant {t}: survived {n} > submitted {}",
            jobs.len()
        );
        replayed_total += n;
        let got = rt.with_tenant(TenantId(t as u64), |e| observe(e, item));
        if n == 0 {
            prop_assert!(got.is_none(), "tenant {t}: no surviving jobs, but an engine exists");
            continue;
        }
        let got = got.expect("tenant with surviving jobs has an engine");
        let (want, want_errors, want_last) =
            oracle_replay(s, triggers, engine_cfg, jobs, n as usize, item);
        prop_assert_eq!(&got, &want, "tenant {} diverged after recovery", t);
        let (errors, last) = rt.tenant_errors(TenantId(t as u64)).unwrap();
        prop_assert_eq!(errors, want_errors, "tenant {} error count", t);
        prop_assert_eq!(last, want_last, "tenant {} last error", t);
    }
    // the report's totals agree with the on-disk arithmetic: every
    // surviving job was either inside a snapshot or replayed
    let stats = rt.stats();
    prop_assert_eq!(
        stats.jobs_replayed + snapshot_applied(dir, shards),
        replayed_total,
        "snapshot + tail replay must cover every surviving job"
    );
    prop_assert_eq!(report.tenants_recovered, snapshot_tenants(dir, shards));
    Ok(())
}

/// Jobs accounted to snapshots (not replayed) across all shards.
fn snapshot_applied(dir: &Path, shards: usize) -> u64 {
    (0..shards)
        .filter_map(|i| {
            ShardSnapshot::read(&dir.join(format!("shard-{i}")).join("snap.chi"))
                .ok()
                .flatten()
        })
        .flat_map(|snap| snap.tenants.into_iter().map(|t| t.jobs_applied))
        .sum()
}

fn snapshot_tenants(dir: &Path, shards: usize) -> u64 {
    (0..shards)
        .filter_map(|i| {
            ShardSnapshot::read(&dir.join(format!("shard-{i}")).join("snap.chi"))
                .ok()
                .flatten()
        })
        .map(|snap| snap.tenants.len() as u64)
        .sum()
}

/// Deterministic torn-tail sweep: one shard, one tenant-pair script,
/// the job log cut at every byte from empty to full. Recovery must be
/// exactly the surviving prefix at every single cut.
#[test]
fn every_byte_cut_recovers_the_surviving_prefix() {
    let s = schema();
    let triggers = runtime_triggers(7);
    let engine_cfg = EngineConfig {
        max_rule_steps: 64,
        ..EngineConfig::default()
    };
    let dir = tmpdir("bytesweep");
    let per_tenant = run_live(&dir, &s, &triggers, &engine_cfg, 1, true, 0, 0xC0FFEE, 2, 14);
    let wal = dir.join("shard-0").join("jobs.wal");
    let full = std::fs::read(&wal).unwrap();
    assert!(!full.is_empty(), "the run must have logged something");

    for cut in 0..=full.len() {
        let case_dir = tmpdir("bytesweep-case");
        std::fs::create_dir_all(case_dir.join("shard-0")).unwrap();
        std::fs::copy(dir.join("meta.chi"), case_dir.join("meta.chi")).unwrap();
        std::fs::write(case_dir.join("shard-0").join("jobs.wal"), &full[..cut]).unwrap();
        let cfg = DurabilityConfig {
            dir: case_dir.clone(),
            group_commit: true,
            snapshot_every: 0,
        };
        check_recovery(&cfg, &s, &triggers, &engine_cfg, 1, &per_tenant)
            .unwrap_or_else(|e| panic!("cut at byte {cut}/{}: {e}", full.len()));
        let _ = std::fs::remove_dir_all(&case_dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn log tail is repairable damage; a corrupt *snapshot* is not —
/// the snapshot is the replay base, so silently dropping it would
/// resurrect a stale prefix as if it were current. Recovery must
/// refuse with a typed error instead, for a flipped bit and for a
/// truncation, and succeed again once the snapshot is restored.
#[test]
fn corrupt_snapshot_fails_recovery_with_typed_error() {
    use chimera::runtime::RuntimeError;
    let s = schema();
    let triggers: Vec<TriggerDef> = vec![];
    let engine_cfg = EngineConfig {
        max_rule_steps: 64,
        ..EngineConfig::default()
    };
    let dir = tmpdir("corrupt-snap");
    // snapshot after every group so the run is guaranteed to compact
    let rt = Runtime::new(
        s.clone(),
        triggers.clone(),
        RuntimeConfig {
            shards: 1,
            storage: StorageMode::Durable(DurabilityConfig {
                dir: dir.clone(),
                group_commit: true,
                snapshot_every: 1,
            }),
            engine: engine_cfg.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    let item = s.class_by_name("item").unwrap();
    for job in [
        Job::Begin,
        Job::ExecBlock(vec![Op::Create {
            class: item,
            inits: vec![(chimera::model::AttrId(0), Value::Int(5))],
        }]),
        Job::Commit,
    ] {
        rt.submit(TenantId(0), job).unwrap();
        rt.flush().unwrap(); // one job per group; a snapshot follows each
    }
    drop(rt);
    let snap = dir.join("shard-0").join("snap.chi");
    let pristine = std::fs::read(&snap).expect("the run must have snapshotted");
    let cfg = || RuntimeConfig {
        shards: 1,
        storage: StorageMode::Durable(DurabilityConfig {
            dir: dir.clone(),
            group_commit: true,
            snapshot_every: 1,
        }),
        engine: engine_cfg.clone(),
        ..Default::default()
    };
    let expect_refusal = |what: &str| {
        match Runtime::recover(s.clone(), triggers.clone(), cfg()) {
            Err(RuntimeError::Persist(msg)) => {
                assert!(msg.contains("snapshot"), "{what}: untyped error: {msg}")
            }
            Ok(_) => panic!("{what}: recovery accepted a corrupt snapshot"),
            Err(other) => panic!("{what}: expected Persist, got {other:?}"),
        }
    };
    // a single flipped bit mid-file
    let mut dirty = pristine.clone();
    let mid = dirty.len() / 2;
    dirty[mid] ^= 0x40;
    std::fs::write(&snap, &dirty).unwrap();
    expect_refusal("bit flip");
    // a truncated snapshot (crash-during-copy style damage)
    std::fs::write(&snap, &pristine[..pristine.len() / 2]).unwrap();
    expect_refusal("truncation");
    // restoring the pristine bytes recovers cleanly
    std::fs::write(&snap, &pristine).unwrap();
    let (rt, _) = Runtime::recover(s.clone(), triggers.clone(), cfg()).unwrap();
    assert_eq!(
        rt.with_tenant(TenantId(0), |e| e.extent(item).len()).unwrap(),
        1
    );
    drop(rt);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: random scripts × shard counts × sync
    /// policies × snapshot cadences × an arbitrary byte cut in one
    /// shard's log ⇒ recovery ≡ sequential replay of the surviving
    /// prefix, for every tenant.
    #[test]
    fn crashed_runtime_recovers_acknowledged_prefix(
        rule_seed in any::<u64>(),
        script_seed in any::<u64>(),
        tenants in 1u64..4,
        steps in 4usize..28,
        shards in 1usize..3,
        group_commit in any::<bool>(),
        snapshot_choice in 0u64..2,
        cut_shard in 0usize..2,
        cut_frac in 0.0f64..1.0,
    ) {
        let snapshot_every = snapshot_choice * 3; // 0 (never) or every 3 groups
        let s = schema();
        let triggers = runtime_triggers(rule_seed);
        let engine_cfg = EngineConfig { max_rule_steps: 64, ..EngineConfig::default() };
        let dir = tmpdir("prop");
        let per_tenant = run_live(
            &dir, &s, &triggers, &engine_cfg,
            shards, group_commit, snapshot_every, script_seed, tenants, steps,
        );
        // the crash: truncate one shard's log at an arbitrary byte
        let wal = dir.join(format!("shard-{}", cut_shard % shards)).join("jobs.wal");
        if let Ok(bytes) = std::fs::read(&wal) {
            let cut = (bytes.len() as f64 * cut_frac) as usize;
            std::fs::write(&wal, &bytes[..cut.min(bytes.len())]).unwrap();
        }
        let cfg = DurabilityConfig {
            dir: dir.clone(),
            group_commit,
            snapshot_every,
        };
        check_recovery(&cfg, &s, &triggers, &engine_cfg, shards, &per_tenant)?;
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The PR-7 durability property: load-aware stealing must not move a
    /// tenant's persistence. A Zipf-skewed submission mix (one hot tenant
    /// drawing most jobs, a cold tail getting stolen around it) runs on
    /// the load-aware scheduler, then the crash truncates the *hot
    /// tenant's home shard's* log — the shard whose store every claiming
    /// worker, wherever it ran, must have appended that tenant's jobs to.
    /// Recovery must still be the per-tenant surviving prefix.
    #[test]
    fn skewed_submission_crash_recovers_per_tenant_prefix(
        rule_seed in any::<u64>(),
        script_seed in any::<u64>(),
        tenants in 2u64..6,
        steps in 8usize..32,
        shards in 2usize..4,
        group_commit in any::<bool>(),
        snapshot_choice in 0u64..2,
        cut_frac in 0.0f64..1.0,
    ) {
        let snapshot_every = snapshot_choice * 3;
        let s = schema();
        let triggers = runtime_triggers(rule_seed);
        let engine_cfg = EngineConfig { max_rule_steps: 64, ..EngineConfig::default() };
        let dir = tmpdir("skew");
        let item = s.class_by_name("item").unwrap();
        let hot_home;
        let per_tenant = {
            let rt = Runtime::new(
                s.clone(),
                triggers.clone(),
                RuntimeConfig {
                    shards,
                    scheduler: Scheduler::LoadAware,
                    storage: StorageMode::Durable(DurabilityConfig {
                        dir: dir.clone(),
                        group_commit,
                        snapshot_every,
                    }),
                    engine: engine_cfg.clone(),
                    ..Default::default()
                },
            )
            .unwrap();
            hot_home = rt.shard_of(TenantId(0));
            let mut zipf = ZipfTenants::new(ZipfTenantsConfig {
                tenants,
                s: 1.2,
                hot_boost: 6.0,
                seed: script_seed ^ 0x21BF,
            });
            let mut rng = StdRng::seed_from_u64(script_seed);
            let mut in_txn = vec![false; tenants as usize];
            let mut per_tenant: Vec<Vec<Job>> = vec![Vec::new(); tenants as usize];
            for _ in 0..steps {
                let t = zipf.next_rank() as usize;
                let job = random_job(&mut rng, in_txn[t], item);
                match job {
                    Job::Begin => in_txn[t] = true,
                    Job::Commit | Job::Rollback => in_txn[t] = false,
                    _ => {}
                }
                per_tenant[t].push(job.clone());
                rt.submit(TenantId(t as u64), job).unwrap();
            }
            rt.flush().unwrap();
            let stats = rt.stats();
            prop_assert_eq!(stats.jobs_processed, stats.jobs_submitted);
            prop_assert!(stats.wal_syncs >= 1, "durable run must have synced");
            per_tenant
        };
        // the crash lands on the hot tenant's home shard
        let wal = dir.join(format!("shard-{hot_home}")).join("jobs.wal");
        if let Ok(bytes) = std::fs::read(&wal) {
            let cut = (bytes.len() as f64 * cut_frac) as usize;
            std::fs::write(&wal, &bytes[..cut.min(bytes.len())]).unwrap();
        }
        let cfg = DurabilityConfig {
            dir: dir.clone(),
            group_commit,
            snapshot_every,
        };
        check_recovery(&cfg, &s, &triggers, &engine_cfg, shards, &per_tenant)?;
        let _ = std::fs::remove_dir_all(&dir);
    }
}
