//! The Event Base: append-only occurrence log plus the §5 indexes.
//!
//! * the **log** itself, ordered by (strictly increasing) timestamp;
//! * the **Occurred Events tree** of §5: for every event type, a column of
//!   its occurrences — parallel `(position, stamp, oid)` vectors whose last
//!   element is the most recent stamp — this answers `ts(primitive, t)`
//!   with one hash lookup + binary search, without touching the log;
//! * a **per-(type, object) index** supporting `ots(primitive, t, oid)`
//!   (the paper keeps an equivalent sparse per-rule structure; indexing the
//!   EB once is strictly more general and lets every rule share it);
//! * a **per-object index** used to enumerate the objects affected inside
//!   a window (the `oid ∈ R` quantification of §4.3);
//! * an **epoch-versioned object-domain cache**: the §4.3 quantification
//!   domains (`objects_in` / `objects_of_types_in`) are kept as sorted
//!   snapshots that are *extended* when the window's upper bound or the
//!   log grows, instead of being rebuilt (collect → sort → dedup) on
//!   every evaluation. Queries return shared `Arc<[Oid]>` slices, so the
//!   hot instance-oriented boundary path is allocation-free after the
//!   first evaluation of a window.
//!
//! The cache sits behind a `Mutex` so all read paths keep taking `&self`;
//! the lock is uncontended in the single-engine case and held only for
//! the duration of a lookup/extension.

use crate::event::{EventId, EventOccurrence, EventType};
use crate::time::{LogicalClock, Timestamp};
use crate::window::Window;
use chimera_model::Oid;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One Occurred-Events leaf: parallel columns of the occurrences of a
/// single event type, in timestamp (= append) order.
#[derive(Debug, Default, Clone)]
struct TypeCol {
    /// Positions into the log.
    pos: Vec<u32>,
    /// Stamps, mirroring `pos` (binary-searchable without log derefs).
    ts: Vec<Timestamp>,
    /// Affected objects, mirroring `pos`.
    oid: Vec<Oid>,
}

impl TypeCol {
    fn push(&mut self, pos: u32, ts: Timestamp, oid: Oid) {
        self.pos.push(pos);
        self.ts.push(ts);
        self.oid.push(oid);
    }

    /// Index range of the occurrences falling inside `w`.
    fn range_in(&self, w: Window) -> std::ops::Range<usize> {
        if w.is_degenerate() {
            return 0..0;
        }
        let lo = self.ts.partition_point(|&t| t <= w.after);
        let hi = self.ts.partition_point(|&t| t <= w.upto);
        lo..hi
    }
}

/// One cached quantification domain: the distinct objects affected inside
/// `(after, upto]` by the given types (empty type list = any type), kept
/// sorted and extended in place as `upto` advances with the clock.
#[derive(Debug)]
struct DomainEntry {
    /// Restricting event types; empty means "all types" (`objects_in`).
    types: Box<[EventType]>,
    after: Timestamp,
    /// Upper bound the entry has been scanned up to.
    upto: Timestamp,
    /// Sorted distinct OIDs.
    set: Vec<Oid>,
    /// Shared snapshot handed to callers (rebuilt only when `set` grows).
    snapshot: Arc<[Oid]>,
}

/// The epoch-versioned domain cache. Epochs are implicit: the log is
/// append-only with strictly increasing stamps, so an entry scanned up to
/// stamp `upto` is extended by scanning exactly the occurrences in
/// `(upto, w.upto]` — no generation counters needed for correctness; the
/// [`EventBase::epoch`] counter exists for *callers* that memoize values
/// derived from the EB.
#[derive(Debug, Default)]
struct DomainCache {
    entries: Vec<DomainEntry>,
}

/// Bound on live cached domains (distinct `(types, after)` pairs); each
/// rule/window contributes one, so this is generous. Oldest-first eviction.
const DOMAIN_CACHE_CAP: usize = 32;

static EB_UID: AtomicU64 = AtomicU64::new(1);

/// The event base (EB).
#[derive(Debug)]
pub struct EventBase {
    log: Vec<EventOccurrence>,
    clock: LogicalClock,
    /// Process-unique identity, so external memoizers can key on
    /// `(uid, epoch)` without being fooled by address reuse.
    uid: u64,
    /// Occurred-Events tree leaves: per-type occurrence columns.
    type_index: HashMap<EventType, TypeCol>,
    /// Instance-oriented leaves: per-(type, object) positions into `log`.
    type_obj_index: HashMap<(EventType, Oid), Vec<u32>>,
    /// Per-object positions into `log`.
    obj_index: HashMap<Oid, Vec<u32>>,
    /// §4.3 quantification-domain cache.
    domains: Mutex<DomainCache>,
}

impl Default for EventBase {
    fn default() -> Self {
        EventBase {
            log: Vec::new(),
            clock: LogicalClock::default(),
            uid: EB_UID.fetch_add(1, Ordering::Relaxed),
            type_index: HashMap::new(),
            type_obj_index: HashMap::new(),
            obj_index: HashMap::new(),
            domains: Mutex::new(DomainCache::default()),
        }
    }
}

impl EventBase {
    /// Empty event base with a fresh clock.
    pub fn new() -> Self {
        EventBase::default()
    }

    /// Number of occurrences in the log.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Process-unique identity of this event base (stable for its
    /// lifetime, never reused within the process).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Version counter for memoization: changes exactly when the set of
    /// recorded occurrences changes (clock ticks do not affect any value
    /// derived from the EB at a fixed instant). Key external caches on
    /// `(uid, epoch)`.
    pub fn epoch(&self) -> u64 {
        self.log.len() as u64
    }

    /// Current logical time (stamp of the most recent occurrence).
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Advance the clock without recording an occurrence (models the
    /// passage of time between blocks; negation can become active by pure
    /// absence, which is observed at such instants).
    pub fn tick(&mut self) -> Timestamp {
        self.clock.tick()
    }

    /// Record an occurrence at the next clock instant.
    pub fn append(&mut self, ty: EventType, oid: Oid) -> EventOccurrence {
        let ts = self.clock.tick();
        self.push(ty, oid, ts)
    }

    /// Record an occurrence at an explicit instant (scripted histories).
    ///
    /// Panics if `ts` is not strictly after the current clock value —
    /// the EB's semantics require strictly increasing stamps.
    pub fn append_at(&mut self, ty: EventType, oid: Oid, ts: Timestamp) -> EventOccurrence {
        assert!(
            ts > self.clock.now(),
            "event stamps must be strictly increasing: {} !> {}",
            ts,
            self.clock.now()
        );
        self.clock.advance_to(ts);
        self.push(ty, oid, ts)
    }

    fn push(&mut self, ty: EventType, oid: Oid, ts: Timestamp) -> EventOccurrence {
        let pos = self.log.len() as u32;
        let occ = EventOccurrence {
            eid: EventId(pos as u64 + 1),
            ty,
            oid,
            ts,
        };
        self.log.push(occ);
        self.type_index.entry(ty).or_default().push(pos, ts, oid);
        self.type_obj_index.entry((ty, oid)).or_default().push(pos);
        self.obj_index.entry(oid).or_default().push(pos);
        occ
    }

    /// Fetch by EID.
    pub fn get(&self, eid: EventId) -> Option<&EventOccurrence> {
        if eid.0 == 0 {
            return None;
        }
        self.log.get(eid.0 as usize - 1)
    }

    /// The occurrences recorded since `epoch` (a value previously returned
    /// by [`EventBase::epoch`]), in timestamp order — the arrival delta an
    /// incrementally maintained consumer must absorb to catch up with the
    /// current epoch. Epochs at or beyond the current one yield an empty
    /// slice.
    pub fn occurrences_since(&self, epoch: u64) -> &[EventOccurrence] {
        let lo = (epoch as usize).min(self.log.len());
        &self.log[lo..]
    }

    /// Per-type delta view over the Occurred-Events columns: the
    /// `(stamp, oid)` pairs of `ty` occurrences recorded since `epoch`, in
    /// timestamp order, without touching the log. Columns store log
    /// positions in append order, so locating the split is one partition
    /// search over the type's own occurrences.
    pub fn type_occurrences_since(&self, ty: EventType, epoch: u64) -> TypeDelta<'_> {
        match self.type_index.get(&ty) {
            Some(col) => {
                let lo = col.pos.partition_point(|&p| (p as u64) < epoch);
                TypeDelta {
                    ts: &col.ts[lo..],
                    oids: &col.oid[lo..],
                }
            }
            None => TypeDelta::default(),
        }
    }

    /// Iterate the whole log in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &EventOccurrence> {
        self.log.iter()
    }

    /// The log slice falling inside `w`, in timestamp order. Degenerate
    /// windows (`upto <= after`) yield an empty slice.
    pub fn slice(&self, w: Window) -> &[EventOccurrence] {
        if w.is_degenerate() {
            return &[];
        }
        let lo = self.log.partition_point(|e| e.ts <= w.after);
        let hi = self.log.partition_point(|e| e.ts <= w.upto);
        &self.log[lo..hi]
    }

    /// Is the window non-empty (`R ≠ ∅` of the triggering predicate §4.4)?
    pub fn any_in(&self, w: Window) -> bool {
        !self.slice(w).is_empty()
    }

    /// Number of occurrences inside `w`.
    pub fn count_in(&self, w: Window) -> usize {
        self.slice(w).len()
    }

    /// Positions (into the log) of occurrences in an auxiliary position
    /// index, restricted to `w`.
    fn positions_in<'a>(&'a self, index: Option<&'a Vec<u32>>, w: Window) -> &'a [u32] {
        let Some(v) = index else { return &[] };
        if w.is_degenerate() {
            return &[];
        }
        let lo = v.partition_point(|&p| self.log[p as usize].ts <= w.after);
        let hi = v.partition_point(|&p| self.log[p as usize].ts <= w.upto);
        &v[lo..hi]
    }

    /// Stamp of the most recent occurrence of `ty` inside `w`
    /// (the §4.2 `t_E` lookup). `None` means no occurrence in `w`.
    pub fn last_of_type_in(&self, ty: EventType, w: Window) -> Option<Timestamp> {
        let col = self.type_index.get(&ty)?;
        let r = col.range_in(w);
        if r.is_empty() {
            None
        } else {
            Some(col.ts[r.end - 1])
        }
    }

    /// Stamp of the *first* occurrence of `ty` inside `w`.
    pub fn first_of_type_in(&self, ty: EventType, w: Window) -> Option<Timestamp> {
        let col = self.type_index.get(&ty)?;
        let r = col.range_in(w);
        if r.is_empty() {
            None
        } else {
            Some(col.ts[r.start])
        }
    }

    /// All occurrences of `ty` inside `w`, in timestamp order.
    pub fn occurrences_of_type_in(
        &self,
        ty: EventType,
        w: Window,
    ) -> impl Iterator<Item = &EventOccurrence> {
        let (col, r) = match self.type_index.get(&ty) {
            Some(col) => {
                let r = col.range_in(w);
                (Some(col), r)
            }
            None => (None, 0..0),
        };
        col.into_iter()
            .flat_map(move |c| c.pos[r.clone()].iter().map(|&p| &self.log[p as usize]))
    }

    /// Stamp of the most recent occurrence of `ty` on `oid` inside `w`
    /// (the §4.3 per-object `t_E` lookup).
    pub fn last_of_type_obj_in(&self, ty: EventType, oid: Oid, w: Window) -> Option<Timestamp> {
        self.positions_in(self.type_obj_index.get(&(ty, oid)), w)
            .last()
            .map(|&p| self.log[p as usize].ts)
    }

    /// Batched §4.3 leaf lookup: resolve the most recent `ty` stamp inside
    /// `w` for *every* object of a sorted domain in a single reverse sweep
    /// over the type's occurrence column, instead of one hash probe +
    /// binary search per `(type, oid)` pair. `out[i]` receives the stamp
    /// for `oids[i]` (callers pass a `None`-filled scratch slice).
    ///
    /// Cost: `O(K log D)` for `K` in-window occurrences of the type and a
    /// domain of `D` objects, with an early exit once every object is
    /// resolved.
    pub fn last_of_type_objs_in(
        &self,
        ty: EventType,
        oids: &[Oid],
        w: Window,
        out: &mut [Option<Timestamp>],
    ) {
        debug_assert_eq!(oids.len(), out.len());
        debug_assert!(oids.windows(2).all(|p| p[0] < p[1]), "domain must be sorted");
        let Some(col) = self.type_index.get(&ty) else {
            return;
        };
        let r = col.range_in(w);
        let mut unresolved = oids.len();
        for i in r.rev() {
            let Ok(j) = oids.binary_search(&col.oid[i]) else {
                continue;
            };
            if out[j].is_none() {
                out[j] = Some(col.ts[i]);
                unresolved -= 1;
                if unresolved == 0 {
                    break;
                }
            }
        }
    }

    /// All occurrences of `ty` on `oid` inside `w`, in timestamp order.
    pub fn occurrences_of_type_obj_in(
        &self,
        ty: EventType,
        oid: Oid,
        w: Window,
    ) -> impl Iterator<Item = &EventOccurrence> {
        self.positions_in(self.type_obj_index.get(&(ty, oid)), w)
            .iter()
            .map(|&p| &self.log[p as usize])
    }

    /// Distinct objects affected by any occurrence inside `w`, sorted.
    ///
    /// Served from the epoch-versioned domain cache: the first query for a
    /// window scans and sorts; later queries with the same lower bound
    /// only scan occurrences newer than the previous upper bound and
    /// otherwise return the shared snapshot unchanged.
    pub fn objects_in(&self, w: Window) -> Arc<[Oid]> {
        self.domain_query(&[], w)
    }

    /// Distinct objects affected inside `w` by occurrences of any of the
    /// given types, sorted. This is the `oid ∈ R` domain restricted to the
    /// primitives of one expression — the useful quantification domain for
    /// instance-oriented evaluation. Cached like [`EventBase::objects_in`].
    pub fn objects_of_types_in(&self, types: &[EventType], w: Window) -> Arc<[Oid]> {
        debug_assert!(!types.is_empty(), "empty type list denotes `objects_in`");
        self.domain_query(types, w)
    }

    /// Collect the distinct sorted OIDs for `(types, w)` from scratch.
    fn domain_scan(&self, types: &[EventType], w: Window) -> Vec<Oid> {
        let mut oids: Vec<Oid> = if types.is_empty() {
            self.slice(w).iter().map(|e| e.oid).collect()
        } else {
            let mut v = Vec::new();
            for ty in types {
                if let Some(col) = self.type_index.get(ty) {
                    v.extend_from_slice(&col.oid[col.range_in(w)]);
                }
            }
            v
        };
        oids.sort_unstable();
        oids.dedup();
        oids
    }

    fn domain_query(&self, types: &[EventType], w: Window) -> Arc<[Oid]> {
        if w.is_degenerate() {
            return Arc::from(Vec::new());
        }
        // An entry only ever covers stamps that exist: recording a bound
        // beyond the clock would make occurrences appended later (with
        // stamps still inside `w`) permanently invisible to the snapshot.
        let covered = w.upto.min(self.now());
        let mut cache = self.domains.lock().expect("domain cache poisoned");
        if let Some(entry) = cache
            .entries
            .iter_mut()
            .find(|e| e.after == w.after && *e.types == *types)
        {
            if covered >= entry.upto {
                // extend by the occurrences in (entry.upto, covered] only
                let fresh = Window::new(entry.upto, covered);
                let mut grew = false;
                if !fresh.is_degenerate() {
                    let mut incoming: Vec<Oid> = if types.is_empty() {
                        self.slice(fresh).iter().map(|e| e.oid).collect()
                    } else {
                        let mut v = Vec::new();
                        for ty in types {
                            if let Some(col) = self.type_index.get(ty) {
                                v.extend_from_slice(&col.oid[col.range_in(fresh)]);
                            }
                        }
                        v
                    };
                    grew = merge_into_sorted(&mut entry.set, &mut incoming);
                }
                entry.upto = covered;
                if grew {
                    entry.snapshot = Arc::from(entry.set.as_slice());
                }
                return entry.snapshot.clone();
            }
            // shrunken upper bound (e.g. a precedence operand evaluated at
            // an earlier instant): serve uncached, keep the wider entry.
            return Arc::from(self.domain_scan(types, w));
        }
        let set = self.domain_scan(types, w);
        let snapshot: Arc<[Oid]> = Arc::from(set.as_slice());
        if cache.entries.len() >= DOMAIN_CACHE_CAP {
            cache.entries.remove(0);
        }
        cache.entries.push(DomainEntry {
            types: types.into(),
            after: w.after,
            upto: covered,
            set,
            snapshot: snapshot.clone(),
        });
        snapshot
    }

    /// All occurrences affecting `oid` inside `w`, in timestamp order.
    pub fn occurrences_of_obj_in(
        &self,
        oid: Oid,
        w: Window,
    ) -> impl Iterator<Item = &EventOccurrence> {
        self.positions_in(self.obj_index.get(&oid), w)
            .iter()
            .map(|&p| &self.log[p as usize])
    }

    /// Most recent stamp per type leaf (§5: "each leaf keeps the time stamp
    /// of the more recent occurrence of the associated event type").
    pub fn leaf_last_stamp(&self, ty: EventType) -> Option<Timestamp> {
        self.type_index.get(&ty).and_then(|c| c.ts.last().copied())
    }
}

/// A per-type arrival delta: parallel stamp/object columns of one event
/// type's occurrences since a given epoch
/// (see [`EventBase::type_occurrences_since`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct TypeDelta<'a> {
    /// Stamps, in timestamp (= append) order.
    pub ts: &'a [Timestamp],
    /// Affected objects, parallel to `ts`.
    pub oids: &'a [Oid],
}

impl TypeDelta<'_> {
    /// Number of delta occurrences.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Is the delta empty?
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// The `(stamp, oid)` pairs, in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, Oid)> + '_ {
        self.ts.iter().copied().zip(self.oids.iter().copied())
    }
}

/// Merge a batch of (unsorted, possibly duplicated) OIDs into a sorted
/// vec in one pass, returning whether anything new was added. Replaces a
/// per-element binary-search-insert loop that degenerated to O(n²) when a
/// window extension introduced many objects at once.
fn merge_into_sorted(set: &mut Vec<Oid>, incoming: &mut Vec<Oid>) -> bool {
    incoming.sort_unstable();
    incoming.dedup();
    incoming.retain(|o| set.binary_search(o).is_err());
    if incoming.is_empty() {
        return false;
    }
    let mut merged = Vec::with_capacity(set.len() + incoming.len());
    let (mut i, mut j) = (0, 0);
    while i < set.len() && j < incoming.len() {
        if set[i] < incoming[j] {
            merged.push(set[i]);
            i += 1;
        } else {
            merged.push(incoming[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&set[i..]);
    merged.extend_from_slice(&incoming[j..]);
    *set = merged;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::ClassId;

    fn ty(c: u32) -> EventType {
        EventType::create(ClassId(c))
    }

    #[test]
    fn append_allocates_increasing_stamps_and_eids() {
        let mut eb = EventBase::new();
        let a = eb.append(ty(0), Oid(1));
        let b = eb.append(ty(0), Oid(2));
        assert_eq!(a.eid, EventId(1));
        assert_eq!(b.eid, EventId(2));
        assert!(a.ts < b.ts);
        assert_eq!(eb.now(), b.ts);
        assert_eq!(eb.get(a.eid), Some(&a));
        assert_eq!(eb.get(EventId(0)), None);
        assert_eq!(eb.get(EventId(99)), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn append_at_rejects_non_increasing() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(1), Timestamp(5));
        eb.append_at(ty(0), Oid(1), Timestamp(5));
    }

    #[test]
    fn window_slicing() {
        let mut eb = EventBase::new();
        for i in 1..=10u64 {
            eb.append_at(ty(0), Oid(i), Timestamp(i));
        }
        let w = Window::new(Timestamp(3), Timestamp(7));
        let s = eb.slice(w);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].ts, Timestamp(4));
        assert_eq!(s[3].ts, Timestamp(7));
        assert!(eb.any_in(w));
        assert_eq!(eb.count_in(w), 4);
        assert!(!eb.any_in(Window::new(Timestamp(10), Timestamp(20))));
    }

    #[test]
    fn type_index_last_and_first() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(1), Timestamp(1));
        eb.append_at(ty(1), Oid(1), Timestamp(2));
        eb.append_at(ty(0), Oid(2), Timestamp(3));
        let all = Window::from_origin(Timestamp(10));
        assert_eq!(eb.last_of_type_in(ty(0), all), Some(Timestamp(3)));
        assert_eq!(eb.first_of_type_in(ty(0), all), Some(Timestamp(1)));
        assert_eq!(eb.last_of_type_in(ty(1), all), Some(Timestamp(2)));
        assert_eq!(eb.last_of_type_in(ty(9), all), None);
        // clipped window hides the later occurrence
        let clipped = Window::from_origin(Timestamp(2));
        assert_eq!(eb.last_of_type_in(ty(0), clipped), Some(Timestamp(1)));
        // consumed window hides the earlier occurrence
        let consumed = Window::new(Timestamp(1), Timestamp(10));
        assert_eq!(eb.first_of_type_in(ty(0), consumed), Some(Timestamp(3)));
    }

    #[test]
    fn type_obj_index() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(1), Timestamp(1));
        eb.append_at(ty(0), Oid(2), Timestamp(2));
        eb.append_at(ty(0), Oid(1), Timestamp(3));
        let all = Window::from_origin(Timestamp(10));
        assert_eq!(
            eb.last_of_type_obj_in(ty(0), Oid(1), all),
            Some(Timestamp(3))
        );
        assert_eq!(
            eb.last_of_type_obj_in(ty(0), Oid(2), all),
            Some(Timestamp(2))
        );
        assert_eq!(eb.last_of_type_obj_in(ty(0), Oid(3), all), None);
        assert_eq!(eb.occurrences_of_type_obj_in(ty(0), Oid(1), all).count(), 2);
    }

    #[test]
    fn batched_lookup_matches_single_probes() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(3), Timestamp(1));
        eb.append_at(ty(0), Oid(1), Timestamp(2));
        eb.append_at(ty(1), Oid(2), Timestamp(3));
        eb.append_at(ty(0), Oid(3), Timestamp(4));
        eb.append_at(ty(0), Oid(2), Timestamp(5));
        for w in [
            Window::from_origin(Timestamp(5)),
            Window::new(Timestamp(2), Timestamp(4)),
            Window::new(Timestamp(5), Timestamp(5)),
        ] {
            let dom = [Oid(1), Oid(2), Oid(3), Oid(9)];
            let mut out = vec![None; dom.len()];
            eb.last_of_type_objs_in(ty(0), &dom, w, &mut out);
            for (i, &oid) in dom.iter().enumerate() {
                assert_eq!(
                    out[i],
                    eb.last_of_type_obj_in(ty(0), oid, w),
                    "oid {oid} in {w:?}"
                );
            }
        }
        // absent type leaves the scratch untouched
        let mut out = vec![None; 2];
        eb.last_of_type_objs_in(ty(9), &[Oid(1), Oid(2)], Window::from_origin(Timestamp(5)), &mut out);
        assert_eq!(out, vec![None, None]);
    }

    #[test]
    fn object_enumeration() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(3), Timestamp(1));
        eb.append_at(ty(1), Oid(1), Timestamp(2));
        eb.append_at(ty(0), Oid(3), Timestamp(3));
        let all = Window::from_origin(Timestamp(10));
        assert_eq!(eb.objects_in(all).to_vec(), vec![Oid(1), Oid(3)]);
        assert_eq!(eb.objects_of_types_in(&[ty(0)], all).to_vec(), vec![Oid(3)]);
        assert_eq!(
            eb.objects_of_types_in(&[ty(0), ty(1)], all).to_vec(),
            vec![Oid(1), Oid(3)]
        );
        let later = Window::new(Timestamp(2), Timestamp(10));
        assert_eq!(eb.objects_in(later).to_vec(), vec![Oid(3)]);
    }

    #[test]
    fn domain_cache_extends_instead_of_rebuilding() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(2), Timestamp(1));
        let w1 = Window::from_origin(Timestamp(1));
        let first = eb.objects_in(w1);
        assert_eq!(first.to_vec(), vec![Oid(2)]);
        // same window again: the very same snapshot allocation is reused
        let again = eb.objects_in(w1);
        assert!(Arc::ptr_eq(&first, &again));
        // new arrivals + advanced upper bound: extended, not rebuilt
        eb.append_at(ty(1), Oid(1), Timestamp(2));
        eb.append_at(ty(0), Oid(2), Timestamp(3));
        let w2 = Window::from_origin(Timestamp(3));
        assert_eq!(eb.objects_in(w2).to_vec(), vec![Oid(1), Oid(2)]);
        // an advanced bound with no new arrivals keeps the snapshot shared
        let w3 = Window::from_origin(Timestamp(9));
        let a = eb.objects_in(w3);
        let b = eb.objects_in(w3);
        assert!(Arc::ptr_eq(&a, &b));
        // shrunken upper bound still answers correctly (uncached path)
        assert_eq!(eb.objects_in(w1).to_vec(), vec![Oid(2)]);
        // per-type domains are cached independently
        let t_dom = eb.objects_of_types_in(&[ty(1)], w3);
        assert_eq!(t_dom.to_vec(), vec![Oid(1)]);
        assert!(Arc::ptr_eq(
            &t_dom,
            &eb.objects_of_types_in(&[ty(1)], w3)
        ));
    }

    #[test]
    fn domain_cache_sees_appends_after_future_bound_query() {
        // regression: querying a window whose upper bound is beyond the
        // clock must not freeze the cached snapshot at that bound.
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(1), Timestamp(1));
        let w = Window::from_origin(Timestamp(9)); // upto > now
        assert_eq!(eb.objects_in(w).to_vec(), vec![Oid(1)]);
        eb.append_at(ty(0), Oid(2), Timestamp(2));
        assert_eq!(eb.objects_in(w).to_vec(), vec![Oid(1), Oid(2)]);
        // per-type variant too
        let wt = Window::from_origin(Timestamp(9));
        assert_eq!(eb.objects_of_types_in(&[ty(0)], wt).to_vec(), vec![Oid(1), Oid(2)]);
        eb.append_at(ty(0), Oid(3), Timestamp(5));
        assert_eq!(
            eb.objects_of_types_in(&[ty(0)], wt).to_vec(),
            vec![Oid(1), Oid(2), Oid(3)]
        );
    }

    #[test]
    fn epoch_deltas_expose_exactly_the_new_arrivals() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(1), Timestamp(1));
        eb.append_at(ty(1), Oid(2), Timestamp(2));
        let epoch = eb.epoch();
        assert!(eb.occurrences_since(epoch).is_empty());
        eb.append_at(ty(0), Oid(3), Timestamp(3));
        eb.append_at(ty(1), Oid(1), Timestamp(4));
        eb.append_at(ty(0), Oid(1), Timestamp(5));
        let delta = eb.occurrences_since(epoch);
        assert_eq!(delta.len(), 3);
        assert_eq!(delta[0].ts, Timestamp(3));
        assert_eq!(delta[2].ts, Timestamp(5));
        // per-type view over the columnar index
        let d0 = eb.type_occurrences_since(ty(0), epoch);
        assert_eq!(d0.len(), 2);
        assert!(!d0.is_empty());
        assert_eq!(
            d0.iter().collect::<Vec<_>>(),
            vec![(Timestamp(3), Oid(3)), (Timestamp(5), Oid(1))]
        );
        let d1 = eb.type_occurrences_since(ty(1), epoch);
        assert_eq!(d1.iter().collect::<Vec<_>>(), vec![(Timestamp(4), Oid(1))]);
        // absent type and future epoch both yield empty views
        assert!(eb.type_occurrences_since(ty(9), epoch).is_empty());
        assert!(eb.type_occurrences_since(ty(0), eb.epoch() + 10).is_empty());
        assert!(eb.occurrences_since(eb.epoch() + 10).is_empty());
        // the full delta from epoch 0 is the whole log
        assert_eq!(eb.occurrences_since(0).len(), eb.len());
    }

    #[test]
    fn bulk_domain_extension_merges_in_one_pass() {
        // a window extension that introduces many objects at once must
        // land them all (this used to go through per-element inserts)
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(500), Timestamp(1));
        let w1 = Window::from_origin(Timestamp(1));
        assert_eq!(eb.objects_in(w1).to_vec(), vec![Oid(500)]);
        // descending + duplicated arrivals stress the merge
        let mut t = 1;
        for oid in (1..=400u64).rev() {
            t += 1;
            eb.append_at(ty(0), Oid(oid), Timestamp(t));
            t += 1;
            eb.append_at(ty(1), Oid(oid), Timestamp(t));
        }
        let w2 = Window::from_origin(Timestamp(t));
        let dom = eb.objects_in(w2);
        assert_eq!(dom.len(), 401);
        assert!(dom.windows(2).all(|p| p[0] < p[1]), "sorted + distinct");
        assert_eq!(dom.first(), Some(&Oid(1)));
        assert_eq!(dom.last(), Some(&Oid(500)));
    }

    #[test]
    fn uid_and_epoch_track_identity_and_appends() {
        let mut a = EventBase::new();
        let b = EventBase::new();
        assert_ne!(a.uid(), b.uid());
        assert_eq!(a.epoch(), 0);
        a.append(ty(0), Oid(1));
        assert_eq!(a.epoch(), 1);
        a.tick(); // ticks do not change derived values ⇒ not an epoch bump
        assert_eq!(a.epoch(), 1);
    }

    #[test]
    fn per_object_iteration() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(1), Timestamp(1));
        eb.append_at(ty(1), Oid(1), Timestamp(2));
        eb.append_at(ty(0), Oid(2), Timestamp(3));
        let all = Window::from_origin(Timestamp(10));
        let objs: Vec<_> = eb.occurrences_of_obj_in(Oid(1), all).collect();
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[0].ts, Timestamp(1));
        assert_eq!(objs[1].ts, Timestamp(2));
    }

    #[test]
    fn leaf_last_stamp_tracks_most_recent() {
        let mut eb = EventBase::new();
        assert_eq!(eb.leaf_last_stamp(ty(0)), None);
        eb.append_at(ty(0), Oid(1), Timestamp(4));
        eb.append_at(ty(0), Oid(2), Timestamp(9));
        assert_eq!(eb.leaf_last_stamp(ty(0)), Some(Timestamp(9)));
    }

    #[test]
    fn tick_advances_time_without_events() {
        let mut eb = EventBase::new();
        eb.append(ty(0), Oid(1));
        let before = eb.len();
        let t = eb.tick();
        assert_eq!(eb.len(), before);
        assert_eq!(eb.now(), t);
    }
}
