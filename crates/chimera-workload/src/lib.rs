//! # chimera-workload
//!
//! Deterministic, seeded workload generators for tests, property suites
//! and the benchmark harness:
//!
//! * [`stream`] — synthetic event streams over configurable event-type and
//!   object populations (uniform or skewed type mix);
//! * [`exprgen`] — random *well-formed* event expressions with tunable
//!   size, instance-operator probability and negation probability (the
//!   input distribution for the algebraic-law and evaluator-agreement
//!   property tests);
//! * [`stock`] — the paper's running example domain (`stock`, `show`,
//!   `stockOrder` classes plus the §2/§3 triggers) and an operation
//!   generator that drives a full [`chimera_exec::Engine`];
//! * [`trace`] — recordable/replayable operation traces;
//! * [`zipf`] — Zipf-skewed tenant populations (1 hot + N cold) for the
//!   multi-tenant scheduling soaks and `benches/skew.rs`.

pub mod exprgen;
pub mod stock;
pub mod stream;
pub mod trace;
pub mod zipf;

pub use exprgen::{ExprGenConfig, RandomExprGen};
pub use stock::{stock_schema, stock_triggers, StockWorkload, StockWorkloadConfig};
pub use stream::{StreamConfig, StreamGen};
pub use trace::{Trace, TraceOp};
pub use zipf::{ZipfTenants, ZipfTenantsConfig};
