//! # chimera — Composite Events in Chimera (EDBT 1996), reproduced in Rust
//!
//! A full reproduction of *Composite Events in Chimera* by R. Meo,
//! G. Psaila and S. Ceri: the Chimera active object-oriented database
//! substrate plus the paper's composite-event calculus — set- and
//! instance-oriented conjunction/disjunction/negation/precedence with the
//! signed-timestamp `ts`/`ots` semantics, the §4.4 triggering predicate,
//! the §3.3 `occurred`/`at` event formulas and the §5.1 static
//! optimization (`V(E)` variation sets).
//!
//! ## Quickstart
//!
//! ```
//! use chimera::interp::Interpreter;
//!
//! let mut chim = Interpreter::from_source(r#"
//! define class stock
//!   attributes quantity: integer,
//!              max_quantity: integer default 100
//! end
//!
//! define immediate trigger checkStockQty for stock
//!   events create , modify(quantity)
//!   condition stock(S), occurred(create ,= modify(quantity), S),
//!             S.quantity > S.max_quantity
//!   actions modify(S.quantity, S.max_quantity)
//! end
//!
//! begin;
//! let s1 = create stock(quantity: 250);
//! commit;
//! "#).unwrap();
//! chim.run_all().unwrap();
//! let s1 = chim.var("s1").unwrap();
//! // the trigger clamped the over-limit quantity
//! assert_eq!(
//!     chim.engine().read_attr(s1, "quantity").unwrap(),
//!     chimera::model::Value::Int(100)
//! );
//! ```
//!
//! ## Crate map
//!
//! | module | re-export of | contents |
//! |--------|--------------|----------|
//! | [`model`] | `chimera-model` | OO schema, objects, transactional store |
//! | [`events`] | `chimera-events` | logical clock, event types, the Event Base |
//! | [`calculus`] | `chimera-calculus` | the event calculus (the paper's contribution) |
//! | [`rules`] | `chimera-rules` | triggers, rule table, triggering semantics |
//! | [`lang`] | `chimera-lang` | lexer/parser/pretty-printer |
//! | [`exec`] | `chimera-exec` | the execution engine |
//! | [`runtime`] | `chimera-runtime` | sharded multi-tenant parallel runtime |
//! | [`net`] | `chimera-net` | framed wire protocol + TCP server/client |
//! | [`baselines`] | `chimera-baselines` | Ode/Snoop/naive comparators |
//! | [`workload`] | `chimera-workload` | generators and traces |
//! | [`analysis`] | `chimera-analysis` | triggering graph, termination, confluence |
//! | [`temporal`] | `chimera-temporal` | clock events, related-work derived operators |
//! | [`persist`] | `chimera-persist` | pluggable `StateStore`: group-commit job log, WAL, snapshots, crash recovery |
//! | [`chaos`] | `chimera-chaos` | deterministic fault injection: seeded storage faults, mid-frame TCP cuts |
//! | [`telemetry`] | `chimera-telemetry` | lock-cheap recorder: stage latency histograms, counters/gauges, postmortem trace ring |
//! | [`lifecycle`] | `chimera-lifecycle` | tenant residency policy: LRU budget config + the intrusive recency list |
//! | [`interp`] | (this crate) | script interpreter over the engine |
//!
//! ## Evaluation tiers
//!
//! The §4.3 instance→set boundary — the hot path of rule triggering —
//! has three coordinated implementations (see [`calculus`]'s `plan`
//! module for the full story):
//!
//! 1. **interpreted reference** (`ts_logical_interpreted` and the
//!    recursive `boundary_ts_*` evaluators): re-walks the AST per call;
//!    the property-tested ground truth, used only by tests and benches;
//! 2. **planned cold**: compiled op arenas over an object-domain snapshot
//!    and a batched per-type stamp matrix, rebuilt per window — paid when
//!    a rule's observation window's *lower* bound moves (consumption) or
//!    a scratchpad meets a new event base;
//! 3. **planned incremental**: the default on the engine's hot path —
//!    when new occurrences merely extend the window, the matrix is
//!    *advanced* by exactly the epoch's arrival delta (per-type delta
//!    columns, in-place stamp updates, `V(E)`-selective memo
//!    invalidation), making the post-arrival probe O(arrivals) instead
//!    of O(window).
//!
//! All three agree bit for bit; `tests/plan_equivalence.rs` enforces it.
//!
//! ## Serving many sessions: the parallel runtime
//!
//! A single [`exec::Engine`] is deliberately a single-threaded reactive
//! machine (the paper's §5 architecture assumes one transaction's Event
//! Base per detector). [`runtime`] scales it out without changing its
//! semantics:
//!
//! * **tenant homes** — every tenant owns a private engine behind an
//!   exclusive-claim handle, and hashes (SplitMix64) onto a *home shard*
//!   that owns its backpressure budget and, in durable mode, its
//!   persistence;
//! * **load-aware scheduling** — submissions stage in an admission pool
//!   that preserves per-tenant FIFO; N workers claim whole *ready
//!   tenants* (queued jobs, nobody executing) and, under the default
//!   `Scheduler::LoadAware`, steal ready tenants from any home instead
//!   of idling while one hot shard backs up — the PR-7 answer to
//!   Zipf-skewed tenant traffic, with `Scheduler::Pinned` keeping the
//!   strict hash-pinned placement as the baseline. Block-or-shed
//!   backpressure, flush barriers, panic isolation and per-job replies
//!   ride the same path; `RuntimeStats` reports `steals`,
//!   `ready_queue_depth` and a per-shard `ShardStats` breakdown
//!   (`benches/skew.rs` measures pinned vs load-aware on a colliding
//!   hot-tenant mix);
//! * **parallel check rounds** — inside a claim, the per-block trigger
//!   check round itself can split the rule table's probe work across a
//!   scoped worker pool over one shared EB epoch delta
//!   (`EngineConfig::check_workers`); the sequential round is the same
//!   code path run as a single chunk.
//!
//! All layers are observationally identical to the sequential engine,
//! tenant by tenant; `tests/runtime_equivalence.rs` enforces it,
//! including steal-heavy configurations under both schedulers.
//!
//! [`net`] puts a network front door on that runtime: a length-prefixed
//! binary wire protocol (hand-rolled on `std::net`) whose `SubmitBlock`
//! requests are answered with **per-job completion notifications**
//! (success summary of events appended / rules considered / actions
//! run, or the typed engine error) through the runtime's
//! `submit_with_reply` path — no flush-and-poll — and whose
//! `DefineTriggers` requests carry concrete §2–§3 trigger syntax,
//! parsed server-side by [`lang`]. The same oracle closes the loop:
//! `tests/net_equivalence.rs` proves traffic from concurrent TCP
//! clients identical to a per-tenant sequential replay.
//!
//! ## Durable tenants: the storage layer
//!
//! Underneath each runtime shard sits a pluggable [`persist`] store
//! (`StateStore`): `InMemory` (the zero-cost default) or `Durable`,
//! which logs every job as a binary record in a per-shard job log and
//! makes a whole drained queue batch durable with **one** fsync — group
//! commit, the policy that closes most of the fsync gap (within ~3–4×
//! of in-memory at 256-event blocks on this host vs ~50–100× for
//! per-commit syncing; `benches/durability.rs`). Job replies are only
//! delivered after their group's sync, so an acknowledged job is always
//! durable. `Runtime::recover` rebuilds every tenant engine from the
//! latest shard snapshot plus job-log replay (engines are deterministic
//! given a job sequence), with periodic snapshot + log truncation to
//! bound log growth; [`net`]'s `Hello` negotiates the durability level
//! per listener and `Stats` reports the storage counters.
//! `tests/durable_recovery.rs` is the crash oracle: cut the log at an
//! arbitrary byte, recover, and every tenant must equal a sequential
//! replay of exactly the jobs whose group survived on disk.
//!
//! ## Degrading gracefully: the chaos layer
//!
//! Storage and networks fail in ways a crash oracle alone cannot
//! exercise, so [`chaos`] injects them **deterministically**: a seeded
//! `FaultPlan` schedules transient, permanent and torn/ambiguous store
//! faults behind the runtime's `StoreWrap` seam, and a `ChaosProxy`
//! cuts TCP connections mid-frame at seeded byte positions. The
//! runtime's policy under fire is *retry, then degrade, never hang*:
//! a transient store error gets a bounded in-place retry (counted in
//! `RuntimeStats::store_retries`); exhaustion or a permanent error
//! **poisons** that home shard only, whose tenants keep being answered
//! with the typed `JobOutcome::RefusedDurability` while every other
//! shard proceeds untouched, until `Runtime::reopen_shard_store`
//! swaps in a fresh store and re-snapshots the live tenants. On the
//! wire, [`net`]'s version-4 server enforces handshake/read/write
//! deadlines (reaped connections counted in `net_conns_reaped`) and
//! its client heals a lost connection by resolving every in-flight
//! submission as a typed `Disconnected` completion — at-most-once,
//! explicit loss — then redialing with backoff and replaying the
//! session's trigger definitions. `tests/chaos_recovery.rs` is the
//! oracle: transient/torn fault schedules must be *invisible*
//! (end-state identical to a fault-free sequential replay), a
//! permanent fault must poison exactly one home and be repairable,
//! and every submission through a cut-happy proxy must resolve.
//!
//! ## Watching it run: the telemetry layer
//!
//! Everything above is observable from the outside. [`telemetry`] is a
//! hand-rolled, lock-cheap recorder the whole stack shares: per-worker
//! sharded atomic counters and gauges, **log₂-bucketed latency
//! histograms** (recording is one `Instant` read plus one relaxed
//! `fetch_add`; percentiles are computed merge-on-read), and a
//! fixed-capacity seqlock **trace ring** holding the last few hundred
//! notable events (jobs claimed, homes poisoned, stores reopened,
//! connections accepted/reaped/cut) for postmortems. The runtime times
//! every pipeline stage — queue wait, WAL append, execution, the group
//! commit fsync, reply delivery — and [`net`]'s version-5 server adds
//! frame decode, handler and per-connection round-trip histograms.
//! Recording is off by default (`RuntimeConfig::telemetry`; the off
//! mode is a `None` branch, ≤ 1% on the hot path) and the overhead
//! when *on* is bounded by `benches/telemetry.rs` at ≤ 5% on a
//! 256-arrival block workload.
//!
//! One wire request pulls the whole registry off a live server:
//!
//! ```no_run
//! use chimera::net::Client;
//!
//! let mut c = Client::connect("127.0.0.1:7878").unwrap();
//! let m = c.metrics_snapshot().unwrap();   // Request::MetricsSnapshot
//! if m.enabled {
//!     let h = m.hist("queue_wait").unwrap();
//!     println!("queue wait p99 = {}ns over {} jobs", h.p99(), h.count());
//!     println!("{}", m.render_text());     // Prometheus-style exposition
//! }
//! ```
//!
//! `examples/metrics_watch.rs` polls a live server this way;
//! `tests/loopback.rs` (in `chimera-net`) pins the acceptance claim
//! that a durable loopback run answers with non-zero queue-wait,
//! execute and commit histograms.
//!
//! ## Scaling past RAM: the tenant lifecycle layer
//!
//! A runtime sized for thousands of tenants cannot keep every engine
//! resident. [`lifecycle`] bounds the working set: give
//! `RuntimeConfig::lifecycle` a residency budget (tenant count, an
//! approximate bytes pressure, or both) and the runtime's workers evict
//! the **coldest idle tenants** past it — each engine is frozen into the
//! same `TenantSnapshot` the recovery path uses, written to the tenant's
//! home store as a `tenant-<id>.tsnap` (durable homes; in-memory homes
//! park it in RAM in serialized form), and the engine is dropped. The
//! next claimed job **rehydrates** transparently: the claim path rebuilds
//! the engine from the snapshot before the batch runs, so callers see
//! eviction only as latency (the `rehydrate` telemetry histogram, with
//! `tenants_evicted`/`tenants_rehydrated` counters and the
//! `tenants_resident` gauge alongside). Recency is an intrusive O(1) LRU
//! keyed by the admission pool's claim/release path; tenants
//! mid-transaction, with staged jobs, or whose snapshot write faults are
//! *refused and retained* — nothing is ever dropped to satisfy the
//! budget. Crash recovery folds `tsnap`s in: a tenant evicted at
//! watermark `w` recovers from its eviction snapshot plus only the log
//! tail past `w`. `tests/lifecycle_equivalence.rs` is the oracle: a
//! cap small enough to force constant churn must be bit-identical to a
//! sequential replay, across crashes included; `benches/lifecycle.rs`
//! prices the cold-claim rehydration and the capped-residency
//! throughput at 1024 tenants.

pub use chimera_analysis as analysis;
pub use chimera_baselines as baselines;
pub use chimera_calculus as calculus;
pub use chimera_chaos as chaos;
pub use chimera_events as events;
pub use chimera_exec as exec;
pub use chimera_lang as lang;
pub use chimera_lifecycle as lifecycle;
pub use chimera_model as model;
pub use chimera_net as net;
pub use chimera_persist as persist;
pub use chimera_rules as rules;
pub use chimera_runtime as runtime;
pub use chimera_telemetry as telemetry;
pub use chimera_temporal as temporal;
pub use chimera_workload as workload;

pub mod interp;

/// Convenience prelude.
pub mod prelude {
    pub use crate::calculus::{
        at_occurrences, occurred_objects, ts_algebraic, ts_logical, EventExpr, RelevanceFilter,
        TsVal, VariationSet,
    };
    pub use crate::events::{EventBase, EventKind, EventType, Timestamp, Window};
    pub use crate::exec::{Engine, EngineConfig, Op};
    pub use crate::interp::Interpreter;
    pub use crate::model::{
        AttrDef, AttrType, ClassId, Object, ObjectStore, Oid, Schema, SchemaBuilder, Value,
    };
    pub use crate::rules::{
        ActionStmt, Condition, ConsumptionMode, CouplingMode, RuleTable, TriggerDef,
        TriggerSupport,
    };
    pub use crate::net::{
        Client, Server, ServerConfig, TenantQuery, TriggerOutcome, WireDurability, WireJob,
        WireOp,
    };
    pub use crate::lifecycle::LifecycleConfig;
    pub use crate::persist::{StateStore, SyncPolicy};
    pub use crate::telemetry::{MetricsSnapshot, Stage, Telemetry};
    pub use crate::runtime::{
        Backpressure, DurabilityConfig, Job, JobId, JobOutcome, JobReply, RecoveryReport,
        Runtime, RuntimeConfig, RuntimeStats, Scheduler, ShardStats, StorageMode, TenantId,
    };
}
