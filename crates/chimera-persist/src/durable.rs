//! The durable engine: `chimera_exec::Engine` + WAL + snapshot.
//!
//! Layout of a database directory:
//!
//! ```text
//! <dir>/snapshot.chi   # last compaction (optional)
//! <dir>/wal.log        # redo batches committed since the snapshot
//! ```
//!
//! On commit, the wrapper derives the transaction's redo batch from the
//! engine's own event base — every OID the transaction's occurrences
//! touched is either live (→ `Put` with its full post-state) or not
//! (→ idempotent `Delete`) — appends it to the WAL with fsync, and only
//! then commits the in-memory engine. Rule side effects need no special
//! treatment: their mutations are event occurrences like any others.
//!
//! Recovery ([`DurableEngine::open`]) loads the snapshot (if any),
//! replays every fully-committed WAL batch on top, cuts a torn tail, and
//! hands back a fresh engine over the restored store. Rule definitions
//! are code, not data (the paper's rules live in the schema/program), so
//! `open` takes the trigger definitions the caller would have defined
//! anyway.

use crate::snapshot::Snapshot;
use crate::wal::{RedoRecord, Wal};
use crate::Result;
use chimera_events::{EventOccurrence, Timestamp, Window};
use chimera_exec::{Engine, EngineConfig, Op};
use chimera_model::{ClassId, ObjectStore, Oid, Schema};
use chimera_rules::TriggerDef;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// What recovery found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Commit sequence of the loaded snapshot (0 when none existed).
    pub snapshot_seq: u64,
    /// WAL batches replayed on top of the snapshot.
    pub replayed: u64,
    /// Description of a torn tail that was cut, if any.
    pub torn_tail: Option<String>,
    /// Live objects after recovery.
    pub objects: usize,
}

/// A crash-safe wrapper around [`Engine`].
#[derive(Debug)]
pub struct DurableEngine {
    engine: Engine,
    wal: Wal,
    snapshot_path: PathBuf,
    /// Sequence of the last durable commit.
    committed_seq: u64,
    /// Event-base instant at which the running transaction began.
    txn_start: Option<Timestamp>,
    /// Set when a WAL append failed after the in-memory commit: memory
    /// and log have diverged, and only a reopen (which replays the log)
    /// restores consistency. All further mutations are refused.
    poisoned: bool,
}

impl DurableEngine {
    /// Open (or create) the database in `dir`: recover committed state,
    /// cut any torn WAL tail, define `triggers`, and return the engine
    /// plus the recovery report.
    pub fn open(
        schema: Schema,
        config: EngineConfig,
        dir: &Path,
        triggers: Vec<TriggerDef>,
    ) -> Result<(Self, RecoveryReport)> {
        fs::create_dir_all(dir)?;
        let snapshot_path = dir.join("snapshot.chi");
        let wal_path = dir.join("wal.log");

        let snap = Snapshot::read(&snapshot_path)?;
        let (mut objects, mut next_oid, snapshot_seq) = match snap {
            Some(s) => {
                let map = s.objects.iter().map(|o| (o.oid, o.clone())).collect();
                (map, s.next_oid, s.seq)
            }
            None => (std::collections::BTreeMap::new(), 1, 0),
        };

        let outcome = Wal::read(&wal_path, snapshot_seq + 1)?;
        for batch in &outcome.batches {
            batch.apply(&mut objects, &mut next_oid);
        }
        Wal::repair(&wal_path, &outcome)?;
        let replayed = outcome.batches.len() as u64;
        let committed_seq = snapshot_seq + replayed;

        let store = ObjectStore::restore(objects.into_values().collect(), next_oid)?;
        let report = RecoveryReport {
            snapshot_seq,
            replayed,
            torn_tail: outcome.torn.clone(),
            objects: store.len(),
        };

        let mut engine = Engine::with_restored_store(schema, store, config);
        for def in triggers {
            engine.define_trigger(def)?;
        }
        let wal = Wal::open_append(&wal_path, committed_seq + 1)?;
        Ok((
            DurableEngine {
                engine,
                wal,
                snapshot_path,
                committed_seq,
                txn_start: None,
                poisoned: false,
            },
            report,
        ))
    }

    /// The wrapped engine (read-only: all mutations must go through the
    /// durable passthroughs so commits hit the log).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Sequence number of the last durable commit.
    pub fn committed_seq(&self) -> u64 {
        self.committed_seq
    }

    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            return Err(crate::PersistError::Corrupt(
                "engine poisoned by a failed WAL append; reopen to recover".into(),
            ));
        }
        Ok(())
    }

    /// Begin a transaction.
    pub fn begin(&mut self) -> Result<()> {
        self.check_poisoned()?;
        self.engine.begin()?;
        self.txn_start = Some(self.engine.event_base().now());
        Ok(())
    }

    /// Execute one transaction line.
    pub fn exec_block(&mut self, ops: &[Op]) -> Result<Vec<EventOccurrence>> {
        Ok(self.engine.exec_block(ops)?)
    }

    /// Deliver external events (clock ticks, application events).
    pub fn raise_external(
        &mut self,
        events: &[(ClassId, u32, Oid)],
    ) -> Result<Vec<EventOccurrence>> {
        Ok(self.engine.raise_external(events)?)
    }

    /// Commit: drain deferred rules and commit in memory, derive the redo
    /// batch from the transaction's event window against the committed
    /// store, append it to the WAL (fsync), then report success.
    ///
    /// The durability point is the WAL append: the disk only ever changes
    /// through the log, so a crash before the append simply loses the
    /// transaction (the caller never saw `Ok`), and a crash after it is
    /// replayed — never a torn state. The in-memory commit must run
    /// *first* because deferred rules still mutate the store at commit
    /// time and the log must carry their effects. If the append itself
    /// fails, memory and log have diverged; the engine is poisoned and
    /// every further mutation refused until a reopen replays the log.
    pub fn commit(&mut self) -> Result<()> {
        self.check_poisoned()?;
        let start = self
            .txn_start
            .take()
            .ok_or(chimera_exec::ExecError::NoActiveTransaction)?;
        self.engine.commit()?;
        let end = self.engine.event_base().now();
        let records = self.redo_records(Window::new(start, end));
        match self.wal.append(records, self.engine.store().next_oid_counter()) {
            Ok(seq) => {
                self.committed_seq = seq;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Rollback: nothing reaches the log.
    pub fn rollback(&mut self) -> Result<()> {
        self.txn_start = None;
        self.engine.rollback()?;
        Ok(())
    }

    /// Compact: write a snapshot at the current committed sequence and
    /// truncate the WAL. Callable between transactions only.
    pub fn compact(&mut self) -> Result<()> {
        assert!(
            !self.engine.in_transaction(),
            "compact must run between transactions"
        );
        let snap = Snapshot {
            seq: self.committed_seq,
            objects: self
                .engine
                .store()
                .snapshot_objects()
                .into_iter()
                .cloned()
                .collect(),
            next_oid: self.engine.store().next_oid_counter(),
        };
        snap.write(&self.snapshot_path)?;
        self.wal.truncate(self.committed_seq + 1)?;
        Ok(())
    }

    /// Redo records for every object touched by occurrences in `w`.
    fn redo_records(&self, w: Window) -> Vec<RedoRecord> {
        let touched: BTreeSet<Oid> = self
            .engine
            .event_base()
            .slice(w)
            .iter()
            .map(|e| e.oid)
            .collect();
        touched
            .into_iter()
            .map(|oid| match self.engine.store().get(oid) {
                Ok(obj) => RedoRecord::Put(obj.clone()),
                // deleted in this transaction, created-then-deleted, or a
                // pseudo-object (external events): an idempotent delete
                // reproduces "not live" in all three cases.
                Err(_) => RedoRecord::Delete(oid),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::EventExpr;
    use chimera_events::EventType;
    use chimera_model::{AttrDef, AttrType, Value};
    use chimera_rules::{ActionStmt, Condition, Formula, Term, VarDecl};

    fn schema() -> Schema {
        let mut b = chimera_model::SchemaBuilder::new();
        b.class(
            "stock",
            None,
            vec![
                AttrDef::new("quantity", AttrType::Integer),
                AttrDef::with_default("max_quantity", AttrType::Integer, Value::Int(100)),
            ],
        )
        .unwrap();
        b.build()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chimera-durable-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn clamp_trigger(schema: &Schema) -> TriggerDef {
        let stock = schema.class_by_name("stock").unwrap();
        let mut def = TriggerDef::new("clamp", EventExpr::prim(EventType::create(stock)));
        def.condition = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![
                Formula::Occurred {
                    expr: EventExpr::prim(EventType::create(stock)),
                    var: "S".into(),
                },
                Formula::Compare {
                    lhs: Term::attr("S", "quantity"),
                    op: chimera_rules::CmpOp::Gt,
                    rhs: Term::attr("S", "max_quantity"),
                },
            ],
        };
        def.actions = vec![ActionStmt::Modify {
            var: "S".into(),
            attr: "quantity".into(),
            value: Term::attr("S", "max_quantity"),
        }];
        def
    }

    #[test]
    fn committed_state_survives_reopen() {
        let dir = tmpdir("reopen");
        let schema = schema();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let oid;
        {
            let (mut db, report) = DurableEngine::open(
                schema.clone(),
                EngineConfig::default(),
                &dir,
                vec![clamp_trigger(&schema)],
            )
            .unwrap();
            assert_eq!(report.objects, 0);
            db.begin().unwrap();
            oid = db
                .exec_block(&[Op::Create {
                    class: stock,
                    inits: vec![(q, Value::Int(500))],
                }])
                .unwrap()[0]
                .oid;
            db.commit().unwrap();
            // the trigger clamped before commit; the log has the clamp
            assert_eq!(
                db.engine().read_attr(oid, "quantity").unwrap(),
                Value::Int(100)
            );
        }
        let (db, report) = DurableEngine::open(
            schema.clone(),
            EngineConfig::default(),
            &dir,
            vec![clamp_trigger(&schema)],
        )
        .unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.objects, 1);
        assert!(report.torn_tail.is_none());
        assert_eq!(
            db.engine().read_attr(oid, "quantity").unwrap(),
            Value::Int(100)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_transaction_is_lost() {
        let dir = tmpdir("uncommitted");
        let schema = schema();
        let stock = schema.class_by_name("stock").unwrap();
        {
            let (mut db, _) =
                DurableEngine::open(schema.clone(), EngineConfig::default(), &dir, vec![])
                    .unwrap();
            db.begin().unwrap();
            db.exec_block(&[Op::Create {
                class: stock,
                inits: vec![],
            }])
            .unwrap();
            // drop without commit = crash mid-transaction
        }
        let (db, report) =
            DurableEngine::open(schema.clone(), EngineConfig::default(), &dir, vec![]).unwrap();
        assert_eq!(report.objects, 0);
        assert_eq!(db.committed_seq(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deletes_and_oid_counter_replay() {
        let dir = tmpdir("deletes");
        let schema = schema();
        let stock = schema.class_by_name("stock").unwrap();
        let survivor;
        {
            let (mut db, _) =
                DurableEngine::open(schema.clone(), EngineConfig::default(), &dir, vec![])
                    .unwrap();
            db.begin().unwrap();
            let a = db
                .exec_block(&[Op::Create {
                    class: stock,
                    inits: vec![],
                }])
                .unwrap()[0]
                .oid;
            survivor = db
                .exec_block(&[Op::Create {
                    class: stock,
                    inits: vec![],
                }])
                .unwrap()[0]
                .oid;
            db.exec_block(&[Op::Delete { oid: a }]).unwrap();
            db.commit().unwrap();
        }
        let (mut db, report) =
            DurableEngine::open(schema.clone(), EngineConfig::default(), &dir, vec![]).unwrap();
        assert_eq!(report.objects, 1);
        assert!(db.engine().store().contains(survivor));
        // the deleted OID is not recycled after recovery
        db.begin().unwrap();
        let fresh = db
            .exec_block(&[Op::Create {
                class: stock,
                inits: vec![],
            }])
            .unwrap()[0]
            .oid;
        assert!(fresh.0 > survivor.0);
        db.commit().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_then_more_commits_recovers() {
        let dir = tmpdir("compact");
        let schema = schema();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let oid;
        {
            let (mut db, _) =
                DurableEngine::open(schema.clone(), EngineConfig::default(), &dir, vec![])
                    .unwrap();
            db.begin().unwrap();
            oid = db
                .exec_block(&[Op::Create {
                    class: stock,
                    inits: vec![(q, Value::Int(1))],
                }])
                .unwrap()[0]
                .oid;
            db.commit().unwrap();
            db.compact().unwrap();
            // WAL now empty; one more commit on top of the snapshot
            db.begin().unwrap();
            db.exec_block(&[Op::Modify {
                oid,
                attr: q,
                value: Value::Int(2),
            }])
            .unwrap();
            db.commit().unwrap();
        }
        let (db, report) =
            DurableEngine::open(schema.clone(), EngineConfig::default(), &dir, vec![]).unwrap();
        assert_eq!(report.snapshot_seq, 1);
        assert_eq!(report.replayed, 1);
        assert_eq!(
            db.engine().read_attr(oid, "quantity").unwrap(),
            Value::Int(2)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollback_reaches_no_log() {
        let dir = tmpdir("rollback");
        let schema = schema();
        let stock = schema.class_by_name("stock").unwrap();
        {
            let (mut db, _) =
                DurableEngine::open(schema.clone(), EngineConfig::default(), &dir, vec![])
                    .unwrap();
            db.begin().unwrap();
            db.exec_block(&[Op::Create {
                class: stock,
                inits: vec![],
            }])
            .unwrap();
            db.rollback().unwrap();
            assert_eq!(db.committed_seq(), 0);
        }
        let wal_len = fs::metadata(dir.join("wal.log")).unwrap().len();
        assert_eq!(wal_len, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn external_pseudo_objects_do_not_pollute_the_log() {
        let dir = tmpdir("external");
        let schema = schema();
        let stock = schema.class_by_name("stock").unwrap();
        {
            let (mut db, _) =
                DurableEngine::open(schema.clone(), EngineConfig::default(), &dir, vec![])
                    .unwrap();
            db.begin().unwrap();
            db.raise_external(&[(stock, 1, Oid(0))]).unwrap();
            db.commit().unwrap();
        }
        let (_, report) =
            DurableEngine::open(schema.clone(), EngineConfig::default(), &dir, vec![]).unwrap();
        // the pseudo-object produced an idempotent delete, not an object
        assert_eq!(report.objects, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
