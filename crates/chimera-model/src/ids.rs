//! Identifier newtypes for objects, classes and attributes.
//!
//! All identifiers are small copyable newtypes so they can be used freely
//! as map keys and inside event occurrences without allocation.

use std::fmt;

/// Object identifier (the paper's *OID*).
///
/// OIDs are allocated by [`crate::ObjectStore`] and are never reused, even
/// after deletion — the event base may still refer to deleted objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Class identifier, dense index into the schema's class table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Attribute identifier.
///
/// Attribute ids are *class-local slot indexes* resolved by the schema:
/// inherited attributes keep the slot they have in the superclass, so an
/// `AttrId` is valid for a class and all of its subclasses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl Oid {
    /// Raw numeric value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl ClassId {
    /// Raw numeric value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
    /// Index into dense per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AttrId {
    /// Raw numeric value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
    /// Slot index inside an object's attribute vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Oid(7).to_string(), "o7");
        assert_eq!(ClassId(2).to_string(), "c2");
        assert_eq!(AttrId(0).to_string(), "a0");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Oid(2) < Oid(10));
        assert!(ClassId(0) < ClassId(1));
        assert!(AttrId(3) > AttrId(1));
    }

    #[test]
    fn raw_and_index_roundtrip() {
        assert_eq!(Oid(42).raw(), 42);
        assert_eq!(ClassId(9).index(), 9);
        assert_eq!(AttrId(5).index(), 5);
    }
}
