//! Tokens and source positions.

use std::fmt;

/// A half-open byte span with line/column of its start (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start byte offset.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
    /// 1-based line of the start.
    pub line: u32,
    /// 1-based column of the start.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are contextual).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped contents).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `,=` — instance-oriented disjunction
    CommaEq,
    /// `+`
    Plus,
    /// `+=` — instance-oriented conjunction
    PlusEq,
    /// `-`
    Minus,
    /// `-=` — instance-oriented negation
    MinusEq,
    /// `<`
    Lt,
    /// `<=` — instance precedence / less-or-equal comparison
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `=`
    Eq,
    /// `!=`
    NotEq,
    /// `*`
    Star,
    /// `#` — external-event channel separator, `external(class#N)`
    Hash,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Is this token the given (contextual) keyword?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == kw)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::CommaEq => write!(f, "`,=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::PlusEq => write!(f, "`+=`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::MinusEq => write!(f, "`-=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::LtEq => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::GtEq => write!(f, "`>=`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Hash => write!(f, "`#`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_check() {
        assert!(TokenKind::Ident("events".into()).is_kw("events"));
        assert!(!TokenKind::Ident("events".into()).is_kw("end"));
        assert!(!TokenKind::Comma.is_kw("events"));
    }

    #[test]
    fn displays() {
        assert_eq!(TokenKind::CommaEq.to_string(), "`,=`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "`x`");
        assert_eq!(
            Span {
                start: 0,
                end: 1,
                line: 3,
                col: 7
            }
            .to_string(),
            "3:7"
        );
    }
}
