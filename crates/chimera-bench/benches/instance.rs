//! PERF-3 — instance-oriented evaluation against the object population:
//! the §4.3 boundary quantifies over affected objects, so `ts` of an
//! instance expression scales with the number of *affected* objects while
//! the per-object `ots` stays flat.

use chimera_bench::{history, p};
use chimera_calculus::{ots_logical, ts_logical};
use chimera_events::Window;
use chimera_model::Oid;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_instance(c: &mut Criterion) {
    let mut g = c.benchmark_group("instance_objects");
    for &objects in &[10u64, 100, 1_000, 10_000] {
        // history size scales with population so every object is touched
        let eb = history(23, (objects as usize) * 4, 4, objects);
        let w = Window::from_origin(eb.now());
        let now = eb.now();
        let conj = p(0).iand(p(1));
        let prec = p(0).iprec(p(1));
        let neg = p(0).iand(p(1)).inot();
        g.bench_with_input(BenchmarkId::new("boundary_iand", objects), &conj, |b, e| {
            b.iter(|| black_box(ts_logical(e, &eb, w, now)));
        });
        g.bench_with_input(BenchmarkId::new("boundary_iprec", objects), &prec, |b, e| {
            b.iter(|| black_box(ts_logical(e, &eb, w, now)));
        });
        g.bench_with_input(BenchmarkId::new("boundary_inot", objects), &neg, |b, e| {
            b.iter(|| black_box(ts_logical(e, &eb, w, now)));
        });
        g.bench_with_input(BenchmarkId::new("single_ots", objects), &conj, |b, e| {
            b.iter(|| black_box(ots_logical(e, &eb, w, now, Oid(1))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_instance);
criterion_main!(benches);
