//! Action ASTs: the set-oriented data manipulations a rule executes.
//!
//! Actions run once per rule consideration, over *all* bindings the
//! condition produced (§2: "the rule is executed in a set-oriented way, so
//! all the objects created and not checked yet by the rule are processed
//! together in a single rule execution").

use crate::condition::Term;
use std::fmt;

/// One action statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionStmt {
    /// `create(class, [attr: term, ...])` — executed once per binding
    /// tuple (or once if the condition binds nothing).
    Create {
        /// Class name.
        class: String,
        /// Attribute initializers.
        inits: Vec<(String, Term)>,
    },
    /// `modify(class.attr, Var, term)` — set the attribute on every bound
    /// object.
    Modify {
        /// Bound class variable.
        var: String,
        /// Attribute name.
        attr: String,
        /// New value.
        value: Term,
    },
    /// `delete(Var)` — delete every bound object.
    Delete {
        /// Bound class variable.
        var: String,
    },
    /// `specialize(Var, class)` — migrate every bound object down.
    Specialize {
        /// Bound class variable.
        var: String,
        /// Target subclass name.
        target: String,
    },
    /// `generalize(Var, class)` — migrate every bound object up.
    Generalize {
        /// Bound class variable.
        var: String,
        /// Target superclass name.
        target: String,
    },
}

impl fmt::Display for ActionStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionStmt::Create { class, inits } => {
                write!(f, "create({class}")?;
                for (a, t) in inits {
                    write!(f, ", {a}: {t}")?;
                }
                write!(f, ")")
            }
            ActionStmt::Modify { var, attr, value } => {
                write!(f, "modify({var}.{attr}, {value})")
            }
            ActionStmt::Delete { var } => write!(f, "delete({var})"),
            ActionStmt::Specialize { var, target } => write!(f, "specialize({var}, {target})"),
            ActionStmt::Generalize { var, target } => write!(f, "generalize({var}, {target})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let a = ActionStmt::Create {
            class: "stock".into(),
            inits: vec![("quantity".into(), Term::int(5))],
        };
        assert_eq!(a.to_string(), "create(stock, quantity: 5)");
        let m = ActionStmt::Modify {
            var: "S".into(),
            attr: "quantity".into(),
            value: Term::attr("S", "max_quantity"),
        };
        assert_eq!(m.to_string(), "modify(S.quantity, S.max_quantity)");
        assert_eq!(
            ActionStmt::Delete { var: "S".into() }.to_string(),
            "delete(S)"
        );
        assert_eq!(
            ActionStmt::Specialize {
                var: "S".into(),
                target: "perishable".into()
            }
            .to_string(),
            "specialize(S, perishable)"
        );
        assert_eq!(
            ActionStmt::Generalize {
                var: "S".into(),
                target: "stock".into()
            }
            .to_string(),
            "generalize(S, stock)"
        );
    }
}
