//! The paper's running example domain under load: stock / show /
//! stockOrder with three triggers (including two composite-event rules),
//! driven by the seeded workload generator.
//!
//! ```sh
//! cargo run --example stock_monitor
//! ```

use chimera::model::Value;
use chimera::workload::{StockWorkload, StockWorkloadConfig};

fn main() {
    let cfg = StockWorkloadConfig {
        transactions: 20,
        blocks_per_txn: 6,
        ops_per_block: 5,
        seed: 2026,
        with_triggers: true,
        ..Default::default()
    };
    println!(
        "running {} transactions × {} blocks × {} ops (seed {})",
        cfg.transactions, cfg.blocks_per_txn, cfg.ops_per_block, cfg.seed
    );
    let mut w = StockWorkload::new(cfg);
    w.run();

    let engine = &w.engine;
    let schema = engine.schema();
    let stock = schema.class_by_name("stock").unwrap();
    let orders = schema.class_by_name("stockOrder").unwrap();

    let stocks = engine.extent(stock);
    println!("\nlive stock objects: {}", stocks.len());
    let mut violations = 0;
    for &oid in &stocks {
        let q = engine.read_attr(oid, "quantity").unwrap();
        let m = engine.read_attr(oid, "max_quantity").unwrap();
        if let (Value::Int(q), Value::Int(m)) = (q, m) {
            if q > m {
                violations += 1;
            }
        }
    }
    println!("stocks above max_quantity: {violations} (checkStockQty keeps this at 0)");

    let order_oids = engine.extent(orders);
    println!("stock orders created by the `reorder` composite rule: {}", order_oids.len());

    let stats = engine.stats();
    let support = engine.support_stats();
    println!("\nengine statistics");
    println!("  blocks executed        {}", stats.blocks);
    println!("  events recorded        {}", stats.events);
    println!("  rule considerations    {}", stats.considerations);
    println!("  rule executions        {}", stats.executions);
    println!("  commits                {}", stats.commits);
    println!("\ntrigger support (§5.1 static optimization)");
    println!("  rules checked          {}", support.rules_checked);
    println!("  skipped by V(E) filter {}", support.skipped_by_filter);
    println!("  ts probes evaluated    {}", support.ts_probes);

    assert_eq!(violations, 0);
    assert!(stats.considerations > 0);
}
