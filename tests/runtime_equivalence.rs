//! Property suite for the parallel runtime (`chimera-runtime`) and the
//! partitioned check round (`chimera-rules`): parallelism must be
//! **observationally invisible**.
//!
//! * interleaved multi-tenant job streams through the sharded runtime
//!   (bounded queues, worker threads, intra-shard check parallelism)
//!   leave every tenant with the *identical* triggered-rule sets,
//!   consumption windows (`last_consideration` / `last_consumption` /
//!   `checked_upto`), engine counters, event log, and net store effects
//!   as a per-tenant sequential replay through a plain [`Engine`];
//! * a trigger-support check round with `check_workers > 1` leaves the
//!   rule table in exactly the state the sequential round produces, on
//!   random rule sets × random histories.
//!
//! The suite's configured default is 256 cases (the PR-4 acceptance
//! bar); CI runs it in a dedicated step at `PROPTEST_CASES=256`.

use chimera::events::Timestamp;
use chimera::exec::{Engine, EngineConfig, Op};
use chimera::model::{AttrDef, AttrType, ClassId, Oid, Schema, SchemaBuilder, Value};
use chimera::rules::{ActionStmt, RuleTable, TriggerDef, TriggerSupport};
use chimera::runtime::{Backpressure, Job, Runtime, RuntimeConfig, Scheduler, TenantId};
use chimera::workload::{ExprGenConfig, RandomExprGen, ZipfTenants, ZipfTenantsConfig};
use chimera::prelude::{EventBase, EventType};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The test schema: one class, so its id is the `ClassId(0)` the random
/// expression generator emits external events on.
fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "item",
        None,
        vec![
            AttrDef::new("qty", AttrType::Integer),
            AttrDef::with_default("tag", AttrType::Integer, Value::Int(0)),
        ],
    )
    .unwrap();
    let s = b.build();
    assert_eq!(s.class_by_name("item").unwrap(), ClassId(0));
    s
}

/// A random rule set over the generator's external event types; a third
/// of the rules carry a Create action (observable net effects, possible
/// cascades — capped by `max_rule_steps`).
fn random_rules(seed: u64) -> Vec<TriggerDef> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RandomExprGen::new(ExprGenConfig {
        event_types: 4,
        max_depth: 3,
        instance_prob: 0.5,
        negation_prob: 0.2,
        seed: seed ^ 0xD1CE,
    });
    let k = rng.random_range(2..6usize);
    (0..k)
        .map(|i| {
            let mut def = TriggerDef::new(format!("r{i}"), g.generate());
            def.priority = rng.random_range(0..3i32);
            if i % 3 == 0 {
                def.actions = vec![ActionStmt::Create {
                    class: "item".into(),
                    inits: vec![],
                }];
            }
            def
        })
        .collect()
}

/// One tenant-addressed job of the interleaved script.
fn random_job(rng: &mut StdRng, in_txn: bool, item: ClassId) -> Job {
    if !in_txn {
        return Job::Begin;
    }
    match rng.random_range(0..10u32) {
        0..=4 => {
            let n = rng.random_range(1..4usize);
            let events = (0..n)
                .map(|_| {
                    (
                        item,
                        rng.random_range(0..4u32),
                        Oid(rng.random_range(0..4u64)),
                    )
                })
                .collect();
            Job::RaiseExternal(events)
        }
        5..=7 => {
            let n = rng.random_range(1..3usize);
            let ops = (0..n)
                .map(|_| Op::Create {
                    class: item,
                    inits: vec![],
                })
                .collect();
            Job::ExecBlock(ops)
        }
        8 => Job::Commit,
        _ => Job::Rollback,
    }
}

/// Everything observable about one tenant engine.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Snapshot {
    stats: chimera::exec::EngineStats,
    in_txn: bool,
    eb_len: usize,
    eb_now: Timestamp,
    eb_log: Vec<(EventType, Oid, Timestamp)>,
    /// Per rule: (name, triggered, witness, last_consideration,
    /// last_consumption, checked_upto) — the consumption windows.
    rules: Vec<(String, bool, bool, Timestamp, Timestamp, Timestamp)>,
    /// Sorted extent of the item class (the net store effect; creations
    /// from both blocks and rule actions land here).
    extent: Vec<Oid>,
    /// Probe decisions: fresh evaluations + memo hits. The split between
    /// the two may differ across worker counts (per-worker memos), the
    /// sum may not.
    probe_decisions: u64,
    /// Worker-count-independent support counters.
    rules_checked: u64,
    skipped_by_filter: u64,
    check_rounds: u64,
}

fn snapshot(engine: &mut Engine, item: ClassId) -> Snapshot {
    let mut extent = engine.extent(item);
    extent.sort_unstable();
    let s = engine.support_stats();
    Snapshot {
        stats: engine.stats(),
        in_txn: engine.in_transaction(),
        eb_len: engine.event_base().len(),
        eb_now: engine.event_base().now(),
        eb_log: engine
            .event_base()
            .iter()
            .map(|e| (e.ty, e.oid, e.ts))
            .collect(),
        rules: engine
            .rules()
            .iter()
            .map(|(def, st)| {
                (
                    def.name.clone(),
                    st.triggered,
                    st.witness,
                    st.last_consideration,
                    st.last_consumption,
                    st.checked_upto,
                )
            })
            .collect(),
        extent,
        probe_decisions: s.ts_probes + s.probe_memo_hits,
        rules_checked: s.rules_checked,
        skipped_by_filter: s.skipped_by_filter,
        check_rounds: s.check_rounds,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The PR-4 tentpole invariant: interleaved multi-tenant traffic
    /// through the parallel runtime ≡ per-tenant sequential replay.
    #[test]
    fn runtime_matches_sequential_replay(
        rule_seed in any::<u64>(),
        script_seed in any::<u64>(),
        tenants in 1u64..6,
        steps in 1usize..40,
        shards in 1usize..4,
        check_workers in 1usize..4,
    ) {
        let s = schema();
        let item = s.class_by_name("item").unwrap();
        let rules = random_rules(rule_seed);
        let engine_cfg = EngineConfig {
            // errors (cascade limit, commit outside txn, ...) are part of
            // the equivalence: both sides must fail identically
            max_rule_steps: 64,
            check_workers,
            ..EngineConfig::default()
        };
        let rt = Runtime::new(
            s.clone(),
            rules.clone(),
            RuntimeConfig {
                shards,
                queue_capacity: 4, // small: exercise the Block policy
                backpressure: Backpressure::Block,
                engine: engine_cfg.clone(),
                ..Default::default()
            },
        )
        .unwrap();

        // one interleaved script over all tenants, submitted in order
        let mut rng = StdRng::seed_from_u64(script_seed);
        let mut in_txn = vec![false; tenants as usize];
        let mut per_tenant: Vec<Vec<Job>> = vec![Vec::new(); tenants as usize];
        for _ in 0..steps {
            let t = rng.random_range(0..tenants) as usize;
            let job = random_job(&mut rng, in_txn[t], item);
            match job {
                Job::Begin => in_txn[t] = true,
                Job::Commit | Job::Rollback => in_txn[t] = false,
                _ => {}
            }
            per_tenant[t].push(job.clone());
            rt.submit(TenantId(t as u64), job).unwrap();
        }
        rt.flush().unwrap();

        // sequential oracle: a fresh single-threaded engine per tenant,
        // replaying exactly that tenant's jobs in order
        for (t, jobs) in per_tenant.iter().enumerate() {
            let reference = {
                let mut engine = Engine::with_config(
                    s.clone(),
                    EngineConfig { check_workers: 1, ..engine_cfg.clone() },
                );
                let mut errors = 0u64;
                for def in &rules {
                    engine.define_trigger(def.clone()).unwrap();
                }
                for job in jobs {
                    let res = match job.clone() {
                        Job::Begin => engine.begin(),
                        Job::ExecBlock(ops) => engine.exec_block(&ops).map(|_| ()),
                        Job::RaiseExternal(ev) => engine.raise_external(&ev).map(|_| ()),
                        Job::Commit => engine.commit(),
                        Job::Rollback => engine.rollback(),
                        _ => Ok(()),
                    };
                    if res.is_err() {
                        errors += 1;
                    }
                }
                (snapshot(&mut engine, item), errors)
            };
            let got = rt.with_tenant(TenantId(t as u64), |e| snapshot(e, item));
            let (want, want_errors) = reference;
            if jobs.is_empty() {
                prop_assert!(got.is_none(), "tenant {} never submitted", t);
                continue;
            }
            let got = got.expect("tenant has an engine");
            prop_assert_eq!(&got, &want, "tenant {} diverged", t);
            let (errors, _) = rt.tenant_errors(TenantId(t as u64)).unwrap();
            prop_assert_eq!(errors, want_errors, "tenant {} error count", t);
        }
        let stats = rt.stats();
        prop_assert_eq!(stats.jobs_processed, stats.jobs_submitted);
        prop_assert_eq!(stats.jobs_shed, 0u64);
        prop_assert_eq!(stats.job_panics, 0u64);
    }

    /// The PR-7 scheduling invariant: configurations chosen to *maximize*
    /// cross-shard tenant stealing still replay identically, under both
    /// schedulers. Three adversarial shapes:
    ///
    /// * one tenant × many workers — every idle worker contends to claim
    ///   the single ready tenant, so per-tenant FIFO rests entirely on
    ///   the exclusive-claim protocol;
    /// * many tenants × two workers — constant migration pressure, every
    ///   release re-enqueues into a contended ready set;
    /// * a Zipf-skewed job mix — one hot tenant keeps its home worker
    ///   saturated while the cold tail gets stolen around it.
    #[test]
    fn steal_heavy_schedules_match_sequential_replay(
        rule_seed in any::<u64>(),
        script_seed in any::<u64>(),
        scenario in 0usize..3,
        pinned in any::<bool>(),
    ) {
        let (tenants, shards, steps) = match scenario {
            0 => (1u64, 6usize, 48usize),
            1 => (16, 2, 64),
            _ => (8, 4, 64),
        };
        let s = schema();
        let item = s.class_by_name("item").unwrap();
        let rules = random_rules(rule_seed);
        let engine_cfg = EngineConfig {
            max_rule_steps: 64,
            ..EngineConfig::default()
        };
        let scheduler = if pinned { Scheduler::Pinned } else { Scheduler::LoadAware };
        let rt = Runtime::new(
            s.clone(),
            rules.clone(),
            RuntimeConfig {
                shards,
                queue_capacity: 4,
                backpressure: Backpressure::Block,
                scheduler,
                engine: engine_cfg.clone(),
                ..Default::default()
            },
        )
        .unwrap();

        // the interleaved script; the skewed scenario draws its tenant
        // sequence from the Zipf generator (rank 0 is the hot tenant)
        let mut rng = StdRng::seed_from_u64(script_seed);
        let mut zipf = (scenario == 2).then(|| {
            ZipfTenants::new(ZipfTenantsConfig {
                tenants,
                s: 1.3,
                hot_boost: 4.0,
                seed: script_seed ^ 0x51E9,
            })
        });
        let mut in_txn = vec![false; tenants as usize];
        let mut per_tenant: Vec<Vec<Job>> = vec![Vec::new(); tenants as usize];
        for _ in 0..steps {
            let t = match zipf.as_mut() {
                Some(z) => z.next_rank() as usize,
                None => rng.random_range(0..tenants) as usize,
            };
            let job = random_job(&mut rng, in_txn[t], item);
            match job {
                Job::Begin => in_txn[t] = true,
                Job::Commit | Job::Rollback => in_txn[t] = false,
                _ => {}
            }
            per_tenant[t].push(job.clone());
            rt.submit(TenantId(t as u64), job).unwrap();
        }
        rt.flush().unwrap();

        let stats = rt.stats();
        prop_assert_eq!(stats.jobs_processed, stats.jobs_submitted);
        prop_assert_eq!(stats.jobs_shed, 0u64);
        prop_assert_eq!(stats.job_panics, 0u64);
        // per-shard accounting closes: homes account for every submission,
        // workers for every execution
        let sub: u64 = stats.per_shard.iter().map(|s| s.jobs_submitted).sum();
        let exec: u64 = stats.per_shard.iter().map(|s| s.jobs_executed).sum();
        prop_assert_eq!(sub, stats.jobs_submitted);
        prop_assert_eq!(exec, stats.jobs_processed);
        if pinned {
            // before shutdown, pinned scheduling never crosses homes
            prop_assert_eq!(stats.steals, 0u64);
            for (i, sh) in stats.per_shard.iter().enumerate() {
                prop_assert_eq!(
                    sh.jobs_executed, sh.jobs_submitted,
                    "pinned shard {} executed foreign work", i
                );
            }
        }

        for (t, jobs) in per_tenant.iter().enumerate() {
            let reference = {
                let mut engine = Engine::with_config(
                    s.clone(),
                    EngineConfig { check_workers: 1, ..engine_cfg.clone() },
                );
                let mut errors = 0u64;
                for def in &rules {
                    engine.define_trigger(def.clone()).unwrap();
                }
                for job in jobs {
                    let res = match job.clone() {
                        Job::Begin => engine.begin(),
                        Job::ExecBlock(ops) => engine.exec_block(&ops).map(|_| ()),
                        Job::RaiseExternal(ev) => engine.raise_external(&ev).map(|_| ()),
                        Job::Commit => engine.commit(),
                        Job::Rollback => engine.rollback(),
                        _ => Ok(()),
                    };
                    if res.is_err() {
                        errors += 1;
                    }
                }
                (snapshot(&mut engine, item), errors)
            };
            let got = rt.with_tenant(TenantId(t as u64), |e| snapshot(e, item));
            let (want, want_errors) = reference;
            if jobs.is_empty() {
                prop_assert!(got.is_none(), "tenant {} never submitted", t);
                continue;
            }
            let got = got.expect("tenant has an engine");
            prop_assert_eq!(&got, &want, "tenant {} diverged under {:?}", t, scheduler);
            let (errors, _) = rt.tenant_errors(TenantId(t as u64)).unwrap();
            prop_assert_eq!(errors, want_errors, "tenant {} error count", t);
        }
    }

    /// Rules-layer core: the parallel probe phase leaves the rule table
    /// bit-identical to the sequential round at every block.
    #[test]
    fn parallel_check_round_equals_sequential(
        rule_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        blocks in 1usize..12,
        workers in 2usize..5,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 4,
            max_depth: 4,
            instance_prob: 0.5,
            negation_prob: 0.3,
            seed: rule_seed,
        });
        let mut rng = StdRng::seed_from_u64(stream_seed);
        let nrules = rng.random_range(4..12usize);
        let mut rt_seq = RuleTable::new();
        let mut rt_par = RuleTable::new();
        for i in 0..nrules {
            let expr = g.generate();
            rt_seq
                .define(TriggerDef::new(format!("r{i}"), expr.clone()), Timestamp::ZERO)
                .unwrap();
            rt_par
                .define(TriggerDef::new(format!("r{i}"), expr), Timestamp::ZERO)
                .unwrap();
        }
        let mut seq = TriggerSupport::optimized();
        let mut par = TriggerSupport::optimized().with_workers(workers);
        let mut eb_seq = EventBase::new();
        let mut eb_par = EventBase::new();
        for _ in 0..blocks {
            for _ in 0..rng.random_range(0..4usize) {
                let ty = EventType::external(ClassId(0), rng.random_range(0..4u32));
                let oid = Oid(rng.random_range(1..4u64));
                eb_seq.append(ty, oid);
                eb_par.append(ty, oid);
            }
            eb_seq.tick();
            eb_par.tick();
            let now = eb_seq.now();
            prop_assert_eq!(eb_par.now(), now);
            let newly_seq = seq.check(&mut rt_seq, &eb_seq, now);
            let newly_par = par.check(&mut rt_par, &eb_par, now);
            prop_assert_eq!(&newly_seq, &newly_par);
            for i in 0..nrules {
                let name = format!("r{i}");
                let a = rt_seq.state(&name).unwrap();
                let b = rt_par.state(&name).unwrap();
                prop_assert_eq!(
                    (a.triggered, a.witness, a.checked_upto, a.last_consideration, a.last_consumption),
                    (b.triggered, b.witness, b.checked_upto, b.last_consideration, b.last_consumption),
                    "rule {} diverged at {}", &name, now
                );
            }
            // consider every newly triggered rule on both sides so
            // consumption windows advance identically
            for name in newly_seq {
                rt_seq.mark_considered(&name, now).unwrap();
                rt_par.mark_considered(&name, now).unwrap();
            }
        }
        // identical probe decision totals (memoized or evaluated)
        prop_assert_eq!(
            seq.stats.ts_probes + seq.stats.probe_memo_hits,
            par.stats.ts_probes + par.stats.probe_memo_hits
        );
        prop_assert_eq!(seq.stats.rules_checked, par.stats.rules_checked);
        prop_assert_eq!(seq.stats.skipped_by_filter, par.stats.skipped_by_filter);
    }
}
