//! Naive baseline: linear-scan `ts` evaluation, no indexes, no `V(E)`.
//!
//! Semantically identical to `chimera_calculus::ts_logical` (asserted by
//! tests), but every primitive lookup scans the whole occurrence slice and
//! every trigger check re-probes every rule at every instant. This is the
//! "before" picture for the §5/§5.1 engineering.

use chimera_calculus::{EventExpr, TsVal};
use chimera_events::{EventOccurrence, EventType, Timestamp, Window};
use chimera_model::Oid;

/// `ts` over a plain occurrence slice (no indexes): the most recent
/// occurrence is found by scanning.
pub fn naive_ts(expr: &EventExpr, events: &[EventOccurrence], w: Window, t: Timestamp) -> TsVal {
    match expr {
        EventExpr::Prim(ty) => naive_prim(events, w, t, *ty),
        EventExpr::Not(e) => naive_ts(e, events, w, t).negate(),
        EventExpr::And(a, b) => {
            let ta = naive_ts(a, events, w, t);
            let tb = naive_ts(b, events, w, t);
            if ta.is_active() && tb.is_active() {
                ta.max(tb)
            } else {
                ta.min(tb)
            }
        }
        EventExpr::Or(a, b) => {
            let ta = naive_ts(a, events, w, t);
            let tb = naive_ts(b, events, w, t);
            if ta.is_active() || tb.is_active() {
                ta.max(tb)
            } else {
                ta.min(tb)
            }
        }
        EventExpr::Prec(a, b) => {
            let tb = naive_ts(b, events, w, t);
            match tb.activation() {
                Some(bs) => {
                    if naive_ts(a, events, w, bs).is_active() {
                        tb
                    } else {
                        TsVal::inactive(t)
                    }
                }
                None => TsVal::inactive(t),
            }
        }
        EventExpr::INot(inner) => {
            let max = objects(events, w, t)
                .into_iter()
                .map(|oid| naive_ots(inner, events, w, t, oid))
                .max();
            match max {
                Some(v) if v.is_active() => v.negate(),
                _ => TsVal::active(t),
            }
        }
        _ => objects(events, w, t)
            .into_iter()
            .map(|oid| naive_ots(expr, events, w, t, oid))
            .max()
            .unwrap_or(TsVal::inactive(t)),
    }
}

/// Per-object naive evaluation.
pub fn naive_ots(
    expr: &EventExpr,
    events: &[EventOccurrence],
    w: Window,
    t: Timestamp,
    oid: Oid,
) -> TsVal {
    match expr {
        EventExpr::Prim(ty) => {
            let mut last = None;
            for e in events {
                if e.ty == *ty && e.oid == oid && w.contains(e.ts) && e.ts <= t {
                    last = Some(e.ts);
                }
            }
            match last {
                Some(s) => TsVal::active(s),
                None => TsVal::inactive(t),
            }
        }
        EventExpr::INot(e) => naive_ots(e, events, w, t, oid).negate(),
        EventExpr::IAnd(a, b) => {
            let ta = naive_ots(a, events, w, t, oid);
            let tb = naive_ots(b, events, w, t, oid);
            if ta.is_active() && tb.is_active() {
                ta.max(tb)
            } else {
                ta.min(tb)
            }
        }
        EventExpr::IOr(a, b) => {
            let ta = naive_ots(a, events, w, t, oid);
            let tb = naive_ots(b, events, w, t, oid);
            if ta.is_active() || tb.is_active() {
                ta.max(tb)
            } else {
                ta.min(tb)
            }
        }
        EventExpr::IPrec(a, b) => {
            let tb = naive_ots(b, events, w, t, oid);
            match tb.activation() {
                Some(bs) => {
                    if naive_ots(a, events, w, bs, oid).is_active() {
                        tb
                    } else {
                        TsVal::inactive(t)
                    }
                }
                None => TsVal::inactive(t),
            }
        }
        _ => unreachable!("set operator below instance level"),
    }
}

fn naive_prim(events: &[EventOccurrence], w: Window, t: Timestamp, ty: EventType) -> TsVal {
    let mut last = None;
    for e in events {
        if e.ty == ty && w.contains(e.ts) && e.ts <= t {
            last = Some(e.ts);
        }
    }
    match last {
        Some(s) => TsVal::active(s),
        None => TsVal::inactive(t),
    }
}

fn objects(events: &[EventOccurrence], w: Window, t: Timestamp) -> Vec<Oid> {
    let mut oids: Vec<Oid> = events
        .iter()
        .filter(|e| w.contains(e.ts) && e.ts <= t)
        .map(|e| e.oid)
        .collect();
    oids.sort();
    oids.dedup();
    oids
}

/// A trigger checker that ignores every §5 optimization: on each check it
/// probes every rule at every instant of its whole window.
#[derive(Debug)]
pub struct NaiveTriggerChecker {
    rules: Vec<(EventExpr, NaiveRuleState)>,
}

#[derive(Debug, Clone)]
struct NaiveRuleState {
    triggered: bool,
    last_consideration: Timestamp,
}

impl NaiveTriggerChecker {
    /// Checker over a rule set (all starting at `t0`).
    pub fn new(exprs: Vec<EventExpr>, t0: Timestamp) -> Self {
        NaiveTriggerChecker {
            rules: exprs
                .into_iter()
                .map(|e| {
                    (
                        e,
                        NaiveRuleState {
                            triggered: false,
                            last_consideration: t0,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Full recheck of all rules against the complete occurrence slice.
    /// Returns the indexes of triggered rules.
    pub fn check(&mut self, events: &[EventOccurrence], now: Timestamp) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, (expr, st)) in self.rules.iter_mut().enumerate() {
            if st.triggered {
                out.push(i);
                continue;
            }
            let w = Window::new(st.last_consideration, now);
            let any = events.iter().any(|e| w.contains(e.ts));
            if !any {
                continue;
            }
            // probe every instant in the window (maximally naive)
            let mut t = Timestamp(st.last_consideration.raw() + 1);
            while t <= now {
                if naive_ts(expr, events, w, t).is_active() {
                    st.triggered = true;
                    out.push(i);
                    break;
                }
                t = t.next();
            }
        }
        out
    }

    /// Consider rule `i` at `now` (detrigger + consume).
    pub fn consider(&mut self, i: usize, now: Timestamp) {
        let st = &mut self.rules[i].1;
        st.triggered = false;
        st.last_consideration = now;
    }

    /// Is rule `i` triggered?
    pub fn is_triggered(&self, i: usize) -> bool {
        self.rules[i].1.triggered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::ts_logical;
    use chimera_events::EventBase;
    use chimera_model::ClassId;

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }

    fn history() -> EventBase {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(1), Oid(2), Timestamp(3));
        eb.append_at(et(0), Oid(2), Timestamp(4));
        eb.append_at(et(2), Oid(1), Timestamp(6));
        eb.append_at(et(1), Oid(1), Timestamp(8));
        eb
    }

    #[test]
    fn naive_ts_matches_indexed_ts() {
        let eb = history();
        let events: Vec<EventOccurrence> = eb.iter().copied().collect();
        let exprs = [
            p(0),
            p(0).not(),
            p(0).and(p(1)),
            p(0).or(p(2)).prec(p(1)),
            p(0).iand(p(1)),
            p(0).iprec(p(1)).inot(),
            p(0).iand(p(1).inot()),
        ];
        for after in [0u64, 2, 5] {
            let w = Window::new(Timestamp(after), Timestamp(8));
            for e in &exprs {
                for t in 1..=8 {
                    assert_eq!(
                        naive_ts(e, &events, w, Timestamp(t)),
                        ts_logical(e, &eb, w, Timestamp(t)),
                        "{e} at t{t} window after {after}"
                    );
                }
            }
        }
    }

    #[test]
    fn naive_checker_triggers_and_considers() {
        let eb = history();
        let events: Vec<EventOccurrence> = eb.iter().copied().collect();
        let mut nc = NaiveTriggerChecker::new(vec![p(0), p(9)], Timestamp::ZERO);
        let trig = nc.check(&events, Timestamp(8));
        assert_eq!(trig, vec![0]);
        assert!(nc.is_triggered(0));
        assert!(!nc.is_triggered(1));
        nc.consider(0, Timestamp(8));
        assert!(!nc.is_triggered(0));
        assert!(nc.check(&events, Timestamp(8)).is_empty());
    }

    #[test]
    fn naive_checker_matches_formal_predicate() {
        use chimera_rules::{is_triggered, RuleState, TriggerDef};
        let eb = history();
        let events: Vec<EventOccurrence> = eb.iter().copied().collect();
        let exprs = [p(0).and(p(1)), p(2).not(), p(0).prec(p(2))];
        for expr in exprs {
            let def = TriggerDef::new("r", expr.clone());
            let st = RuleState::new(&def, Timestamp::ZERO);
            let mut nc = NaiveTriggerChecker::new(vec![expr.clone()], Timestamp::ZERO);
            let naive = !nc.check(&events, eb.now()).is_empty();
            let formal = is_triggered(&def, &st, &eb, eb.now());
            assert_eq!(naive, formal, "{expr}");
        }
    }
}
