//! Random well-formed event expressions.
//!
//! Generation respects §3.2 well-formedness by construction: instance
//! sub-expressions are built from the instance-only grammar, so
//! `EventExpr::validate` always succeeds (asserted in tests). Used by the
//! property suites (evaluator agreement, algebraic laws, optimizer
//! equivalence) and by the operator benchmarks.

use chimera_calculus::EventExpr;
use chimera_events::EventType;
use chimera_model::ClassId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Expression-generator configuration.
#[derive(Debug, Clone)]
pub struct ExprGenConfig {
    /// Number of distinct primitive event types to draw from.
    pub event_types: u32,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Probability that a binary/unary node is instance-oriented.
    pub instance_prob: f64,
    /// Probability of generating a negation at a unary choice point.
    pub negation_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExprGenConfig {
    fn default() -> Self {
        ExprGenConfig {
            event_types: 6,
            max_depth: 4,
            instance_prob: 0.3,
            negation_prob: 0.2,
            seed: 42,
        }
    }
}

/// Seeded random expression generator.
#[derive(Debug)]
pub struct RandomExprGen {
    cfg: ExprGenConfig,
    rng: StdRng,
}

impl RandomExprGen {
    /// New generator.
    pub fn new(cfg: ExprGenConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        RandomExprGen { cfg, rng }
    }

    fn prim(&mut self) -> EventExpr {
        let n = self.rng.random_range(0..self.cfg.event_types);
        EventExpr::prim(EventType::external(ClassId(0), n))
    }

    /// One random well-formed expression.
    pub fn generate(&mut self) -> EventExpr {
        let depth = self.rng.random_range(1..=self.cfg.max_depth);
        self.set_expr(depth)
    }

    /// A batch of expressions.
    pub fn batch(&mut self, n: usize) -> Vec<EventExpr> {
        (0..n).map(|_| self.generate()).collect()
    }

    /// A purely instance-oriented expression (usable in event formulas).
    pub fn generate_instance(&mut self) -> EventExpr {
        let depth = self.rng.random_range(1..=self.cfg.max_depth);
        self.inst_expr(depth)
    }

    /// A negation-free set-oriented expression (the baselines' regular
    /// fragment).
    pub fn generate_regular(&mut self) -> EventExpr {
        let depth = self.rng.random_range(1..=self.cfg.max_depth);
        self.regular_expr(depth)
    }

    fn set_expr(&mut self, depth: usize) -> EventExpr {
        if depth <= 1 {
            return self.prim();
        }
        if self.rng.random_bool(self.cfg.instance_prob) {
            return self.inst_expr(depth);
        }
        if self.rng.random_bool(self.cfg.negation_prob) {
            return self.set_expr(depth - 1).not();
        }
        let a = self.set_expr(depth - 1);
        let b = self.set_expr(depth - 1);
        match self.rng.random_range(0..3) {
            0 => a.or(b),
            1 => a.and(b),
            _ => a.prec(b),
        }
    }

    fn inst_expr(&mut self, depth: usize) -> EventExpr {
        if depth <= 1 {
            return self.prim();
        }
        if self.rng.random_bool(self.cfg.negation_prob) {
            return self.inst_expr(depth - 1).inot();
        }
        let a = self.inst_expr(depth - 1);
        let b = self.inst_expr(depth - 1);
        match self.rng.random_range(0..3) {
            0 => a.ior(b),
            1 => a.iand(b),
            _ => a.iprec(b),
        }
    }

    fn regular_expr(&mut self, depth: usize) -> EventExpr {
        if depth <= 1 {
            return self.prim();
        }
        let a = self.regular_expr(depth - 1);
        let b = self.regular_expr(depth - 1);
        match self.rng.random_range(0..3) {
            0 => a.or(b),
            1 => a.and(b),
            _ => a.prec(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_expressions_are_well_formed() {
        let mut g = RandomExprGen::new(ExprGenConfig {
            max_depth: 6,
            instance_prob: 0.5,
            negation_prob: 0.4,
            ..Default::default()
        });
        for e in g.batch(200) {
            e.validate().unwrap_or_else(|err| panic!("{e}: {err}"));
        }
    }

    #[test]
    fn instance_expressions_are_instance_oriented() {
        let mut g = RandomExprGen::new(ExprGenConfig::default());
        for _ in 0..100 {
            let e = g.generate_instance();
            assert!(e.is_instance_oriented(), "{e}");
        }
    }

    #[test]
    fn regular_expressions_have_no_negation_or_instance_ops() {
        let mut g = RandomExprGen::new(ExprGenConfig::default());
        for _ in 0..100 {
            let e = g.generate_regular();
            assert!(!e.contains_negation(), "{e}");
            assert!(
                chimera_baselines_compatible(&e),
                "regular fragment only: {e}"
            );
        }
    }

    fn chimera_baselines_compatible(e: &EventExpr) -> bool {
        match e {
            EventExpr::Prim(_) => true,
            EventExpr::Or(a, b) | EventExpr::And(a, b) | EventExpr::Prec(a, b) => {
                chimera_baselines_compatible(a) && chimera_baselines_compatible(b)
            }
            _ => false,
        }
    }

    #[test]
    fn reproducible() {
        let mut a = RandomExprGen::new(ExprGenConfig::default());
        let mut b = RandomExprGen::new(ExprGenConfig::default());
        assert_eq!(a.batch(20), b.batch(20));
    }

    #[test]
    fn depth_bounded() {
        let mut g = RandomExprGen::new(ExprGenConfig {
            max_depth: 3,
            ..Default::default()
        });
        for _ in 0..100 {
            assert!(g.generate().depth() <= 3);
        }
    }
}
