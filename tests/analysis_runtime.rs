//! Integration: static analysis verdicts vs. actual engine behaviour.
//!
//! * An **acyclic** triggering graph guarantees cascades terminate — the
//!   engine must never hit its step limit on such rule sets.
//! * A flagged cycle is a *warning*: the `looper` rule really loops (hits
//!   the step limit), while `checkStockQty` is flagged (it listens on the
//!   attribute it writes) yet converges at runtime because its condition
//!   turns false after one firing — both outcomes are semantic, not
//!   analysable statically.

use chimera::analysis::{analyze, TerminationVerdict, TriggeringGraph};
use chimera::calculus::EventExpr;
use chimera::events::EventType;
use chimera::exec::{Engine, EngineConfig, Op};
use chimera::model::{AttrDef, AttrType, Schema, SchemaBuilder, Value};
use chimera::rules::{ActionStmt, Condition, Formula, Term, TriggerDef, VarDecl};
use chimera::workload::{stock_schema, stock_triggers};

fn chain_schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "c",
        None,
        vec![
            AttrDef::new("a", AttrType::Integer),
            AttrDef::new("b", AttrType::Integer),
            AttrDef::new("d", AttrType::Integer),
        ],
    )
    .unwrap();
    b.build()
}

/// Rule on `modify(c.listen)` writing `c.write` (unconditional).
fn link(name: &str, schema: &Schema, listen: &str, write: &str) -> TriggerDef {
    let c = schema.class_by_name("c").unwrap();
    let l = schema.attr_by_name(c, listen).unwrap();
    let mut def = TriggerDef::new(name, EventExpr::prim(EventType::modify(c, l)));
    def.condition = Condition {
        decls: vec![VarDecl {
            name: "V".into(),
            class: "c".into(),
        }],
        formulas: vec![Formula::Occurred {
            expr: EventExpr::prim(EventType::modify(c, l)),
            var: "V".into(),
        }],
    };
    def.actions = vec![ActionStmt::Modify {
        var: "V".into(),
        attr: write.into(),
        value: Term::int(1),
    }];
    def
}

#[test]
fn acyclic_chain_verdict_and_runtime_agree() {
    let schema = chain_schema();
    let defs = vec![link("r1", &schema, "a", "b"), link("r2", &schema, "b", "d")];
    let report = analyze(&defs, &schema).unwrap();
    assert!(report.termination.is_terminating());
    assert_eq!(report.max_cascade_depth, Some(2)); // longest path r1 → r2

    let c = schema.class_by_name("c").unwrap();
    let a = schema.attr_by_name(c, "a").unwrap();
    let mut engine = Engine::with_config(
        schema,
        EngineConfig {
            max_rule_steps: 16,
            ..EngineConfig::default()
        },
    );
    for d in defs {
        engine.define_trigger(d).unwrap();
    }
    engine.begin().unwrap();
    let oid = engine
        .exec_block(&[Op::Create {
            class: c,
            inits: vec![(a, Value::Int(0))],
        }])
        .unwrap()[0]
        .oid;
    engine
        .exec_block(&[Op::Modify {
            oid,
            attr: a,
            value: Value::Int(7),
        }])
        .unwrap();
    engine.commit().unwrap();
    // the cascade ran to the end of the chain and stopped
    assert_eq!(engine.read_attr(oid, "b").unwrap(), Value::Int(1));
    assert_eq!(engine.read_attr(oid, "d").unwrap(), Value::Int(1));
}

#[test]
fn flagged_self_loop_that_really_loops() {
    let schema = chain_schema();
    // listens on `a`, increments `a`: a true runtime loop.
    let c = schema.class_by_name("c").unwrap();
    let a = schema.attr_by_name(c, "a").unwrap();
    let mut looper = link("looper", &schema, "a", "a");
    looper.actions = vec![ActionStmt::Modify {
        var: "V".into(),
        attr: "a".into(),
        value: Term::Add(Box::new(Term::attr("V", "a")), Box::new(Term::int(1))),
    }];
    let defs = vec![looper];
    let report = analyze(&defs, &schema).unwrap();
    assert_eq!(
        report.termination,
        TerminationVerdict::MayLoop {
            cycles: vec![vec!["looper".into()]]
        }
    );

    let mut engine = Engine::with_config(
        schema,
        EngineConfig {
            max_rule_steps: 20,
            ..EngineConfig::default()
        },
    );
    for d in defs {
        engine.define_trigger(d).unwrap();
    }
    engine.begin().unwrap();
    let oid = engine
        .exec_block(&[Op::Create {
            class: c,
            inits: vec![(a, Value::Int(0))],
        }])
        .unwrap()[0]
        .oid;
    let err = engine
        .exec_block(&[Op::Modify {
            oid,
            attr: a,
            value: Value::Int(1),
        }])
        .unwrap_err();
    assert!(err.to_string().contains("exceeded 20 steps"), "{err}");
}

/// `checkStockQty` is flagged (writes the attribute it listens on) but
/// converges at runtime: its condition `quantity > max_quantity` is false
/// after the clamp. The verdict is conservative, exactly as documented.
#[test]
fn flagged_cycle_that_converges_at_runtime() {
    let schema = stock_schema();
    let defs = stock_triggers(&schema);
    let report = analyze(&defs, &schema).unwrap();
    let TerminationVerdict::MayLoop { cycles } = &report.termination else {
        panic!("expected a flagged cycle in the stock rule set");
    };
    assert!(cycles.iter().flatten().any(|r| r == "checkStockQty"));

    // runtime: converges well inside the limit.
    let stock = schema.class_by_name("stock").unwrap();
    let q = schema.attr_by_name(stock, "quantity").unwrap();
    let mut engine = Engine::with_config(
        schema,
        EngineConfig {
            max_rule_steps: 100,
            ..EngineConfig::default()
        },
    );
    for d in defs {
        engine.define_trigger(d).unwrap();
    }
    engine.begin().unwrap();
    let oid = engine
        .exec_block(&[Op::Create {
            class: stock,
            inits: vec![(q, Value::Int(5000))],
        }])
        .unwrap()[0]
        .oid;
    engine.commit().unwrap();
    assert_eq!(engine.read_attr(oid, "quantity").unwrap(), Value::Int(100));
}

/// The stock triggering graph has the edges the rule definitions imply.
#[test]
fn stock_graph_edges_match_definitions() {
    let schema = stock_schema();
    let defs = stock_triggers(&schema);
    let g = TriggeringGraph::build(&defs, &schema).unwrap();
    // checkStockQty writes stock.quantity → re-triggers itself and reorder
    assert!(g.has_edge("checkStockQty", "checkStockQty"));
    assert!(g.has_edge("checkStockQty", "reorder"));
    // restockWatch listens on modify(stock.quantity) inside its composite
    assert!(g.has_edge("checkStockQty", "restockWatch"));
    // reorder creates stockOrder: nobody listens on that
    assert!(!g.has_edge("reorder", "checkStockQty"));
    assert!(!g.has_edge("reorder", "reorder"));
    // restockWatch writes min_quantity: no listener
    assert!(!g.has_edge("restockWatch", "checkStockQty"));
}

/// Deleting the looping rule flips the verdict to terminating.
#[test]
fn verdict_improves_without_the_cycle() {
    let schema = stock_schema();
    let mut defs = stock_triggers(&schema);
    defs.retain(|d| d.name != "checkStockQty");
    let report = analyze(&defs, &schema).unwrap();
    assert!(report.termination.is_terminating(), "{}", report.termination);
    assert!(report.max_cascade_depth.is_some());
}
