//! The TCP front-end: accept connections, parse frames, drive the
//! shared [`Runtime`], stream per-job completions back.
//!
//! Each connection runs as a reader/writer thread pair (the runtime
//! underneath is the scaling layer — shard workers bound the actual
//! engine parallelism; connection threads mostly park in socket reads
//! and reply waits). The protocol is strictly ordered: one response per
//! request, in request order — but the *reader* submits every
//! [`Request::SubmitBlock`] through [`Runtime::submit_with_reply`]
//! without waiting, handing the per-job reply slot to the *writer*'s
//! bounded FIFO; the writer resolves slots in order and frames each
//! [`Response::JobDone`] — success summary, engine error, or panic
//! notice — as the shards retire the jobs. A client that pipelines
//! blocks across tenants therefore keeps all of its submissions in
//! flight across the shards, and still observes every job's outcome
//! without a flush anywhere.
//!
//! Error containment: a payload that fails to *decode* is answered with
//! [`Response::Error`] and the connection continues (frame boundaries
//! are still sound); a broken *frame* (oversized length prefix,
//! truncation) desynchronizes the stream, so the connection is dropped.
//! Neither path panics the server (fuzzed in `tests/loopback.rs`).

use crate::proto::{
    Request, Response, TenantQuery, TenantReply, TriggerOutcome, WireDurability, WireStats,
};
use crate::wire::{read_frame, write_frame, WireError, MAX_FRAME, PROTOCOL_VERSION};
use chimera_lang::{parse_trigger_decls, pretty::print_trigger};
use chimera_runtime::{Job, JobReply, Runtime, TenantId};
use chimera_telemetry::{Counter as TelCounter, Gauge, Stage, TraceKind};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Responses queued between a connection's reader and writer halves.
/// Larger than any sane client pipeline window (the bundled client uses
/// 32), so a cooperating client never blocks the reader on this bound.
const SERVER_PIPELINE: usize = 256;

/// Wake a `listener.incoming()` loop parked on `addr` by connecting to
/// it once. A wildcard bind (0.0.0.0 / ::) is not self-connectable, so
/// the connection targets loopback on the bound port instead; the
/// attempt is time-bounded so a non-connectable address degrades to a
/// delay, never a hang.
fn wake_accept_loop(addr: SocketAddr) {
    let mut target = addr;
    if target.ip().is_unspecified() {
        target.set_ip(match target {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect_timeout(&target, std::time::Duration::from_secs(1));
}

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Name announced in [`Response::HelloAck`].
    pub name: String,
    /// Per-frame payload bound for both directions.
    pub max_frame: usize,
    /// Accepted-connection cap: every connection holds a handler thread
    /// (reader + scoped writer), so an uncapped accept loop is an easy
    /// thread-exhaustion vector. A connection over the cap is answered
    /// with one typed [`Response::Busy`] frame and closed — never
    /// silently dropped.
    pub max_connections: usize,
    /// Bytes-in-flight cap per connection: the reader stops draining the
    /// socket while more than this many bytes of decoded-but-unanswered
    /// request payload are pending on the connection, resuming as the
    /// writer flushes responses. Without it a firehose client that
    /// pipelines faster than its jobs retire balloons server memory with
    /// decoded payloads parked in the writer queue; with it the excess
    /// stays in the socket's own (kernel-bounded) buffers and TCP
    /// backpressure reaches the client. One frame may overshoot the
    /// budget by its own length, so a single request larger than the cap
    /// still makes progress. `0` disables the cap. Throttle episodes are
    /// counted in the `Stats` reply (`net_reads_throttled`).
    pub max_bytes_in_flight: usize,
    /// Deadline for the *handshake*: a connection that has not delivered
    /// its `Hello` this long after being accepted is reaped (closed
    /// without an answer). Without it, an idle pre-handshake socket
    /// pins a handler thread forever — `max_connections` of them is a
    /// trivial denial of service against the connection cap.
    pub handshake_timeout: std::time::Duration,
    /// Idle deadline *after* the handshake: a connection whose next
    /// frame does not arrive within this window is reaped. `None`
    /// waits forever (the pre-version-4 behavior). Reaps of either kind
    /// are counted in the `Stats` reply (`net_conns_reaped`).
    pub read_timeout: Option<std::time::Duration>,
    /// Socket write deadline for responses: a peer that stops draining
    /// its receive window while completions are streaming out would
    /// otherwise park the writer in `write` forever. `None` waits
    /// forever.
    pub write_timeout: Option<std::time::Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            name: "chimera-net".into(),
            max_frame: MAX_FRAME,
            max_connections: 256,
            max_bytes_in_flight: 1 << 20,
            handshake_timeout: std::time::Duration::from_secs(10),
            read_timeout: Some(std::time::Duration::from_secs(120)),
            write_timeout: Some(std::time::Duration::from_secs(30)),
        }
    }
}

/// Server-wide wire-layer counters, spliced into `Stats` replies (the
/// runtime underneath knows nothing about the wire layer).
#[derive(Default)]
struct NetCounters {
    /// Reader throttle episodes under the bytes-in-flight cap.
    throttled: AtomicU64,
    /// Connections reaped on an expired handshake or idle deadline.
    reaped: AtomicU64,
}

/// A connection's undecoded/unanswered payload budget, shared between
/// its reader (adds on decode, waits at the cap) and writer (subtracts
/// after the matching response is flushed).
struct InFlight {
    bytes: Mutex<usize>,
    changed: Condvar,
}

impl InFlight {
    fn new() -> InFlight {
        InFlight {
            bytes: Mutex::new(0),
            changed: Condvar::new(),
        }
    }

    fn add(&self, cost: usize) {
        *self.bytes.lock().unwrap_or_else(PoisonError::into_inner) += cost;
    }

    fn sub(&self, cost: usize) {
        let mut bytes = self.bytes.lock().unwrap_or_else(PoisonError::into_inner);
        *bytes -= cost.min(*bytes);
        drop(bytes);
        self.changed.notify_all();
    }

    /// Park until the in-flight total is under `budget` (re-checking
    /// `stop` periodically — a server shutdown must not strand a reader
    /// here). Returns `false` if the server stopped while waiting.
    /// Counts one throttle episode into `throttled` if any waiting
    /// happened at all.
    fn wait_below(&self, budget: usize, stop: &AtomicBool, throttled: &AtomicU64) -> bool {
        let mut bytes = self.bytes.lock().unwrap_or_else(PoisonError::into_inner);
        if *bytes < budget {
            return true;
        }
        throttled.fetch_add(1, Ordering::Relaxed);
        while *bytes >= budget {
            if stop.load(Ordering::SeqCst) {
                return false;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(bytes, std::time::Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner);
            bytes = guard;
        }
        true
    }
}

/// A live connection's bookkeeping: the handler thread plus a clone of
/// its stream, kept so shutdown can close the socket out from under a
/// blocked read (a parked handler can't observe the stop flag).
struct Conn {
    handle: JoinHandle<()>,
    stream: TcpStream,
}

/// A running server: an accept-loop thread plus one handler thread per
/// live connection, all over one shared [`Runtime`].
pub struct Server {
    addr: SocketAddr,
    runtime: Arc<Runtime>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<Conn>>>,
}

impl Server {
    /// Bind and start serving `runtime` on `addr` (use port 0 for an
    /// ephemeral port; [`Server::local_addr`] reports the real one).
    pub fn bind(
        addr: impl ToSocketAddrs,
        runtime: Arc<Runtime>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<Conn>>> = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(NetCounters::default());
        let accept = {
            let runtime = Arc::clone(&runtime);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("chimera-net-accept".into())
                .spawn(move || {
                    // connection ids are handed out by the (single)
                    // accept thread; they key the telemetry traces and
                    // pick the recording shard for net-side series
                    let mut next_conn: u64 = 0;
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(mut stream) = stream else { continue };
                        let Ok(stream_clone) = stream.try_clone() else {
                            continue;
                        };
                        {
                            // the resource cap: reap finished handlers,
                            // then refuse with one typed Busy frame if
                            // the live count is still at the limit
                            let mut conns =
                                conns.lock().unwrap_or_else(PoisonError::into_inner);
                            conns.retain(|c| !c.handle.is_finished());
                            if conns.len() >= config.max_connections {
                                let busy = Response::Busy {
                                    active: conns.len() as u32,
                                    limit: config.max_connections as u32,
                                };
                                drop(conns);
                                let _ = write_frame(&mut stream, &busy.encode());
                                let _ = stream.shutdown(std::net::Shutdown::Both);
                                continue;
                            }
                        }
                        let conn_id = next_conn;
                        next_conn += 1;
                        {
                            let tel = runtime.telemetry();
                            tel.count(conn_id as usize, TelCounter::ConnsAccepted, 1);
                            tel.trace(conn_id as usize, TraceKind::ConnAccepted, conn_id, 0);
                            tel.gauge_add(Gauge::ConnsActive, 1);
                        }
                        let runtime = Arc::clone(&runtime);
                        let stop_conn = Arc::clone(&stop);
                        let counters_conn = Arc::clone(&counters);
                        let config = config.clone();
                        let handle = std::thread::Builder::new()
                            .name("chimera-net-conn".into())
                            .spawn(move || {
                                let done = stream.try_clone().ok();
                                let result = serve_conn(
                                    stream,
                                    conn_id,
                                    addr,
                                    &runtime,
                                    &config,
                                    &stop_conn,
                                    &counters_conn,
                                );
                                // classify the ending for the postmortem
                                // trace: reaped at a deadline, cut by a
                                // transport/framing error, or clean
                                let tel = runtime.telemetry();
                                match &result {
                                    Err(WireError::TimedOut) => {
                                        tel.count(conn_id as usize, TelCounter::ConnsReaped, 1);
                                        tel.trace(
                                            conn_id as usize,
                                            TraceKind::ConnReaped,
                                            conn_id,
                                            0,
                                        );
                                    }
                                    Err(_) => {
                                        tel.count(conn_id as usize, TelCounter::ConnsCut, 1);
                                        tel.trace(conn_id as usize, TraceKind::ConnCut, conn_id, 0);
                                    }
                                    Ok(()) => {}
                                }
                                tel.gauge_add(Gauge::ConnsActive, -1);
                                // actively close the TCP connection: the
                                // registry's clone would otherwise hold
                                // the socket open past the handler's
                                // death, and the peer would never see EOF
                                if let Some(s) = done {
                                    let _ = s.shutdown(std::net::Shutdown::Both);
                                }
                            })
                            .expect("spawn connection handler");
                        let mut conns = conns.lock().unwrap_or_else(PoisonError::into_inner);
                        conns.push(Conn {
                            handle,
                            stream: stream_clone,
                        });
                    }
                    // the stop flag is up (wire-side Shutdown or host
                    // shutdown): actively close every live connection so
                    // handlers parked in socket reads terminate now, not
                    // at the host's eventual join
                    let conns = conns.lock().unwrap_or_else(PoisonError::into_inner);
                    for conn in conns.iter() {
                        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                    }
                })
                .expect("spawn accept loop")
        };
        Ok(Server {
            addr,
            runtime,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (real port, also when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared runtime (the host can inspect tenants directly).
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// Has a wire-side [`Request::Shutdown`] (or a host-side
    /// [`Server::shutdown`]) stopped the accept loop?
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stop accepting, close down the handler threads, and join them.
    /// The runtime is left running (it belongs to the host).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // wake the accept loop with a throwaway connection
        wake_accept_loop(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let conns: Vec<Conn> = {
            let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
            conns.drain(..).collect()
        };
        for conn in &conns {
            // unblock a handler parked in a socket read; an already
            // closed peer makes this a no-op error
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        for conn in conns {
            let _ = conn.handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("stopped", &self.is_stopped())
            .finish_non_exhaustive()
    }
}

/// One ordered response slot of a connection's writer queue.
enum Out {
    /// A submitted job's completion path: the writer parks on the slot
    /// (FIFO, preserving response-per-request order) and sends the
    /// `JobDone` when the shard retires the job. Job id and tenant ride
    /// along so even a vanished worker gets a correlated reply.
    Job {
        job: u64,
        tenant: u64,
        rx: Receiver<JobReply>,
    },
    /// An already-computed response, boxed so the channel payload stays
    /// small next to the job-completion variant.
    Resp(Box<Response>),
}

/// One connection, split in two halves so pipelined submissions overlap
/// inside the runtime: the **reader** decodes requests and *submits*
/// jobs without waiting (their completion slots go into a bounded FIFO),
/// while the **writer** resolves that FIFO in order — parking on each
/// job's reply slot, then framing the `JobDone` — so a client that
/// pipelines N blocks across N tenants keeps N jobs in flight across
/// the shards instead of one. Response order remains exactly request
/// order. Returns when the peer closes cleanly, the stream
/// desynchronizes, or the server stops.
fn serve_conn(
    stream: TcpStream,
    conn: u64,
    server_addr: SocketAddr,
    runtime: &Runtime,
    config: &ServerConfig,
    stop: &AtomicBool,
    counters: &NetCounters,
) -> Result<(), WireError> {
    // deadlines are socket-level options, so setting them once on the
    // original stream covers both clones; reads and writes each consult
    // only their own deadline
    stream.set_write_timeout(config.write_timeout).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(WireError::from)?);
    let writer_stream = stream;
    let inflight = InFlight::new();
    let tel = runtime.telemetry().clone();
    std::thread::scope(|scope| {
        // each queued item carries its request's payload length (charged
        // against the connection's bytes-in-flight budget until the
        // response hits the wire) and the instant its frame finished
        // arriving (the connection-RTT histogram's start mark)
        let (out_tx, out_rx) = sync_channel::<(Out, usize, Option<std::time::Instant>)>(
            SERVER_PIPELINE,
        );
        let inflight = &inflight;
        let tel_writer = tel.clone();
        let writer = scope.spawn(move || -> Result<(), WireError> {
            let mut w = BufWriter::new(writer_stream);
            while let Ok((item, cost, read_at)) = out_rx.recv() {
                let resp = match item {
                    Out::Job { job, tenant, rx } => match rx.recv() {
                        Ok(reply) => Response::job_done(reply),
                        // the worker vanished mid-job (only a killed
                        // thread can do this); the job's fate is unknown
                        Err(_) => Response::JobDone {
                            job,
                            tenant,
                            outcome: crate::proto::WireOutcome::Error {
                                message: "shard worker is gone; job outcome unknown".into(),
                            },
                        },
                    },
                    Out::Resp(resp) => *resp,
                };
                let result = write_frame(&mut w, &resp.encode()).and_then(|()| {
                    w.flush()?;
                    Ok(())
                });
                // the request is answered: release its budget even on a
                // socket error, so the reader never strands at the cap
                inflight.sub(cost);
                // request fully read → response flushed, queue waits and
                // job execution included: the server's view of this
                // connection's round-trip time
                tel_writer.record_since(conn as usize, Stage::NetConnRtt, read_at);
                result?;
            }
            Ok(())
        });
        let read_result = read_loop(
            &mut reader,
            conn,
            runtime,
            config,
            stop,
            counters,
            inflight,
            &out_tx,
        );
        // closing the queue lets the writer drain what's pending (every
        // accepted job still gets its completion on the wire) and exit
        drop(out_tx);
        let write_result = writer.join().expect("connection writer panicked");
        if matches!(read_result, Ok(true)) {
            // this connection acked a wire-side Shutdown. Only now —
            // with the writer drained, so the ack (and every pending
            // completion) is on the wire — wake the accept loop, whose
            // exit sweep force-closes the live sockets
            wake_accept_loop(server_addr);
        }
        read_result.map(|_| ()).and(write_result)
    })
}

/// The reader half of [`serve_conn`]. A failed `send` into the writer
/// queue means the writer died on a socket error — the connection is
/// over, so the reader just leaves. `Ok(true)` means this connection
/// acked a wire-side Shutdown (the caller wakes the accept loop once
/// the ack is flushed).
#[allow(clippy::too_many_arguments)]
fn read_loop(
    reader: &mut BufReader<TcpStream>,
    conn: u64,
    runtime: &Runtime,
    config: &ServerConfig,
    stop: &AtomicBool,
    counters: &NetCounters,
    inflight: &InFlight,
    out: &SyncSender<(Out, usize, Option<std::time::Instant>)>,
) -> Result<bool, WireError> {
    let tel = runtime.telemetry();
    let worker = conn as usize;
    // the handshake gate: nothing but a version-matched Hello is served
    // until one has been seen, so the version check cannot be bypassed
    let mut greeted = false;
    let accepted_at = std::time::Instant::now();
    loop {
        // a wire-side Shutdown from *any* connection stops this one at
        // its next request (and the accept loop closes parked sockets)
        if stop.load(Ordering::SeqCst) {
            return Ok(false);
        }
        // the bytes-in-flight cap: stop draining the socket while too
        // much unanswered payload is already pending — the backlog then
        // accumulates in the kernel socket buffers and TCP pushes back
        // on the client instead of this process allocating for it
        if config.max_bytes_in_flight > 0
            && !inflight.wait_below(config.max_bytes_in_flight, stop, &counters.throttled)
        {
            return Ok(false);
        }
        // arm the socket deadline for this read: until the handshake
        // lands, whatever is left of the handshake window; after it, the
        // configured idle deadline
        let deadline = if greeted {
            config.read_timeout
        } else {
            match config.handshake_timeout.checked_sub(accepted_at.elapsed()) {
                Some(left) if !left.is_zero() => Some(left),
                // window already spent (slow-trickle peer): reap now
                _ => {
                    counters.reaped.fetch_add(1, Ordering::Relaxed);
                    return Err(WireError::TimedOut);
                }
            }
        };
        reader.get_ref().set_read_timeout(deadline).ok();
        let payload = match read_frame(reader, config.max_frame) {
            Ok(Some(p)) => p,
            // clean close between frames: the peer is done
            Ok(None) => return Ok(false),
            // deadline expired: the peer went quiet (possibly mid-frame,
            // so the stream position is unknowable) — reap without an
            // answer
            Err(WireError::TimedOut) => {
                counters.reaped.fetch_add(1, Ordering::Relaxed);
                return Err(WireError::TimedOut);
            }
            // broken framing: the stream position is unknowable, so
            // answer once and drop the connection
            Err(e) => {
                let _ = out.send((
                    Out::Resp(Box::new(Response::Error {
                        message: e.to_string(),
                    })),
                    0,
                    None,
                ));
                return Err(e);
            }
        };
        // the frame is fully in: the connection-RTT clock starts here
        // (one shared reading also serves as the decode stage's start)
        let read_at = tel.start();
        // charge the request's payload against the budget until its
        // response is flushed (the writer releases it)
        let cost = payload.len();
        inflight.add(cost);
        let req = Request::decode(&payload);
        tel.record_since(worker, Stage::NetFrameDecode, read_at);
        let req = match req {
            // a payload-level decode error leaves frame boundaries
            // intact: answer and keep serving (the handshake, if still
            // pending, stays pending)
            Err(e) => {
                let sent = out.send((
                    Out::Resp(Box::new(Response::Error {
                        message: e.to_string(),
                    })),
                    cost,
                    read_at,
                ));
                if sent.is_err() {
                    return Ok(false);
                }
                continue;
            }
            Ok(req) => req,
        };
        if !greeted && !matches!(req, Request::Hello { .. }) {
            let _ = out.send((
                Out::Resp(Box::new(Response::Error {
                    message: "handshake required: the first request must be Hello".into(),
                })),
                cost,
                read_at,
            ));
            return Ok(false);
        }
        match req {
            // the hot path: submit and move on — the writer delivers
            // the completion when the shard retires the job
            Request::SubmitBlock { tenant, job } => {
                let item = match runtime.submit_with_reply(TenantId(tenant), job.into_job())
                {
                    Ok((id, rx)) => Out::Job {
                        job: id.0,
                        tenant,
                        rx,
                    },
                    // a rejected submission (shed, worker gone) still
                    // gets a JobDone-shaped reply so pipelined clients
                    // keep exact submission↔completion accounting
                    Err(e) => Out::Resp(Box::new(Response::JobDone {
                        job: crate::proto::JOB_REJECTED,
                        tenant,
                        outcome: crate::proto::WireOutcome::Error {
                            message: e.to_string(),
                        },
                    })),
                };
                if out.send((item, cost, read_at)).is_err() {
                    return Ok(false);
                }
            }
            Request::Hello { .. } => {
                let resp = timed_handle(req, runtime, config, counters, worker);
                let rejected = matches!(resp, Response::Error { .. });
                let sent = out.send((Out::Resp(Box::new(resp)), cost, read_at));
                if rejected || sent.is_err() {
                    // a version-mismatched client must not keep talking:
                    // its frames would be misread under this version
                    return Ok(false);
                }
                greeted = true;
            }
            Request::Shutdown => {
                let resp = timed_handle(req, runtime, config, counters, worker);
                // only an acked shutdown stops the server: a failed
                // pre-shutdown flush is answered with Error and the
                // server keeps serving (no side effect behind an error)
                let acked = matches!(resp, Response::ShutdownAck);
                if acked {
                    // stop *before* the ack is on the wire, so a client
                    // that saw the ack observes a stopped server
                    stop.store(true, Ordering::SeqCst);
                }
                let sent = out.send((Out::Resp(Box::new(resp)), cost, read_at));
                if acked {
                    // the caller wakes the accept loop once the writer
                    // has flushed the ack (waking earlier would let the
                    // exit sweep close this socket under the ack)
                    return Ok(true);
                }
                if sent.is_err() {
                    return Ok(false);
                }
            }
            req => {
                let resp = timed_handle(req, runtime, config, counters, worker);
                let sent = out.send((Out::Resp(Box::new(resp)), cost, read_at));
                if sent.is_err() {
                    return Ok(false);
                }
            }
        }
    }
}

/// [`handle`] with its wall-clock cost recorded into the
/// [`Stage::NetHandler`] histogram (no clock read when telemetry is
/// off). The submit path is not routed through here — its cost is the
/// job's own pipeline, measured stage by stage on the runtime side.
fn timed_handle(
    req: Request,
    runtime: &Runtime,
    config: &ServerConfig,
    counters: &NetCounters,
    worker: usize,
) -> Response {
    let tel = runtime.telemetry();
    let started = tel.start();
    let resp = handle(req, runtime, config, counters);
    tel.record_since(worker, Stage::NetHandler, started);
    resp
}

/// Serve one decoded request. `counters` are the server-wide wire-layer
/// counts (throttle episodes, reaped connections), spliced into the
/// `Stats` reply (the runtime knows nothing about the wire layer).
fn handle(
    req: Request,
    runtime: &Runtime,
    config: &ServerConfig,
    counters: &NetCounters,
) -> Response {
    match req {
        Request::Hello {
            version,
            client: _,
            durability,
        } => {
            let provided = WireDurability::of_storage(runtime.storage());
            if version != PROTOCOL_VERSION {
                Response::Error {
                    message: format!(
                        "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                    ),
                }
            } else if durability.is_some_and(|required| required != provided) {
                Response::Error {
                    message: format!(
                        "durability mismatch: client requires {}, server provides {provided}",
                        durability.unwrap()
                    ),
                }
            } else {
                Response::HelloAck {
                    version: PROTOCOL_VERSION,
                    server: config.name.clone(),
                    shards: runtime.shard_count() as u32,
                    durability: Some(provided),
                }
            }
        }
        Request::DefineTriggers { tenant, source } => {
            define_triggers(runtime, TenantId(tenant), &source)
        }
        Request::SubmitBlock { tenant, job } => {
            submit_block(runtime, TenantId(tenant), job.into_job())
        }
        Request::Flush => match runtime.flush() {
            Ok(()) => Response::FlushDone,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Stats => {
            let mut stats = WireStats::from(runtime.stats());
            stats.net_reads_throttled = counters.throttled.load(Ordering::Relaxed);
            stats.net_conns_reaped = counters.reaped.load(Ordering::Relaxed);
            Response::StatsReply(stats)
        }
        Request::WithTenantQuery { tenant, query } => {
            Response::TenantReply(tenant_query(runtime, TenantId(tenant), query))
        }
        Request::MetricsSnapshot => Response::MetricsReply(runtime.telemetry().snapshot()),
        Request::Shutdown => match runtime.flush() {
            Ok(()) => Response::ShutdownAck,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
    }
}

/// Blocking fallback for a [`Request::SubmitBlock`] that reaches
/// [`handle`]: submit and park on the completion slot. The read loop
/// normally intercepts submissions before `handle` to pipeline them
/// through the writer queue; this path keeps `handle` total.
fn submit_block(runtime: &Runtime, tenant: TenantId, job: Job) -> Response {
    match runtime.submit_with_reply(tenant, job) {
        Err(e) => Response::JobDone {
            job: crate::proto::JOB_REJECTED,
            tenant: tenant.0,
            outcome: crate::proto::WireOutcome::Error {
                message: e.to_string(),
            },
        },
        Ok((id, rx)) => match rx.recv() {
            Ok(reply) => Response::job_done(reply),
            // the worker vanished mid-job (only a killed thread can do
            // this); the job's fate is unknown
            Err(_) => Response::JobDone {
                job: id.0,
                tenant: tenant.0,
                outcome: crate::proto::WireOutcome::Error {
                    message: "shard worker is gone; job outcome unknown".into(),
                },
            },
        },
    }
}

/// Parse `define trigger` source against the runtime schema and install
/// each declaration on the tenant's engine, waiting for every definition
/// to be applied. Every declaration is attempted and gets its own
/// [`TriggerOutcome`] — a failed one no longer hides the rest (only a
/// source that fails to *parse* is answered with [`Response::Error`],
/// since no declarations exist to report on). Each declaration travels
/// as [`Job::DefineTriggerSource`] — its pretty-printed source text —
/// so a durable runtime logs it replayably.
fn define_triggers(runtime: &Runtime, tenant: TenantId, source: &str) -> Response {
    let decls = match parse_trigger_decls(source, runtime.schema()) {
        Ok(d) => d,
        Err(e) => {
            return Response::Error {
                message: format!("trigger parse error: {e}"),
            }
        }
    };
    let mut outcomes = Vec::with_capacity(decls.len());
    for decl in &decls {
        let src = print_trigger(decl, runtime.schema());
        let submitted = runtime.submit_with_reply(tenant, Job::DefineTriggerSource(src));
        let outcome = match submitted {
            Ok((_, rx)) => rx.recv().map_err(|_| "shard worker is gone".to_string()),
            Err(e) => Err(e.to_string()),
        };
        let error = match outcome {
            Ok(reply) if reply.outcome.is_done() => None,
            Ok(reply) => Some(format!("rejected: {:?}", reply.outcome)),
            Err(message) => Some(message),
        };
        outcomes.push(TriggerOutcome {
            name: decl.name.clone(),
            error,
        });
    }
    Response::TriggersDefined { outcomes }
}

/// Read one tenant engine through [`Runtime::with_tenant`].
fn tenant_query(runtime: &Runtime, tenant: TenantId, query: TenantQuery) -> TenantReply {
    match query {
        TenantQuery::Extent { class } => runtime
            .with_tenant(tenant, |e| {
                let mut oids: Vec<u64> =
                    e.extent(chimera_model::ClassId(class)).iter().map(|o| o.0).collect();
                oids.sort_unstable();
                TenantReply::Extent(oids)
            })
            .unwrap_or(TenantReply::NoSuchTenant),
        TenantQuery::EventLogLen => runtime
            .with_tenant(tenant, |e| {
                TenantReply::EventLogLen(e.event_base().len() as u64)
            })
            .unwrap_or(TenantReply::NoSuchTenant),
        TenantQuery::Errors => runtime
            .tenant_errors(tenant)
            .map(|(count, last)| TenantReply::Errors { count, last })
            .unwrap_or(TenantReply::NoSuchTenant),
        TenantQuery::EngineStats => runtime
            .with_tenant(tenant, |e| {
                let s = e.stats();
                TenantReply::EngineStats {
                    blocks: s.blocks,
                    events: s.events,
                    considerations: s.considerations,
                    executions: s.executions,
                    commits: s.commits,
                    rollbacks: s.rollbacks,
                }
            })
            .unwrap_or(TenantReply::NoSuchTenant),
    }
}
