//! The blocking client: a handshaked TCP connection with request
//! pipelining for submissions.
//!
//! Responses arrive in strict request order (the server guarantees one
//! response per request), so the client keeps a count of outstanding
//! [`Request::SubmitBlock`]s: [`Client::submit`] fires without waiting
//! (bounded by [`PIPELINE_WINDOW`] — the oldest completion is drained
//! when the window fills), [`Client::drain`] collects every outstanding
//! completion, and the synchronous calls (`stats`, `flush`, queries)
//! drain first so their response is the next frame on the stream.

use crate::proto::{
    Request, Response, TenantQuery, TenantReply, TriggerOutcome, WireDurability, WireJob,
    WireStats,
};
use crate::wire::{read_frame, write_frame, WireError, MAX_FRAME, PROTOCOL_VERSION};
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Outstanding pipelined submissions before [`Client::submit`] drains
/// the oldest completion. Keeps the socket's send buffer comfortably
/// unfilled (requests are small) so a non-reading writer cannot
/// deadlock against a non-writing reader.
pub const PIPELINE_WINDOW: usize = 32;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Transport/codec failure.
    Wire(WireError),
    /// The server answered [`Response::Error`].
    Remote(String),
    /// The server answered, but with the wrong response kind.
    Unexpected(String),
    /// The server closed the connection mid-conversation.
    Closed,
    /// The server refused the connection: its accepted-connection cap
    /// is reached. Retry later — nothing about the request was wrong.
    Busy {
        /// Connections the server had accepted.
        active: u32,
        /// The server's connection cap.
        limit: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "{e}"),
            NetError::Remote(msg) => write!(f, "server error: {msg}"),
            NetError::Unexpected(what) => write!(f, "unexpected response: {what}"),
            NetError::Closed => write!(f, "server closed the connection"),
            NetError::Busy { active, limit } => {
                write!(f, "server busy: {active} of {limit} connections in use")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Wire(WireError::from(e))
    }
}

/// One job's completion, as the client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobDone {
    /// Runtime-wide job id.
    pub job: u64,
    /// The tenant the job ran for.
    pub tenant: u64,
    /// How it ended.
    pub outcome: crate::proto::WireOutcome,
}

/// A blocking protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: usize,
    /// Outstanding SubmitBlock requests whose JobDone is still unread
    /// from the socket.
    pending: usize,
    /// Completions read off the socket (to unblock a synchronous call)
    /// but not yet delivered to the caller. No completion is ever
    /// silently dropped: [`Client::recv_job_done`] and
    /// [`Client::drain`] serve these first, oldest first.
    buffered: std::collections::VecDeque<JobDone>,
    server: String,
    shards: u32,
    durability: Option<WireDurability>,
}

impl Client {
    /// Connect and handshake with the default frame bound.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        Client::connect_with(addr, "chimera-client", MAX_FRAME)
    }

    /// Connect, announcing `name`, with an explicit frame bound.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        name: &str,
        max_frame: usize,
    ) -> Result<Client, NetError> {
        Client::handshake(addr, name, max_frame, None)
    }

    /// Connect, *requiring* a durability level: the handshake fails with
    /// [`NetError::Remote`] unless the server's runtime provides exactly
    /// `durability` (a client about to stream irreplaceable events can
    /// insist on group commit before sending anything).
    pub fn connect_requiring(
        addr: impl ToSocketAddrs,
        name: &str,
        durability: WireDurability,
    ) -> Result<Client, NetError> {
        Client::handshake(addr, name, MAX_FRAME, Some(durability))
    }

    fn handshake(
        addr: impl ToSocketAddrs,
        name: &str,
        max_frame: usize,
        durability: Option<WireDurability>,
    ) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            max_frame,
            pending: 0,
            buffered: std::collections::VecDeque::new(),
            server: String::new(),
            shards: 0,
            durability: None,
        };
        let resp = client.call(Request::Hello {
            version: PROTOCOL_VERSION,
            client: name.into(),
            durability,
        })?;
        match resp {
            Response::HelloAck {
                server,
                shards,
                durability,
                ..
            } => {
                client.server = server;
                client.shards = shards;
                client.durability = durability;
                Ok(client)
            }
            Response::Busy { active, limit } => Err(NetError::Busy { active, limit }),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The server's announced name.
    pub fn server_name(&self) -> &str {
        &self.server
    }

    /// The server runtime's shard count.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The durability level the server announced in its ack (`None`
    /// only when talking to a version-1 server that predates it).
    pub fn server_durability(&self) -> Option<WireDurability> {
        self.durability
    }

    /// Completions not yet delivered to the caller (unread from the
    /// socket plus buffered by a synchronous call).
    pub fn outstanding(&self) -> usize {
        self.pending + self.buffered.len()
    }

    // ------------------------------------------------------- raw plumbing

    fn send(&mut self, req: &Request) -> Result<(), NetError> {
        write_frame(&mut self.writer, &req.encode())?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, NetError> {
        let payload = read_frame(&mut self.reader, self.max_frame)?.ok_or(NetError::Closed)?;
        Ok(Response::decode(&payload)?)
    }

    /// Send one request and read *its* response. Outstanding completions
    /// are read off the socket first (stream order) and buffered for the
    /// caller to collect later — never dropped.
    fn call(&mut self, req: Request) -> Result<Response, NetError> {
        while self.pending > 0 {
            let done = self.recv_job_done_raw()?;
            self.buffered.push_back(done);
        }
        self.send(&req)?;
        self.recv()
    }

    // -------------------------------------------------------- submissions

    /// Pipeline one job: fire the request without waiting for its
    /// completion. When [`PIPELINE_WINDOW`] submissions are in flight,
    /// the oldest completion is drained (and returned) to make room.
    pub fn submit(
        &mut self,
        tenant: u64,
        job: WireJob,
    ) -> Result<Option<JobDone>, NetError> {
        let drained = if self.pending >= PIPELINE_WINDOW {
            // read one off the socket to shrink the in-flight window,
            // and hand the caller the *oldest* undelivered completion
            let done = self.recv_job_done_raw()?;
            self.buffered.push_back(done);
            self.buffered.pop_front()
        } else {
            None
        };
        self.send(&Request::SubmitBlock { tenant, job })?;
        self.pending += 1;
        Ok(drained)
    }

    /// Submit one job and wait for its completion. Any older buffered
    /// completions stay buffered (collect them with [`Client::drain`]).
    pub fn submit_wait(&mut self, tenant: u64, job: WireJob) -> Result<JobDone, NetError> {
        while self.pending > 0 {
            let done = self.recv_job_done_raw()?;
            self.buffered.push_back(done);
        }
        self.send(&Request::SubmitBlock { tenant, job })?;
        self.pending += 1;
        self.recv_job_done_raw()
    }

    /// Read one completion off the socket.
    fn recv_job_done_raw(&mut self) -> Result<JobDone, NetError> {
        debug_assert!(self.pending > 0, "no submission outstanding");
        let resp = self.recv()?;
        self.pending -= 1;
        match resp {
            Response::JobDone {
                job,
                tenant,
                outcome,
            } => Ok(JobDone {
                job,
                tenant,
                outcome,
            }),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The oldest outstanding completion: buffered first, then the
    /// socket. Errs immediately if nothing is outstanding (a blocking
    /// read would otherwise hang forever on a server with nothing to
    /// say).
    pub fn recv_job_done(&mut self) -> Result<JobDone, NetError> {
        if let Some(done) = self.buffered.pop_front() {
            return Ok(done);
        }
        if self.pending == 0 {
            return Err(NetError::Unexpected(
                "no submission outstanding: nothing to receive".into(),
            ));
        }
        self.recv_job_done_raw()
    }

    /// Drain every outstanding completion, oldest first.
    pub fn drain(&mut self) -> Result<Vec<JobDone>, NetError> {
        let mut done = Vec::with_capacity(self.outstanding());
        while self.outstanding() > 0 {
            done.push(self.recv_job_done()?);
        }
        Ok(done)
    }

    // ---------------------------------------------- job conveniences

    /// `submit(tenant, WireJob::Begin)`.
    pub fn begin(&mut self, tenant: u64) -> Result<Option<JobDone>, NetError> {
        self.submit(tenant, WireJob::Begin)
    }
    /// `submit(tenant, WireJob::ExecBlock(ops))`.
    pub fn exec_block(
        &mut self,
        tenant: u64,
        ops: Vec<crate::proto::WireOp>,
    ) -> Result<Option<JobDone>, NetError> {
        self.submit(tenant, WireJob::ExecBlock(ops))
    }
    /// `submit(tenant, WireJob::RaiseExternal(events))`.
    pub fn raise_external(
        &mut self,
        tenant: u64,
        events: Vec<crate::proto::ExternalEvent>,
    ) -> Result<Option<JobDone>, NetError> {
        self.submit(tenant, WireJob::RaiseExternal(events))
    }
    /// `submit(tenant, WireJob::Commit)`.
    pub fn commit(&mut self, tenant: u64) -> Result<Option<JobDone>, NetError> {
        self.submit(tenant, WireJob::Commit)
    }
    /// `submit(tenant, WireJob::Rollback)`.
    pub fn rollback(&mut self, tenant: u64) -> Result<Option<JobDone>, NetError> {
        self.submit(tenant, WireJob::Rollback)
    }

    // --------------------------------------------------- synchronous calls

    /// Install tenant-local triggers from `define trigger` source text.
    /// Every declaration in the source is attempted; the returned
    /// outcomes (one per declaration, in source order) say which were
    /// installed and why the others were refused. `Err` is reserved for
    /// transport failures and unparseable source.
    pub fn define_triggers(
        &mut self,
        tenant: u64,
        source: &str,
    ) -> Result<Vec<TriggerOutcome>, NetError> {
        match self.call(Request::DefineTriggers {
            tenant,
            source: source.into(),
        })? {
            Response::TriggersDefined { outcomes } => Ok(outcomes),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Runtime-wide flush barrier.
    pub fn flush(&mut self) -> Result<(), NetError> {
        match self.call(Request::Flush)? {
            Response::FlushDone => Ok(()),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Aggregate runtime stats.
    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        match self.call(Request::Stats)? {
            Response::StatsReply(s) => Ok(s),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Inspect one tenant's engine.
    pub fn tenant_query(
        &mut self,
        tenant: u64,
        query: TenantQuery,
    ) -> Result<TenantReply, NetError> {
        match self.call(Request::WithTenantQuery { tenant, query })? {
            Response::TenantReply(reply) => Ok(reply),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to stop (flushes the runtime first). The
    /// connection is closed by the server afterwards.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        match self.call(Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("server", &self.server)
            .field("shards", &self.shards)
            .field("pending", &self.pending)
            .finish_non_exhaustive()
    }
}
