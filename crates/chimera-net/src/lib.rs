//! # chimera-net
//!
//! A framed wire protocol and TCP server/client front-end over the
//! multi-tenant [`chimera_runtime::Runtime`].
//!
//! The paper's §5 execution architecture places the detector *inside*
//! the database transaction; this workspace's north star points the
//! other way — composite-event detection as a service under heavy
//! external traffic. PR 4's sharded runtime made the engine
//! multi-tenant but only reachable in-process, with fire-and-forget
//! jobs. This crate closes the client/server gap:
//!
//! * **[`wire`]** — length-prefixed binary framing and primitives,
//!   hand-rolled on `std::net` (no crates.io in the build container;
//!   the no-serde decision is documented in `chimera-persist`). Bounded
//!   frames, typed errors, no panics on garbage input.
//! * **[`proto`]** — the request/response vocabulary: `Hello`,
//!   `DefineTriggers` (concrete §2–§3 trigger syntax parsed server-side
//!   through `chimera-lang`), `SubmitBlock`, `Flush`, `Stats`,
//!   `WithTenantQuery`, `Shutdown`; answered by `HelloAck`, per-job
//!   `JobDone` completions carrying trigger-firing summaries, stats and
//!   tenant-inspection replies.
//! * **[`server`]** — a multi-threaded acceptor driving one shared
//!   `Runtime`: per-connection handler threads parse frames, submit
//!   through the runtime's per-job completion path
//!   (`Runtime::submit_with_reply`), and stream every job's outcome
//!   back in request order. No flush-and-poll anywhere. The accepted
//!   connection count is capped ([`ServerConfig::max_connections`]);
//!   a connection over the cap gets one typed [`Response::Busy`] frame.
//!
//! Protocol version 2 surfaces the runtime's durable-storage layer:
//! the handshake negotiates a [`WireDurability`] level (a client can
//! *require* group commit via [`Client::connect_requiring`]), `Stats`
//! reports the WAL/snapshot/recovery counters, and `DefineTriggers` is
//! answered with one [`TriggerOutcome`] per declaration instead of
//! failing the whole batch on the first bad one. Version 3 surfaces the
//! runtime's load-aware scheduler — `Stats` gains `steals`,
//! `ready_queue_depth` and the per-home-shard [`WireShardStats`]
//! breakdown (so hot-tenant skew is observable over the wire), plus
//! `net_reads_throttled`, the count of reader throttle episodes under
//! the per-connection bytes-in-flight cap
//! ([`ServerConfig::max_bytes_in_flight`]) that keeps a firehose client
//! from ballooning server memory. All of it rides in optional trailing
//! fields, so version-2 frames stay decodable. Version 4 is the
//! robustness layer: server-side handshake/idle/write deadlines
//! (`ServerConfig::handshake_timeout`, `read_timeout`, `write_timeout`,
//! with reaped connections counted in `net_conns_reaped`), the typed
//! degraded-durability outcome [`WireOutcome::RefusedDurability`], and
//! client-side reconnect ([`ClientConfig`], [`ReconnectPolicy`]): a
//! lost connection resolves every in-flight submission as a typed
//! [`WireOutcome::Disconnected`] completion (at-most-once, explicit
//! loss — never a hang, never a silent drop) before redialing with
//! backoff + jitter and replaying the session's trigger definitions.
//! The new stats again ride as optional trailing fields. Version 5 is
//! the telemetry layer: [`Request::MetricsSnapshot`] returns the server
//! runtime's full [`chimera_telemetry`] registry — counters, gauges,
//! the log₂-bucketed stage latency histograms (buckets included, so a
//! poller can merge or re-quantile them), and the drained postmortem
//! trace tail — as a [`Response::MetricsReply`]. The server also feeds
//! the shared recorder itself: per-frame decode and handler timings,
//! per-connection round-trip latency, accept/reap/cut traces and the
//! live connection gauge. The client keeps its own always-on local
//! recorder of synchronous request latency ([`Client::telemetry`]). No
//! existing message's encoding changed, so version-4 frames decode
//! byte-for-byte under version 5.
//! * **[`client`]** — a blocking client with submission pipelining,
//!   used by the examples, the loopback bench (`benches/net.rs`) and
//!   the network equivalence suite.
//!
//! The correctness bar is the house style: traffic through the server
//! is **observationally identical** to the same blocks replayed on an
//! in-process sequential `Engine`, tenant by tenant —
//! `tests/net_equivalence.rs` (facade level) proves it with concurrent
//! TCP clients against the per-tenant sequential oracle.

pub mod client;
pub mod proto;
pub mod server;
pub mod wire;

pub use client::{Client, ClientConfig, JobDone, NetError, ReconnectPolicy, PIPELINE_WINDOW};
pub use chimera_telemetry::MetricsSnapshot;
pub use proto::{
    ExternalEvent, Request, Response, TenantQuery, TenantReply, TriggerOutcome, WireDurability,
    WireJob, WireOp, WireOutcome, WireShardStats, WireStats, JOB_DISCONNECTED, JOB_REJECTED,
};
pub use server::{Server, ServerConfig};
pub use wire::{read_frame, write_frame, WireError, MAX_FRAME, PROTOCOL_VERSION};

/// Compile-time `Send`/`Sync` audit of what crosses the server's thread
/// boundaries.
#[allow(dead_code)]
const fn assert_send<T: Send>() {}
#[allow(dead_code)]
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send::<Server>();
    assert_send::<Client>();
    assert_send::<Request>();
    assert_send::<Response>();
    assert_send_sync::<ServerConfig>();
};
