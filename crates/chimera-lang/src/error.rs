//! Parse errors with positions.

use crate::token::Span;
use std::fmt;

/// A lexing or parsing error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message ("expected X, found Y").
    pub message: String,
    /// Where it happened.
    pub span: Span,
}

impl ParseError {
    /// New error at a span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(
            "expected `end`",
            Span {
                start: 0,
                end: 1,
                line: 2,
                col: 5,
            },
        );
        assert_eq!(e.to_string(), "parse error at 2:5: expected `end`");
    }
}
