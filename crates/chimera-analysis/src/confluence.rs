//! Confluence warnings: unordered rules whose interleaving is observable.
//!
//! Chimera makes rule selection deterministic by totalizing the priority
//! order with definition order, but the *semantics* the user wrote down is
//! only a partial order. Two rules at the **same priority** that can be
//! triggered together and whose actions conflict can produce different
//! final states under the two tie-breakings — the classic confluence
//! criterion (commutativity of rule pairs). This module reports such pairs
//! so the user can either order them or confirm the ambiguity is benign.
//!
//! Conflict test (conservative): the write sets of the two rules overlap —
//! a write/write on the same `(class, attr)` slot over intersecting class
//! extents, or a delete/migration against any write touching the same
//! extent.

use crate::listens::TriggerSensitivity;
use crate::Result;
use chimera_model::{AttrId, ClassId, Schema};
use chimera_rules::{ActionStmt, TriggerDef};
use std::collections::BTreeSet;
use std::fmt;

/// What a rule's actions write, at class granularity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteSet {
    /// `(class, attr)` slots assigned by `modify` (descendants expanded).
    pub modifies: BTreeSet<(ClassId, AttrId)>,
    /// Classes whose population changes (create/delete/migrations,
    /// descendants expanded for deletes and migrations).
    pub population: BTreeSet<ClassId>,
}

impl WriteSet {
    /// Compute the write set of a rule's actions.
    pub fn of(def: &TriggerDef, schema: &Schema) -> Result<Self> {
        let mut ws = WriteSet::default();
        let var_class = |var: &str| -> Result<ClassId> {
            let decl = def
                .condition
                .decls
                .iter()
                .find(|d| d.name == var)
                .ok_or_else(|| {
                    chimera_model::ModelError::UnknownClass(format!(
                        "<undeclared variable {var}>"
                    ))
                })?;
            schema.class_by_name(&decl.class)
        };
        for stmt in &def.actions {
            match stmt {
                ActionStmt::Create { class, .. } => {
                    ws.population.insert(schema.class_by_name(class)?);
                }
                ActionStmt::Modify { var, attr, .. } => {
                    let declared = var_class(var)?;
                    for c in schema.descendants(declared) {
                        ws.modifies.insert((c, schema.attr_by_name(c, attr)?));
                    }
                }
                ActionStmt::Delete { var } => {
                    let declared = var_class(var)?;
                    ws.population.extend(schema.descendants(declared));
                }
                ActionStmt::Specialize { var, target } | ActionStmt::Generalize { var, target } => {
                    let declared = var_class(var)?;
                    ws.population.extend(schema.descendants(declared));
                    ws.population.insert(schema.class_by_name(target)?);
                }
            }
        }
        Ok(ws)
    }

    /// Do two write sets conflict?
    ///
    /// * write/write: a shared `(class, attr)` slot;
    /// * population/write: one rule changes the population of a class the
    ///   other modifies attributes on (the modified object may be created,
    ///   deleted or migrated from under the modifier).
    pub fn conflicts_with(&self, other: &WriteSet) -> bool {
        if self.modifies.intersection(&other.modifies).next().is_some() {
            return true;
        }
        let touches = |pop: &BTreeSet<ClassId>, mods: &BTreeSet<(ClassId, AttrId)>| {
            mods.iter().any(|(c, _)| pop.contains(c))
        };
        touches(&self.population, &other.modifies)
            || touches(&other.population, &self.modifies)
            || self
                .population
                .intersection(&other.population)
                .next()
                .is_some()
    }
}

/// A reported confluence hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfluenceWarning {
    /// First rule (definition order).
    pub first: String,
    /// Second rule.
    pub second: String,
    /// Shared priority the tie-break decides.
    pub priority: i32,
}

impl fmt::Display for ConfluenceWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rules `{}` and `{}` share priority {} and have conflicting writes; \
             the final state depends on the tie-break",
            self.first, self.second, self.priority
        )
    }
}

/// Report all unordered conflicting pairs among `defs`.
///
/// A pair qualifies when (i) the rules have equal priority, (ii) a common
/// event type can trigger both in the same reaction round, and (iii) their
/// write sets conflict.
pub fn confluence_warnings(defs: &[TriggerDef], schema: &Schema) -> Result<Vec<ConfluenceWarning>> {
    let sens: Vec<TriggerSensitivity> =
        defs.iter().map(|d| TriggerSensitivity::new(&d.events)).collect();
    let writes: Vec<WriteSet> = defs
        .iter()
        .map(|d| WriteSet::of(d, schema))
        .collect::<Result<_>>()?;
    // the event universe that can co-trigger two rules: every specific
    // listen type plus every effect type (cascade arrivals).
    let mut universe: BTreeSet<chimera_events::EventType> = BTreeSet::new();
    for (i, d) in defs.iter().enumerate() {
        universe.extend(sens[i].specific_types().iter().copied());
        universe.extend(crate::action_effects(d, schema)?);
    }
    let co_triggerable = |i: usize, j: usize| {
        if sens[i].is_universal() && sens[j].is_universal() {
            return true;
        }
        universe
            .iter()
            .any(|ty| sens[i].may_trigger_on(*ty) && sens[j].may_trigger_on(*ty))
    };
    let mut out = Vec::new();
    for i in 0..defs.len() {
        for j in i + 1..defs.len() {
            if defs[i].priority != defs[j].priority {
                continue;
            }
            if !co_triggerable(i, j) {
                continue;
            }
            if writes[i].conflicts_with(&writes[j]) {
                out.push(ConfluenceWarning {
                    first: defs[i].name.clone(),
                    second: defs[j].name.clone(),
                    priority: defs[i].priority,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::EventExpr;
    use chimera_events::EventType;
    use chimera_model::{AttrDef, AttrType, SchemaBuilder};
    use chimera_rules::{Condition, Term, VarDecl};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class(
            "c",
            None,
            vec![
                AttrDef::new("x", AttrType::Integer),
                AttrDef::new("y", AttrType::Integer),
            ],
        )
        .unwrap();
        b.class("d", Some("c"), vec![]).unwrap();
        b.build()
    }

    fn writer(name: &str, schema: &Schema, attr: &str, priority: i32) -> TriggerDef {
        let c = schema.class_by_name("c").unwrap();
        let mut def = TriggerDef::new(name, EventExpr::prim(EventType::create(c)));
        def.priority = priority;
        def.condition = Condition {
            decls: vec![VarDecl {
                name: "V".into(),
                class: "c".into(),
            }],
            formulas: vec![],
        };
        def.actions = vec![ActionStmt::Modify {
            var: "V".into(),
            attr: attr.into(),
            value: Term::int(1),
        }];
        def
    }

    #[test]
    fn same_slot_same_priority_warns() {
        let s = schema();
        let defs = vec![writer("a", &s, "x", 0), writer("b", &s, "x", 0)];
        let warns = confluence_warnings(&defs, &s).unwrap();
        assert_eq!(warns.len(), 1);
        assert_eq!(warns[0].first, "a");
        assert_eq!(warns[0].second, "b");
        assert!(warns[0].to_string().contains("tie-break"));
    }

    #[test]
    fn distinct_priorities_are_ordered() {
        let s = schema();
        let defs = vec![writer("a", &s, "x", 1), writer("b", &s, "x", 0)];
        assert!(confluence_warnings(&defs, &s).unwrap().is_empty());
    }

    #[test]
    fn disjoint_slots_commute() {
        let s = schema();
        let defs = vec![writer("a", &s, "x", 0), writer("b", &s, "y", 0)];
        assert!(confluence_warnings(&defs, &s).unwrap().is_empty());
    }

    #[test]
    fn non_cotriggerable_rules_skip() {
        let s = schema();
        let c = s.class_by_name("c").unwrap();
        let mut a = writer("a", &s, "x", 0);
        let mut b = writer("b", &s, "x", 0);
        // a listens create only; b listens delete only; neither action
        // creates or deletes → never co-triggered.
        a.events = EventExpr::prim(EventType::create(c));
        b.events = EventExpr::prim(EventType::delete(c));
        let defs = vec![a, b];
        assert!(confluence_warnings(&defs, &s).unwrap().is_empty());
    }

    #[test]
    fn delete_conflicts_with_modify() {
        let s = schema();
        let c = s.class_by_name("c").unwrap();
        let mut a = writer("a", &s, "x", 0);
        let mut b = writer("b", &s, "y", 0);
        b.actions = vec![ActionStmt::Delete { var: "V".into() }];
        a.events = EventExpr::prim(EventType::create(c));
        b.events = EventExpr::prim(EventType::create(c));
        let defs = vec![a, b];
        let warns = confluence_warnings(&defs, &s).unwrap();
        assert_eq!(warns.len(), 1);
    }

    #[test]
    fn write_sets_expand_inheritance() {
        let s = schema();
        let def = writer("a", &s, "x", 0);
        let ws = WriteSet::of(&def, &s).unwrap();
        // both c.x and d.x slots
        assert_eq!(ws.modifies.len(), 2);
    }

    #[test]
    fn create_population_conflicts_with_create() {
        let s = schema();
        let c = s.class_by_name("c").unwrap();
        let mk = |name: &str| {
            let mut def = TriggerDef::new(name, EventExpr::prim(EventType::delete(c)));
            def.actions = vec![ActionStmt::Create {
                class: "c".into(),
                inits: vec![],
            }];
            def
        };
        let defs = vec![mk("a"), mk("b")];
        let warns = confluence_warnings(&defs, &s).unwrap();
        assert_eq!(warns.len(), 1);
    }
}
