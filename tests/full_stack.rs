//! Full-stack integration: every extension crate working together.
//!
//! A deadline-monitoring database: static analysis vets the rule set,
//! clock events drive it, and the durable engine makes its effects
//! survive a crash. This is the composition a downstream adopter would
//! actually run, so it gets an integration test of its own.

use chimera::analysis::analyze;
use chimera::calculus::EventExpr;
use chimera::events::EventType;
use chimera::exec::{EngineConfig, Op};
use chimera::model::{AttrDef, AttrType, Schema, SchemaBuilder, Value};
use chimera::persist::DurableEngine;
use chimera::rules::{ActionStmt, CmpOp, Condition, Formula, Term, TriggerDef, VarDecl};
use chimera::temporal::{ClockDriver, ClockSpec};
use std::fs;
use std::path::PathBuf;

const AUDIT: u32 = 1;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("clock", None, vec![]).unwrap();
    b.class(
        "order",
        None,
        vec![
            AttrDef::with_default("filled", AttrType::Integer, Value::Int(0)),
            AttrDef::with_default("escalations", AttrType::Integer, Value::Int(0)),
        ],
    )
    .unwrap();
    b.build()
}

/// Audit tick + no fill in the window ⇒ escalate open orders.
fn escalate(schema: &Schema) -> TriggerDef {
    let clock = schema.class_by_name("clock").unwrap();
    let order = schema.class_by_name("order").unwrap();
    let filled = schema.attr_by_name(order, "filled").unwrap();
    let mut def = TriggerDef::new(
        "escalateUnfilled",
        EventExpr::prim(EventType::external(clock, AUDIT))
            .and(EventExpr::prim(EventType::modify(order, filled)).not()),
    );
    def.condition = Condition {
        decls: vec![VarDecl {
            name: "O".into(),
            class: "order".into(),
        }],
        formulas: vec![Formula::Compare {
            lhs: Term::attr("O", "filled"),
            op: CmpOp::Eq,
            rhs: Term::int(0),
        }],
    };
    def.actions = vec![ActionStmt::Modify {
        var: "O".into(),
        attr: "escalations".into(),
        value: Term::Add(
            Box::new(Term::attr("O", "escalations")),
            Box::new(Term::int(1)),
        ),
    }];
    def
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chimera-stack-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn analyzed_temporal_rules_on_a_durable_engine() {
    let schema = schema();
    let order = schema.class_by_name("order").unwrap();
    let defs = vec![escalate(&schema)];

    // 1. static analysis vets the rule set: the escalation writes only
    //    `escalations`, which nothing listens on — guaranteed to terminate.
    let report = analyze(&defs, &schema).unwrap();
    assert!(report.termination.is_terminating(), "{}", report.termination);
    assert!(report.confluence.is_empty());
    assert_eq!(report.max_cascade_depth, Some(1));

    // 2. run it durably with a clock driver.
    let dir = tmpdir("run");
    let oid;
    {
        let (mut db, _) = DurableEngine::open(
            schema.clone(),
            EngineConfig::default(),
            &dir,
            defs.clone(),
        )
        .unwrap();
        let clock = schema.class_by_name("clock").unwrap();
        let mut driver = ClockDriver::new(db.engine(), clock);
        driver.register(ClockSpec::After { delay: 2 }, AUDIT);

        db.begin().unwrap();
        oid = db
            .exec_block(&[Op::Create {
                class: order,
                inits: vec![],
            }])
            .unwrap()[0]
            .oid;
        db.exec_block(&[Op::Create {
            class: order,
            inits: vec![],
        }])
        .unwrap();
        // tick due at anchor+2: delivered through the durable wrapper
        let due = driver.collect_due(db.engine().event_base().now());
        assert_eq!(due.len(), 1);
        let occs = db.raise_external(&due).unwrap();
        assert_eq!(occs.len(), 1);
        // no fills happened: both orders escalated, durably
        assert_eq!(
            db.engine().read_attr(oid, "escalations").unwrap(),
            Value::Int(1)
        );
        db.commit().unwrap();
        // crash: drop without further commits
    }

    // 3. recovery: the escalation — a *rule* effect triggered by a
    //    *clock* event — survived the crash.
    let (db, report) = DurableEngine::open(
        schema.clone(),
        EngineConfig::default(),
        &dir,
        defs,
    )
    .unwrap();
    assert_eq!(report.replayed, 1);
    assert_eq!(report.objects, 2);
    assert_eq!(
        db.engine().read_attr(oid, "escalations").unwrap(),
        Value::Int(1)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn collect_due_and_pump_agree() {
    // the wrapper-agnostic path must deliver the same firings as pump
    let schema = schema();
    let clock = schema.class_by_name("clock").unwrap();
    let order = schema.class_by_name("order").unwrap();

    let mut plain = chimera::exec::Engine::new(schema.clone());
    let mut d1 = ClockDriver::new(&plain, clock);
    d1.register(ClockSpec::Every { period: 2, phase: 0 }, AUDIT);
    plain.begin().unwrap();
    for _ in 0..3 {
        plain
            .exec_block(&[Op::Create {
                class: order,
                inits: vec![],
            }])
            .unwrap();
    }
    let via_pump = d1.pump(&mut plain).unwrap();

    let mut other = chimera::exec::Engine::new(schema);
    let mut d2 = ClockDriver::new(&other, clock);
    d2.register(ClockSpec::Every { period: 2, phase: 0 }, AUDIT);
    other.begin().unwrap();
    for _ in 0..3 {
        other
            .exec_block(&[Op::Create {
                class: order,
                inits: vec![],
            }])
            .unwrap();
    }
    let due = d2.collect_due(other.event_base().now());
    let via_collect = other.raise_external(&due).unwrap();
    assert_eq!(via_pump.len(), via_collect.len());
    assert_eq!(
        via_pump.iter().map(|o| o.ty).collect::<Vec<_>>(),
        via_collect.iter().map(|o| o.ty).collect::<Vec<_>>()
    );
    plain.commit().unwrap();
    other.commit().unwrap();
}
