//! Compiled evaluation plans: the compile/evaluate split for `ts`.
//!
//! ## Why a plan
//!
//! The recursive evaluators ([`crate::ts_logical`], [`crate::instance`])
//! re-walk the [`EventExpr`] tree on every evaluation, and the §4.3
//! instance→set boundary is the expensive part: for every evaluation it
//! rebuilds the object quantification domain (collect → sort → dedup over
//! the window slice) and then recurses the tree once per object, paying a
//! hash probe + binary search per `(type, oid)` leaf. PR 1's benches put
//! the resulting gap at ~200× between set-oriented `ts` and an
//! `ots`-rooted boundary on a 10k-event window.
//!
//! ## What compilation produces
//!
//! [`Plan::compile`] flattens a validated expression into flat arenas:
//!
//! * set-oriented operators become a postorder [`SetOp`] array (children
//!   always precede parents; the root is the last op);
//! * every maximal instance-oriented subtree in set context becomes a
//!   [`BoundaryPlan`]: its own postorder [`InstOp`] array plus the
//!   *interned leaf slots* — the distinct primitive event types of the
//!   subtree, which are simultaneously the §4.3 quantification domain
//!   types and the columns of the evaluation scratchpad.
//!
//! ## How evaluation works
//!
//! [`PlanEval`] pairs a plan with a reusable scratchpad. Evaluating a
//! boundary at `(w, t)`:
//!
//! 1. the object domain comes from the event base's epoch-versioned
//!    domain cache ([`EventBase::objects_of_types_in`]) — a shared
//!    `Arc<[Oid]>` slice, no per-evaluation sort;
//! 2. each leaf slot is resolved for *all* domain objects at once with
//!    one reverse index sweep ([`EventBase::last_of_type_objs_in`]) into a
//!    column of the scratchpad — instead of `objects × leaves` separate
//!    hash probes;
//! 3. the per-object fold walks the op array over the scratchpad columns;
//!    only an inner `<=` re-evaluating its left operand at an earlier
//!    instant ever falls back to a point probe;
//! 4. the boundary result is memoized per `(clip, t)` and the whole
//!    scratchpad is keyed on `(uid, epoch)` of the event base, so
//!    re-evaluations between arrivals are O(1).
//!
//! ## Three evaluation tiers
//!
//! The calculus now has three coordinated implementations of the §4.3
//! boundary, from slowest/simplest to fastest:
//!
//! 1. **interpreted reference** ([`crate::instance::boundary_ts_logical`] /
//!    `boundary_ts_algebraic`, reached through
//!    [`crate::ts_logical_interpreted`]): re-walks the AST and rescans the
//!    window on every call. Never used on a hot path; it is the
//!    property-tested ground truth.
//! 2. **planned cold**: the compile/evaluate split above — one domain
//!    lookup + batched stamp sweep per `(window, epoch)`, then an
//!    O(objects) fold per probe instant. Paid on the *first* probe after
//!    a window's lower bound moves (rule consideration/consumption) or on
//!    a fresh scratchpad.
//! 3. **planned incremental**: when the event base `(uid, epoch)` key
//!    advances but the observation window merely *extends* (same lower
//!    bound — the §5.1 arrival case), the scratchpad is **advanced, not
//!    rebuilt**: the epoch's new occurrences are read through the EB's
//!    per-type delta columns ([`EventBase::type_occurrences_since`]), new
//!    domain rows are spliced in by a single sorted merge, touched
//!    `(type, object)` stamp cells are overwritten in place, and the
//!    boundary memo is invalidated selectively by the boundary's
//!    variation types `V(E)` instead of wholesale. Negation-free
//!    boundaries additionally maintain a running *aggregate* (the max
//!    per-object root activation stamp, which is monotone under
//!    arrivals), so a post-arrival probe at the window frontier is
//!    O(arrivals), not O(objects). The cold tier remains the fallback
//!    whenever the window's lower bound moves or the scratch belongs to a
//!    different event base.
//!
//! Values match the recursive evaluators **bit for bit** (including the
//! structured negative residues); `tests/plan_equivalence.rs` asserts this
//! against both `boundary_ts_logical` and `boundary_ts_algebraic` on
//! random expressions × random histories, and asserts the advanced
//! scratch matrix equals a from-scratch cold rebuild cell for cell under
//! interleaved arrivals, window advances, and probes.

use crate::expr::EventExpr;
use crate::ts::{ts_prim, TsVal};
use crate::Result;
use chimera_events::{EventBase, EventId, EventType, Timestamp, Window};
use chimera_model::Oid;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

/// One set-oriented operator of a compiled plan. Operand fields are
/// indices into the plan's op array (always smaller than the op's own
/// index: the array is in postorder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Primitive event type, resolved to a slot in the set-leaf table.
    Leaf(u32),
    /// `- E`.
    Not(u32),
    /// `E1 + E2`.
    And(u32, u32),
    /// `E1 , E2`.
    Or(u32, u32),
    /// `E1 < E2`.
    Prec(u32, u32),
    /// A maximal instance-oriented subtree crossing the §4.3 boundary,
    /// resolved to a slot in the plan's boundary table.
    Boundary(u32),
}

/// One instance-oriented operator of a [`BoundaryPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstOp {
    /// Primitive event type, resolved to an interned leaf slot.
    Leaf(u32),
    /// `-= E` (a *nested* instance negation; a root `-=` is absorbed
    /// into [`BoundaryPlan::inot`]).
    Not(u32),
    /// `E1 += E2`.
    And(u32, u32),
    /// `E1 ,= E2`.
    Or(u32, u32),
    /// `E1 <= E2`.
    Prec(u32, u32),
}

/// A compiled instance-oriented subtree in set context.
#[derive(Debug, Clone)]
pub struct BoundaryPlan {
    /// Postorder op array; root is the last op.
    pub(crate) ops: Vec<InstOp>,
    /// Interned leaf slots: the distinct primitive event types, in
    /// first-occurrence order. Doubles as the domain type list.
    pub(crate) leaves: Vec<EventType>,
    /// Root was `-=`: the boundary takes "no object activates the
    /// component" semantics (§3.2).
    pub(crate) inot: bool,
    /// Component contains a nested negation: the quantification domain
    /// widens to every object affected in the window (§4.3).
    pub(crate) widen: bool,
}

impl BoundaryPlan {
    fn build(component: &EventExpr, inot: bool) -> BoundaryPlan {
        let mut bp = BoundaryPlan {
            ops: Vec::new(),
            leaves: Vec::new(),
            inot,
            widen: component.contains_negation(),
        };
        bp.push_inst(component);
        bp
    }

    fn push_inst(&mut self, expr: &EventExpr) -> u32 {
        let op = match expr {
            EventExpr::Prim(ty) => InstOp::Leaf(intern(&mut self.leaves, *ty)),
            EventExpr::INot(e) => InstOp::Not(self.push_inst(e)),
            EventExpr::IAnd(a, b) => {
                let (na, nb) = (self.push_inst(a), self.push_inst(b));
                InstOp::And(na, nb)
            }
            EventExpr::IOr(a, b) => {
                let (na, nb) = (self.push_inst(a), self.push_inst(b));
                InstOp::Or(na, nb)
            }
            EventExpr::IPrec(a, b) => {
                let (na, nb) = (self.push_inst(a), self.push_inst(b));
                InstOp::Prec(na, nb)
            }
            _ => unreachable!("set operator inside instance subtree (validated expression)"),
        };
        self.ops.push(op);
        (self.ops.len() - 1) as u32
    }

    /// Number of ops (the root is op `len() - 1`).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// A boundary plan always has at least one op.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The interned leaf event types.
    pub fn leaves(&self) -> &[EventType] {
        &self.leaves
    }
}

/// A compiled evaluation plan for one validated [`EventExpr`].
#[derive(Debug, Clone)]
pub struct Plan {
    /// Postorder set-level op array; root is the last op.
    pub(crate) ops: Vec<SetOp>,
    /// Set-level interned leaves.
    pub(crate) set_leaves: Vec<EventType>,
    /// Compiled instance subtrees, indexed by [`SetOp::Boundary`].
    pub(crate) boundaries: Vec<BoundaryPlan>,
}

impl Plan {
    /// Compile a validated expression. Fails exactly when
    /// [`EventExpr::validate`] does (§3.2 well-formedness).
    pub fn compile(expr: &EventExpr) -> Result<Plan> {
        expr.validate()?;
        let mut plan = Plan {
            ops: Vec::new(),
            set_leaves: Vec::new(),
            boundaries: Vec::new(),
        };
        plan.push_set(expr);
        Ok(plan)
    }

    /// Compile a validated *instance-oriented* expression as a single
    /// per-object component (a root `-=` stays a nested [`InstOp::Not`],
    /// giving `ots` rather than boundary semantics). Used for the
    /// `occurred` / `at` event-formula path, which needs per-object
    /// activity instead of the boundary max.
    pub(crate) fn compile_instance(expr: &EventExpr) -> Result<Plan> {
        expr.validate()?;
        debug_assert!(expr.is_instance_oriented());
        Ok(Plan {
            ops: vec![SetOp::Boundary(0)],
            set_leaves: Vec::new(),
            boundaries: vec![BoundaryPlan::build(expr, false)],
        })
    }

    fn push_set(&mut self, expr: &EventExpr) -> u32 {
        let op = match expr {
            EventExpr::Prim(ty) => SetOp::Leaf(intern(&mut self.set_leaves, *ty)),
            EventExpr::Not(e) => SetOp::Not(self.push_set(e)),
            EventExpr::And(a, b) => {
                let (na, nb) = (self.push_set(a), self.push_set(b));
                SetOp::And(na, nb)
            }
            EventExpr::Or(a, b) => {
                let (na, nb) = (self.push_set(a), self.push_set(b));
                SetOp::Or(na, nb)
            }
            EventExpr::Prec(a, b) => {
                let (na, nb) = (self.push_set(a), self.push_set(b));
                SetOp::Prec(na, nb)
            }
            EventExpr::IAnd(..) | EventExpr::IOr(..) | EventExpr::IPrec(..) => {
                self.boundaries.push(BoundaryPlan::build(expr, false));
                SetOp::Boundary((self.boundaries.len() - 1) as u32)
            }
            EventExpr::INot(inner) => {
                self.boundaries.push(BoundaryPlan::build(inner, true));
                SetOp::Boundary((self.boundaries.len() - 1) as u32)
            }
        };
        self.ops.push(op);
        (self.ops.len() - 1) as u32
    }

    /// Number of set-level ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// A plan always has at least one op.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The compiled boundary subtrees.
    pub fn boundaries(&self) -> &[BoundaryPlan] {
        &self.boundaries
    }

    /// The set-level op array (postorder; root last).
    pub(crate) fn set_ops(&self) -> &[SetOp] {
        &self.ops
    }
}

/// Intern an event type into a leaf-slot table (first-occurrence order).
fn intern(leaves: &mut Vec<EventType>, ty: EventType) -> u32 {
    match leaves.iter().position(|&l| l == ty) {
        Some(i) => i as u32,
        None => {
            leaves.push(ty);
            (leaves.len() - 1) as u32
        }
    }
}

/// Per-boundary reusable evaluation state.
#[derive(Debug, Clone)]
struct BoundaryScratch {
    /// The clipped window the domain + stamp matrix were built for.
    clip: Option<Window>,
    /// Shared quantification domain (sorted OIDs).
    domain: Arc<[Oid]>,
    /// Leaf stamp matrix, column-major: `stamps[leaf * D + obj]` is the
    /// most recent in-window stamp of `leaves[leaf]` on `domain[obj]`.
    stamps: Vec<Option<Timestamp>>,
    /// Event-base epoch the matrix has absorbed: every logged occurrence
    /// at a position `< built_epoch` that falls inside `clip` is
    /// reflected in `domain`/`stamps`. Later occurrences are applied by
    /// [`PlanEval::advance_boundary`] through the EB's per-type delta
    /// columns.
    built_epoch: u64,
    /// Largest leaf stamp present in the matrix (`None` = no in-window
    /// leaf occurrence). Probes at `t >= max_stamp` see every matrix cell
    /// and are eligible for the aggregate fast path.
    max_stamp: Option<Timestamp>,
    /// Negation-free aggregate: the max per-object *root* activation
    /// stamp over the whole domain (`None` = no object active). Roots of
    /// negation-free components are monotone under arrivals, so the
    /// aggregate is maintained by folding only the delta-touched objects.
    agg: Option<Timestamp>,
    /// Is `agg` populated for the current matrix? (Set lazily by the
    /// first eligible full fold; never set for widened boundaries.)
    agg_valid: bool,
    /// Small memo of recent boundary results, keyed `(clip, t)`;
    /// invalidated selectively — by the boundary's variation types — when
    /// the event base `(uid, epoch)` key advances.
    memo: Vec<(Window, Timestamp, TsVal)>,
}

/// Memoized boundary results kept per epoch (covers the handful of
/// distinct `(window, instant)` probes a trigger check performs).
const BOUNDARY_MEMO_CAP: usize = 8;

impl Default for BoundaryScratch {
    fn default() -> Self {
        BoundaryScratch {
            clip: None,
            domain: Arc::from(Vec::new()),
            stamps: Vec::new(),
            built_epoch: 0,
            max_stamp: None,
            agg: None,
            agg_valid: false,
            memo: Vec::new(),
        }
    }
}

impl BoundaryScratch {
    /// Forget everything (the scratch belongs to a different event base).
    fn reset(&mut self) {
        *self = BoundaryScratch::default();
    }
}

/// A compiled plan plus its reusable scratchpad: the unit an engine
/// caches per rule. Cloning yields an independent scratchpad over the
/// same (cheap, immutable) plan.
#[derive(Debug, Clone)]
pub struct PlanEval {
    plan: Arc<Plan>,
    /// `(uid, epoch)` of the event base the scratch state belongs to.
    key: Option<(u64, u64)>,
    scratch: Vec<BoundaryScratch>,
}

impl PlanEval {
    /// Compile an expression into an evaluator with a fresh scratchpad.
    pub fn compile(expr: &EventExpr) -> Result<PlanEval> {
        Ok(PlanEval::new(Plan::compile(expr)?))
    }

    /// Wrap an already compiled plan.
    pub fn new(plan: Plan) -> PlanEval {
        let scratch = vec![BoundaryScratch::default(); plan.boundaries.len()];
        PlanEval {
            plan: Arc::new(plan),
            key: None,
            scratch,
        }
    }

    /// A fresh evaluator over the same (shared, immutable) compiled plan,
    /// with an empty scratchpad.
    fn fresh(&self) -> PlanEval {
        PlanEval {
            plan: self.plan.clone(),
            key: None,
            scratch: vec![BoundaryScratch::default(); self.plan.boundaries.len()],
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Evaluate `ts(E, t)` over window `w` of `eb`. Equals
    /// [`crate::ts_logical`] (and [`crate::ts_algebraic`]) bit for bit.
    pub fn eval(&mut self, eb: &EventBase, w: Window, t: Timestamp) -> TsVal {
        self.refresh_key(eb);
        let plan = self.plan.clone();
        self.eval_set(&plan, plan.ops.len() - 1, eb, w, t)
    }

    /// The objects for which an instance-compiled plan
    /// ([`Plan::compile_instance`]) is active at `w.upto` — the
    /// `occurred(expr, X)` set, sorted by OID.
    pub(crate) fn active_objects(&mut self, eb: &EventBase, w: Window) -> Vec<Oid> {
        self.refresh_key(eb);
        let plan = self.plan.clone();
        debug_assert_eq!(plan.boundaries.len(), 1);
        let bp = &plan.boundaries[0];
        let t = w.upto;
        self.prepare_boundary(0, bp, eb, w.clip_upto(t));
        let ctx = InstCtx {
            bp,
            scr: &self.scratch[0],
            eb,
            w,
        };
        let root = bp.ops.len() - 1;
        (0..ctx.scr.domain.len())
            .filter(|&j| ctx.eval(root, t, j).is_active())
            .map(|j| ctx.scr.domain[j])
            .collect()
    }

    fn refresh_key(&mut self, eb: &EventBase) {
        let key = (eb.uid(), eb.epoch());
        if self.key == Some(key) {
            return;
        }
        match self.key {
            // Arrival delta on the same event base: drop only the memo
            // entries the delta can affect. A boundary none of whose
            // variation types (its leaves; any type at all for widened
            // domains, which every arrival can join) occurs in the delta
            // keeps everything; otherwise entries whose window closes
            // before the first relevant arrival still describe the same
            // occurrence set and survive. The matrix itself is advanced
            // lazily by `prepare_boundary`.
            Some((uid, old_epoch)) if uid == key.0 && key.1 >= old_epoch => {
                let plan = Arc::clone(&self.plan); // refcount bump, not a deep clone
                let delta = eb.occurrences_since(old_epoch);
                for (bi, scr) in self.scratch.iter_mut().enumerate() {
                    let bp = &plan.boundaries[bi];
                    let first_relevant = delta
                        .iter()
                        .find(|o| bp.widen || bp.leaves.contains(&o.ty))
                        .map(|o| o.ts);
                    if let Some(ts) = first_relevant {
                        scr.memo.retain(|&(mc, _, _)| mc.upto < ts);
                    }
                }
            }
            _ => {
                for scr in &mut self.scratch {
                    scr.reset();
                }
            }
        }
        self.key = Some(key);
    }

    fn eval_set(&mut self, plan: &Plan, idx: usize, eb: &EventBase, w: Window, t: Timestamp) -> TsVal {
        match plan.ops[idx] {
            SetOp::Leaf(slot) => ts_prim(eb, w, t, plan.set_leaves[slot as usize]),
            SetOp::Not(c) => self.eval_set(plan, c as usize, eb, w, t).negate(),
            SetOp::And(a, b) => {
                let ta = self.eval_set(plan, a as usize, eb, w, t);
                let tb = self.eval_set(plan, b as usize, eb, w, t);
                if ta.is_active() && tb.is_active() {
                    ta.max(tb)
                } else {
                    ta.min(tb)
                }
            }
            SetOp::Or(a, b) => {
                let ta = self.eval_set(plan, a as usize, eb, w, t);
                let tb = self.eval_set(plan, b as usize, eb, w, t);
                if ta.is_active() || tb.is_active() {
                    ta.max(tb)
                } else {
                    ta.min(tb)
                }
            }
            SetOp::Prec(a, b) => {
                let tb = self.eval_set(plan, b as usize, eb, w, t);
                match tb.activation() {
                    Some(b_stamp) => {
                        let ta_at_b = self.eval_set(plan, a as usize, eb, w, b_stamp);
                        if ta_at_b.is_active() {
                            tb
                        } else {
                            TsVal::inactive(t)
                        }
                    }
                    None => TsVal::inactive(t),
                }
            }
            SetOp::Boundary(bi) => self.eval_boundary(plan, bi as usize, eb, w, t),
        }
    }

    /// Build, advance, or reuse the domain + stamp matrix for `clip`.
    fn prepare_boundary(&mut self, bi: usize, bp: &BoundaryPlan, eb: &EventBase, clip: Window) {
        let epoch = eb.epoch();
        {
            let scr = &self.scratch[bi];
            if scr.clip == Some(clip) && scr.built_epoch == epoch {
                return;
            }
            // Arrival-incremental advance: reuse the matrix when the new
            // clip is a pure upper-bound extension of the built one and
            // the old build absorbed every occurrence logged at its epoch
            // (always true for the shared non-widened build clip, whose
            // upper bound is `>= now`). Everything else — a moved lower
            // bound after consumption, a widened per-instant clip probed
            // at an earlier instant — takes the cold rebuild below.
            if let Some(old) = scr.clip {
                let absorbed_all = scr.built_epoch == 0
                    || eb
                        .get(EventId(scr.built_epoch))
                        .is_some_and(|last| last.ts <= old.upto);
                if clip.extends(old)
                    && epoch >= scr.built_epoch
                    && absorbed_all
                    && self.advance_boundary(bi, bp, eb, clip)
                {
                    return;
                }
            }
        }
        self.build_boundary(bi, bp, eb, clip);
    }

    /// Cold build of the domain + stamp matrix for `clip` (tier 2).
    fn build_boundary(&mut self, bi: usize, bp: &BoundaryPlan, eb: &EventBase, clip: Window) {
        let scr = &mut self.scratch[bi];
        scr.domain = if bp.widen {
            eb.objects_in(clip)
        } else {
            eb.objects_of_types_in(&bp.leaves, clip)
        };
        let d = scr.domain.len();
        scr.stamps.clear();
        scr.stamps.resize(bp.leaves.len() * d, None);
        for (l, &ty) in bp.leaves.iter().enumerate() {
            eb.last_of_type_objs_in(ty, &scr.domain, clip, &mut scr.stamps[l * d..(l + 1) * d]);
        }
        scr.clip = Some(clip);
        scr.built_epoch = eb.epoch();
        scr.max_stamp = bp
            .leaves
            .iter()
            .filter_map(|&ty| eb.last_of_type_in(ty, clip))
            .max();
        scr.agg = None;
        scr.agg_valid = false;
    }

    /// Arrival-incremental advance (tier 3): extend the existing matrix
    /// from its built epoch to the current one by splicing new domain
    /// rows in and overwriting the delta-touched stamp cells, instead of
    /// rescanning the window. Returns `false` (leaving the scratch intact
    /// for the cold rebuild) if the cached domain turns out not to be a
    /// subset of the extended one — impossible for an append-only log
    /// with a fixed lower bound, but checked rather than trusted.
    fn advance_boundary(&mut self, bi: usize, bp: &BoundaryPlan, eb: &EventBase, clip: Window) -> bool {
        let scr = &mut self.scratch[bi];
        let new_domain = if bp.widen {
            eb.objects_in(clip)
        } else {
            eb.objects_of_types_in(&bp.leaves, clip)
        };
        let l = bp.leaves.len();
        if !Arc::ptr_eq(&new_domain, &scr.domain) && *new_domain != *scr.domain {
            // re-layout: map every old row to its slot in the extended
            // domain with one merged sweep; fresh rows start all-None.
            let old_d = scr.domain.len();
            let nd = new_domain.len();
            let mut stamps = vec![None; l * nd];
            let mut j = 0usize;
            for (i, &oid) in scr.domain.iter().enumerate() {
                while j < nd && new_domain[j] < oid {
                    j += 1;
                }
                if j >= nd || new_domain[j] != oid {
                    debug_assert!(false, "domain shrank under a window extension");
                    return false;
                }
                for slot in 0..l {
                    stamps[slot * nd + j] = scr.stamps[slot * old_d + i];
                }
                j += 1;
            }
            scr.stamps = stamps;
            scr.domain = new_domain;
        }
        // apply the per-type arrival deltas in place (timestamp order, so
        // a later stamp simply overwrites an earlier one)
        let d = scr.domain.len();
        let agg_maintained = scr.agg_valid;
        let mut touched: Vec<usize> = Vec::new();
        for (slot, &ty) in bp.leaves.iter().enumerate() {
            for (ts, oid) in eb.type_occurrences_since(ty, scr.built_epoch).iter() {
                if ts <= clip.after || ts > clip.upto {
                    continue;
                }
                let Ok(j) = scr.domain.binary_search(&oid) else {
                    debug_assert!(false, "delta object missing from the extended domain");
                    return false;
                };
                scr.stamps[slot * d + j] = Some(ts);
                scr.max_stamp = Some(scr.max_stamp.map_or(ts, |m| m.max(ts)));
                if agg_maintained {
                    touched.push(j);
                }
            }
        }
        scr.clip = Some(clip);
        scr.built_epoch = eb.epoch();
        // fold only the touched objects back into the negation-free
        // aggregate: their roots are monotone under arrivals, so a max
        // merge over the delta is exact.
        if agg_maintained && !touched.is_empty() {
            touched.sort_unstable();
            touched.dedup();
            let scr = &self.scratch[bi];
            let ctx = InstCtx {
                bp,
                scr,
                eb,
                w: clip,
            };
            let root = bp.ops.len() - 1;
            let mut agg = scr.agg;
            for &j in &touched {
                if let Some(s) = ctx.eval(root, clip.upto, j).activation() {
                    agg = Some(agg.map_or(s, |m| m.max(s)));
                }
            }
            self.scratch[bi].agg = agg;
        }
        true
    }

    /// §4.3 boundary evaluation over the scratchpad.
    fn eval_boundary(
        &mut self,
        plan: &Plan,
        bi: usize,
        eb: &EventBase,
        w: Window,
        t: Timestamp,
    ) -> TsVal {
        let clip = w.clip_upto(t);
        if let Some(&(_, _, v)) = self.scratch[bi]
            .memo
            .iter()
            .find(|&&(mc, mt, _)| mc == clip && mt == t)
        {
            return v;
        }
        let bp = &plan.boundaries[bi];
        // Negation-free components evaluate to exactly `-t` for any object
        // without a matching occurrence up to `t`, so a *wider* domain and
        // stamp matrix give bit-identical results — build them once per
        // epoch over the full window and share them across every probe
        // instant (the per-leaf `s <= t` check + point-probe fallback
        // resolves earlier instants). Widened (negation-carrying)
        // components gain vacuously-active members with the domain, so
        // they must keep the exact per-instant clip.
        let build_clip = if bp.widen {
            clip
        } else {
            w.clip_upto(t.max(eb.now()))
        };
        self.prepare_boundary(bi, bp, eb, build_clip);
        let scr = &self.scratch[bi];
        // Aggregate fast path: a negation-free per-object root probed at
        // an instant covering every matrix stamp is either active with a
        // t-independent stamp or exactly `-t`, so the boundary max
        // reduces to the maintained max active root stamp — O(1), no
        // domain fold.
        let agg_eligible = !bp.widen && scr.max_stamp.is_none_or(|m| t >= m);
        if agg_eligible && scr.agg_valid {
            return match (scr.agg, bp.inot) {
                (Some(s), false) => TsVal::active(s),
                (Some(s), true) => TsVal::active(s).negate(),
                (None, false) => TsVal::inactive(t),
                (None, true) => TsVal::active(t),
            };
        }
        let ctx = InstCtx { bp, scr, eb, w };
        let root = bp.ops.len() - 1;
        let mut best: Option<TsVal> = None;
        for j in 0..ctx.scr.domain.len() {
            let v = ctx.eval(root, t, j);
            best = Some(match best {
                None => v,
                Some(b) => b.max(v),
            });
        }
        let res = if bp.inot {
            match best {
                // ∃ active object → inactive; nobody active → active "now"
                Some(v) if v.is_active() => v.negate(),
                _ => TsVal::active(t),
            }
        } else {
            best.unwrap_or(TsVal::inactive(t))
        };
        let scr = &mut self.scratch[bi];
        if agg_eligible {
            // this fold just computed the aggregate; keep it maintained
            scr.agg = best.and_then(TsVal::activation);
            scr.agg_valid = true;
        }
        if scr.memo.len() >= BOUNDARY_MEMO_CAP {
            scr.memo.remove(0);
        }
        scr.memo.push((clip, t, res));
        res
    }

    /// Test-only: force every boundary's matrix to be prepared for the
    /// window frontier, bypassing the result memo (which can legitimately
    /// answer a probe while the matrix still describes an earlier
    /// widened-clip instant). Lets equivalence suites compare scratch
    /// state against a cold rebuild through whichever tier — advance or
    /// rebuild — production would pick for this window.
    #[doc(hidden)]
    pub fn prepare_frontier(&mut self, eb: &EventBase, w: Window) {
        self.refresh_key(eb);
        let plan = Arc::clone(&self.plan);
        let t = w.upto;
        for (bi, bp) in plan.boundaries.iter().enumerate() {
            let build_clip = if bp.widen {
                w.clip_upto(t)
            } else {
                w.clip_upto(t.max(eb.now()))
            };
            self.prepare_boundary(bi, bp, eb, build_clip);
        }
    }

    /// Test-only view of the per-boundary scratch state (`domain` and the
    /// column-major stamp matrix), used by the equivalence suites to
    /// assert the arrival-incremental matrix equals a from-scratch cold
    /// rebuild cell for cell.
    #[doc(hidden)]
    pub fn boundary_scratch(&self) -> Vec<(Vec<Oid>, Vec<Option<Timestamp>>)> {
        self.scratch
            .iter()
            .map(|s| (s.domain.to_vec(), s.stamps.clone()))
            .collect()
    }
}

/// Borrowed context for the per-object fold: the boundary's compiled
/// shape, its prepared scratchpad, and the evaluation window.
struct InstCtx<'a> {
    bp: &'a BoundaryPlan,
    scr: &'a BoundaryScratch,
    eb: &'a EventBase,
    w: Window,
}

impl InstCtx<'_> {
    /// `ots` of one object over the op array and its scratchpad row.
    fn eval(&self, idx: usize, t: Timestamp, obj: usize) -> TsVal {
        match self.bp.ops[idx] {
            InstOp::Leaf(slot) => {
                let d = self.scr.domain.len();
                match self.scr.stamps[slot as usize * d + obj] {
                    Some(s) if s <= t => TsVal::active(s),
                    // matrix stamp is later than the probe instant (an
                    // inner `<=` evaluating at an earlier reference
                    // instant): fall back to a point probe.
                    Some(_) => match self.eb.last_of_type_obj_in(
                        self.bp.leaves[slot as usize],
                        self.scr.domain[obj],
                        self.w.clip_upto(t),
                    ) {
                        Some(s) => TsVal::active(s),
                        None => TsVal::inactive(t),
                    },
                    None => TsVal::inactive(t),
                }
            }
            InstOp::Not(c) => self.eval(c as usize, t, obj).negate(),
            InstOp::And(a, b) => {
                let ta = self.eval(a as usize, t, obj);
                let tb = self.eval(b as usize, t, obj);
                if ta.is_active() && tb.is_active() {
                    ta.max(tb)
                } else {
                    ta.min(tb)
                }
            }
            InstOp::Or(a, b) => {
                let ta = self.eval(a as usize, t, obj);
                let tb = self.eval(b as usize, t, obj);
                if ta.is_active() || tb.is_active() {
                    ta.max(tb)
                } else {
                    ta.min(tb)
                }
            }
            InstOp::Prec(a, b) => {
                let tb = self.eval(b as usize, t, obj);
                match tb.activation() {
                    Some(b_stamp) => {
                        let ta_at_b = self.eval(a as usize, b_stamp, obj);
                        if ta_at_b.is_active() {
                            tb
                        } else {
                            TsVal::inactive(t)
                        }
                    }
                    None => TsVal::inactive(t),
                }
            }
        }
    }
}

/// Number of shards in the process-wide plan caches.
const PLAN_CACHE_SHARDS: usize = 16;
/// Per-shard entry cap; the least-recently-used entry beyond it is
/// evicted (property suites generate unbounded fresh expressions).
const PLAN_CACHE_SHARD_CAP: usize = 64;

/// Evaluators kept per cache entry: one per recently seen event base
/// (scratch state is keyed to a single EB `uid`, so engines with
/// different event bases must not share one scratchpad — they would
/// reset it on every alternation). Oldest-used evicted beyond the cap.
const ENTRY_EVALS_CAP: usize = 4;

/// One cached compiled plan plus its per-event-base scratchpads. The
/// evaluators are `Mutex`-wrapped because a [`PlanEval`] carries mutable
/// scratch state; neither the shard lock nor the entry lock is held
/// while an evaluator runs (claim → evaluate privately → push back), so
/// concurrent engines sharing an expression contend only on the brief
/// claim/return, never on the evaluation itself. All evaluators in an
/// entry share one compiled `Plan` arena; only the scratch differs.
struct CacheEntry {
    evals: Mutex<Vec<PlanEval>>,
    /// Logical use stamp for LRU eviction (shared cache-wide counter).
    last_used: AtomicU64,
}

type Shard = RwLock<HashMap<EventExpr, Arc<CacheEntry>>>;

/// A process-wide expression → compiled-plan cache, sharded by expression
/// hash. Replaces the former per-thread caches so that every thread of a
/// multi-threaded engine shares one set of compiled arenas (and their
/// arrival-incrementally maintained scratch state) instead of each
/// rebuilding its own.
struct PlanCache {
    shards: Vec<Shard>,
    tick: AtomicU64,
}

impl PlanCache {
    fn new() -> PlanCache {
        PlanCache {
            shards: (0..PLAN_CACHE_SHARDS).map(|_| RwLock::default()).collect(),
            tick: AtomicU64::new(0),
        }
    }

    fn shard(&self, expr: &EventExpr) -> &Shard {
        let mut h = std::hash::DefaultHasher::new();
        expr.hash(&mut h);
        &self.shards[(h.finish() as usize) % PLAN_CACHE_SHARDS]
    }

    /// Run `f` over the cached evaluator for `expr` and the event base
    /// identified by `uid`, compiling (and possibly evicting the shard's
    /// LRU entry) on first sight of the expression, and growing a fresh
    /// scratchpad over the shared plan on first sight of the event base.
    fn with<R>(
        &self,
        expr: &EventExpr,
        uid: u64,
        compile: impl Fn(&EventExpr) -> Result<PlanEval>,
        f: impl FnOnce(&mut PlanEval) -> R,
    ) -> R {
        let shard = self.shard(expr);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let cached = shard
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(expr)
            .cloned();
        let entry = match cached {
            Some(e) => e,
            None => {
                // compile outside the write lock; a racing thread may have
                // inserted meanwhile, in which case its entry wins
                let pe = compile(expr).unwrap_or_else(|e| {
                    panic!("plan compilation of a used expression failed: {e} ({expr})")
                });
                let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
                let entry = map
                    .entry(expr.clone())
                    .or_insert_with(|| {
                        Arc::new(CacheEntry {
                            evals: Mutex::new(vec![pe]),
                            last_used: AtomicU64::new(tick),
                        })
                    })
                    .clone();
                if map.len() > PLAN_CACHE_SHARD_CAP {
                    let victim = map
                        .iter()
                        .filter(|(k, _)| *k != expr)
                        .min_by_key(|(_, v)| v.last_used.load(Ordering::Relaxed))
                        .map(|(k, _)| k.clone());
                    if let Some(victim) = victim {
                        map.remove(&victim);
                    }
                }
                entry
            }
        };
        entry.last_used.store(tick, Ordering::Relaxed);
        // claim an evaluator under the entry lock...
        let mut pe = {
            let mut evals = entry.evals.lock().unwrap_or_else(PoisonError::into_inner);
            // the evaluator whose scratch belongs to this event base — or
            // an unclaimed fresh one; most recently used live at the back
            let idx = evals
                .iter()
                .position(|pe| pe.key.map(|k| k.0) == Some(uid) || pe.key.is_none());
            match idx {
                Some(i) => evals.remove(i),
                None => {
                    if evals.len() >= ENTRY_EVALS_CAP {
                        evals.remove(0);
                    }
                    match evals.first() {
                        Some(proto) => proto.fresh(),
                        // only reachable if a panicked evaluation lost the
                        // entry's last evaluator: recompile
                        None => compile(expr).unwrap_or_else(|e| {
                            panic!("plan compilation of a used expression failed: {e} ({expr})")
                        }),
                    }
                }
            }
        };
        // ...but evaluate *outside* it: the claimed evaluator is privately
        // owned, so threads of different event bases sharing an expression
        // (every tenant of a multi-tenant runtime with a common rule set)
        // evaluate concurrently instead of serializing on the entry. Two
        // threads of the *same* event base may race to claim; the loser
        // grows a fresh scratchpad that is merged back by the push below.
        let out = f(&mut pe);
        entry
            .evals
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(pe);
        out
    }
}

/// Compile-time `Send + Sync` audit of everything the process-wide plan
/// caches share across engine threads. The cache hands `Arc<CacheEntry>`
/// clones to arbitrary threads and the entries carry whole evaluators, so
/// a non-`Sync` field sneaking into any of these types must be a build
/// error here rather than an `unsafe impl` or a runtime race.
#[allow(dead_code)]
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Plan>();
    assert_send_sync::<BoundaryPlan>();
    assert_send_sync::<PlanEval>();
    assert_send_sync::<BoundaryScratch>();
    assert_send_sync::<CacheEntry>();
    assert_send_sync::<PlanCache>();
    assert_send_sync::<TsVal>();
};

/// Boundary-rooted plans used by the `ts_logical` / `ts_algebraic`
/// dispatch (one per distinct boundary subtree).
static BOUNDARY_PLANS: OnceLock<PlanCache> = OnceLock::new();
/// Instance-compiled plans used by the `occurred` formula path.
static INSTANCE_PLANS: OnceLock<PlanCache> = OnceLock::new();

/// Evaluate a boundary-rooted (instance-oriented in set context)
/// expression through the process-wide sharded compiled-plan cache. This
/// is the production path behind [`crate::ts_logical`] /
/// [`crate::ts_algebraic`]; the recursive definitions remain as
/// [`crate::instance::boundary_ts_logical`] and
/// [`crate::instance::boundary_ts_algebraic`] (the cross-checked
/// references).
pub(crate) fn boundary_ts_planned(
    expr: &EventExpr,
    eb: &EventBase,
    w: Window,
    t: Timestamp,
) -> TsVal {
    BOUNDARY_PLANS
        .get_or_init(PlanCache::new)
        .with(expr, eb.uid(), PlanEval::compile, |pe| pe.eval(eb, w, t))
}

/// `occurred(expr, X)` through the process-wide instance-plan cache.
pub(crate) fn occurred_objects_planned(expr: &EventExpr, eb: &EventBase, w: Window) -> Vec<Oid> {
    INSTANCE_PLANS.get_or_init(PlanCache::new).with(
        expr,
        eb.uid(),
        |e| Plan::compile_instance(e).map(PlanEval::new),
        |pe| pe.active_objects(eb, w),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{boundary_ts_algebraic, boundary_ts_logical};
    use crate::ts::{ts_logical, ts_logical_interpreted};
    use chimera_model::ClassId;

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }

    fn history() -> EventBase {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(1), Oid(2), Timestamp(2));
        eb.append_at(et(1), Oid(1), Timestamp(3));
        eb.append_at(et(0), Oid(3), Timestamp(5));
        eb.append_at(et(2), Oid(2), Timestamp(6));
        eb.append_at(et(0), Oid(2), Timestamp(8));
        eb.tick();
        eb
    }

    /// The expression menu crossing every op and boundary shape.
    fn menu() -> Vec<EventExpr> {
        vec![
            p(0),
            p(0).and(p(1)),
            p(0).or(p(1)).not(),
            p(0).prec(p(1)),
            p(0).iand(p(1)),
            p(0).ior(p(1)),
            p(0).iprec(p(1)),
            p(0).iand(p(1)).inot(),
            p(0).iand(p(1).inot()),
            p(0).inot().inot(),
            p(2).and(p(0).iprec(p(1))),
            p(0).iprec(p(1)).or(p(2).not()),
            p(0).iand(p(1)).prec(p(2)),
            p(2).prec(p(0).iand(p(1))),
        ]
    }

    #[test]
    fn plan_matches_recursive_everywhere() {
        let eb = history();
        for expr in menu() {
            let mut pe = PlanEval::compile(&expr).unwrap();
            for wa in [0u64, 2, 5] {
                for t in 1..=9u64 {
                    let w = Window::new(Timestamp(wa), Timestamp(9));
                    let want = ts_logical_interpreted(&expr, &eb, w, Timestamp(t));
                    assert_eq!(
                        pe.eval(&eb, w, Timestamp(t)),
                        want,
                        "{expr} over ({wa},9] at t{t}"
                    );
                    // and the cached dispatch path agrees too
                    assert_eq!(ts_logical(&expr, &eb, w, Timestamp(t)), want);
                }
            }
        }
    }

    #[test]
    fn boundary_plan_matches_both_recursive_styles() {
        let eb = history();
        for expr in [
            p(0).iand(p(1)),
            p(0).iprec(p(1)),
            p(0).iand(p(1)).inot(),
            p(0).ior(p(1).inot()),
        ] {
            let mut pe = PlanEval::compile(&expr).unwrap();
            for t in 1..=9u64 {
                let w = Window::from_origin(Timestamp(9));
                let v = pe.eval(&eb, w, Timestamp(t));
                assert_eq!(v, boundary_ts_logical(&expr, &eb, w, Timestamp(t)), "{expr}@{t}");
                assert_eq!(v, boundary_ts_algebraic(&expr, &eb, w, Timestamp(t)), "{expr}@{t}");
            }
        }
    }

    #[test]
    fn scratch_survives_event_base_growth() {
        let mut eb = EventBase::new();
        let expr = p(0).iand(p(1));
        let mut pe = PlanEval::compile(&expr).unwrap();
        let probe = |pe: &mut PlanEval, eb: &EventBase| {
            let w = Window::from_origin(eb.now());
            let got = pe.eval(eb, w, eb.now());
            assert_eq!(got, ts_logical_interpreted(&expr, eb, w, eb.now()));
            got
        };
        eb.append(et(0), Oid(1));
        assert!(!probe(&mut pe, &eb).is_active());
        eb.append(et(1), Oid(1));
        assert!(probe(&mut pe, &eb).is_active());
        // repeated probes at the same epoch hit the memo
        assert!(probe(&mut pe, &eb).is_active());
        eb.append(et(0), Oid(2));
        assert!(probe(&mut pe, &eb).is_active());
        // a different event base invalidates the scratch key
        let mut other = EventBase::new();
        other.append(et(1), Oid(7));
        assert!(!probe(&mut pe, &other).is_active());
        assert!(probe(&mut pe, &eb).is_active());
    }

    #[test]
    fn arrival_advance_matches_cold_rebuild_matrix() {
        // an evaluator kept across epochs must hold exactly the matrix a
        // fresh cold build would produce, at every step
        let exprs = [
            p(0).iand(p(1)),
            p(0).iprec(p(1)),
            p(0).iand(p(1)).inot(),
            p(0).iand(p(1).inot()), // widened domain
        ];
        for expr in exprs {
            let mut eb = EventBase::new();
            let mut inc = PlanEval::compile(&expr).unwrap();
            let plan = inc.plan().clone();
            let stream = [
                (0u32, 1u64),
                (1, 2),
                (1, 1),
                (0, 3),
                (2, 9), // irrelevant type: V(E)-filtered delta
                (0, 2),
                (1, 3),
            ];
            for &(ty, oid) in &stream {
                eb.append(et(ty), Oid(oid));
                let w = Window::from_origin(eb.now());
                let now = eb.now();
                let got = inc.eval(&eb, w, now);
                let mut cold = PlanEval::new(plan.clone());
                assert_eq!(got, cold.eval(&eb, w, now), "{expr} at {now}");
                assert_eq!(
                    got,
                    ts_logical_interpreted(&expr, &eb, w, now),
                    "{expr} at {now}"
                );
                assert_eq!(
                    inc.boundary_scratch(),
                    cold.boundary_scratch(),
                    "{expr} matrix diverged at {now}"
                );
            }
        }
    }

    #[test]
    fn advance_survives_gap_probes_and_earlier_instants() {
        // probes at earlier instants between arrivals must not corrupt
        // the advanced state (they exercise memo + point-probe fallbacks)
        let expr = p(0).iprec(p(1));
        let mut eb = EventBase::new();
        let mut inc = PlanEval::compile(&expr).unwrap();
        for round in 0..12u64 {
            eb.append(et((round % 2) as u32), Oid(round % 3 + 1));
            if round % 3 == 0 {
                eb.tick();
            }
            let now = eb.now();
            let w = Window::from_origin(now);
            for t in 1..=now.raw() {
                assert_eq!(
                    inc.eval(&eb, w, Timestamp(t)),
                    ts_logical_interpreted(&expr, &eb, w, Timestamp(t)),
                    "{expr} at t{t} (round {round})"
                );
            }
        }
    }

    #[test]
    fn consumption_falls_back_to_cold_rebuild() {
        // a moved window lower bound (rule consumption) is the cold path;
        // the advanced state must not leak occurrences the new window hides
        let expr = p(0).iand(p(1));
        let mut eb = EventBase::new();
        let mut inc = PlanEval::compile(&expr).unwrap();
        eb.append(et(0), Oid(1));
        eb.append(et(1), Oid(1));
        let now = eb.now();
        assert!(inc.eval(&eb, Window::from_origin(now), now).is_active());
        // consume: window restarts after `now`
        eb.append(et(1), Oid(1));
        let w = Window::new(now, eb.now());
        let got = inc.eval(&eb, w, eb.now());
        assert_eq!(got, ts_logical_interpreted(&expr, &eb, w, eb.now()));
        assert!(!got.is_active(), "et0 was consumed, pair incomplete");
        // and extending again from the consumed bound advances cleanly
        eb.append(et(0), Oid(1));
        eb.append(et(1), Oid(1));
        let w = Window::new(now, eb.now());
        let got = inc.eval(&eb, w, eb.now());
        assert_eq!(got, ts_logical_interpreted(&expr, &eb, w, eb.now()));
        assert!(got.is_active());
    }

    #[test]
    fn irrelevant_arrivals_keep_boundary_memo() {
        // arrivals outside the boundary's variation types must not wipe
        // the memo (the V(E)-selective invalidation)
        let expr = p(0).iand(p(1));
        let mut eb = EventBase::new();
        let mut pe = PlanEval::compile(&expr).unwrap();
        eb.append(et(0), Oid(1));
        eb.append(et(1), Oid(1));
        let w0 = Window::from_origin(eb.now());
        let t0 = eb.now();
        let want = pe.eval(&eb, w0, t0);
        // irrelevant arrival advances the epoch
        eb.append(et(7), Oid(5));
        assert_eq!(pe.eval(&eb, w0, t0), want, "memoized probe stays exact");
        // relevant arrival invalidates entries whose window covers it
        eb.append(et(1), Oid(2));
        let w1 = Window::from_origin(eb.now());
        assert_eq!(
            pe.eval(&eb, w1, eb.now()),
            ts_logical_interpreted(&expr, &eb, w1, eb.now())
        );
    }

    #[test]
    fn process_wide_cache_is_shared_across_threads() {
        // the same expression evaluated from several threads goes through
        // the sharded global cache and stays exact
        let expr = p(0).iand(p(1));
        let mut eb = EventBase::new();
        eb.append(et(0), Oid(1));
        eb.append(et(1), Oid(1));
        eb.tick();
        let want = ts_logical_interpreted(&expr, &eb, Window::from_origin(eb.now()), eb.now());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let w = Window::from_origin(eb.now());
                    for _ in 0..50 {
                        assert_eq!(ts_logical(&expr, &eb, w, eb.now()), want);
                    }
                });
            }
        });
    }

    #[test]
    fn cache_keeps_scratch_per_event_base() {
        // alternating engines with different event bases must each keep
        // a warm scratchpad instead of resetting a shared one
        let cache = PlanCache::new();
        let expr = p(0).iand(p(1));
        let mut eb1 = EventBase::new();
        let mut eb2 = EventBase::new();
        eb1.append(et(0), Oid(1));
        eb1.append(et(1), Oid(1));
        eb2.append(et(0), Oid(2));
        for _ in 0..3 {
            let v1 = cache.with(&expr, eb1.uid(), PlanEval::compile, |pe| {
                pe.eval(&eb1, Window::from_origin(eb1.now()), eb1.now())
            });
            assert!(v1.is_active());
            let v2 = cache.with(&expr, eb2.uid(), PlanEval::compile, |pe| {
                pe.eval(&eb2, Window::from_origin(eb2.now()), eb2.now())
            });
            assert!(!v2.is_active());
        }
        let shard = cache.shard(&expr).read().unwrap();
        let evals = shard.get(&expr).unwrap().evals.lock().unwrap();
        assert_eq!(evals.len(), 2, "one evaluator per event base");
        assert!(evals.iter().all(|pe| pe.key.is_some()));
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let cache = PlanCache::new();
        // overfill a single logical cache; every expression still works
        for round in 0..3u32 {
            for n in 0..(PLAN_CACHE_SHARDS * PLAN_CACHE_SHARD_CAP + 50) as u32 {
                let expr = p(n).iand(p(n + 1 + round));
                let mut eb = EventBase::new();
                eb.append(et(n), Oid(1));
                eb.append(et(n + 1 + round), Oid(1));
                let v = cache.with(&expr, eb.uid(), PlanEval::compile, |pe| {
                    pe.eval(&eb, Window::from_origin(eb.now()), eb.now())
                });
                assert!(v.is_active());
            }
        }
        for shard in &cache.shards {
            assert!(shard.read().unwrap().len() <= PLAN_CACHE_SHARD_CAP + 1);
        }
    }

    #[test]
    fn compile_rejects_invalid_expressions() {
        assert!(Plan::compile(&p(0).and(p(1)).iand(p(2))).is_err());
        assert!(Plan::compile(&p(0).or(p(1)).inot()).is_err());
    }

    #[test]
    fn compiled_shapes() {
        // A += (B <= A): 2 interned leaf slots, 5 ops (A referenced twice)
        let plan = Plan::compile(&p(0).iand(p(1).iprec(p(0)))).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.boundaries().len(), 1);
        let bp = &plan.boundaries()[0];
        assert_eq!(bp.leaves(), &[et(0), et(1)]);
        assert_eq!(bp.len(), 5);
        assert!(!bp.inot && !bp.widen);
        // root -= is absorbed into the flag; nested -= widens the domain
        let plan = Plan::compile(&p(0).iand(p(1).inot()).inot()).unwrap();
        let bp = &plan.boundaries()[0];
        assert!(bp.inot && bp.widen);
        assert_eq!(bp.len(), 4); // A, B, -=, +=  (root -= not an op)
        // set mixture: two boundaries, shared set leaves interned
        let plan = Plan::compile(&p(0).iand(p(1)).and(p(2).or(p(2)))).unwrap();
        assert_eq!(plan.boundaries().len(), 1);
        assert_eq!(plan.set_leaves.len(), 1); // p2 interned once
    }

    #[test]
    fn active_objects_matches_occurred_semantics() {
        let eb = history();
        let w = Window::from_origin(eb.now());
        let expr = p(0).iand(p(1));
        let mut pe = PlanEval::new(Plan::compile_instance(&expr).unwrap());
        // O1 has both; O2 has et1+et0 (both) ; O3 only et0
        assert_eq!(pe.active_objects(&eb, w), vec![Oid(1), Oid(2)]);
        let mut pe = PlanEval::new(Plan::compile_instance(&p(0).iand(p(1).inot())).unwrap());
        assert_eq!(pe.active_objects(&eb, w), vec![Oid(3)]);
    }
}
