//! Surface AST for programs: class declarations, trigger declarations and
//! transaction scripts.
//!
//! Class and trigger declarations stay in *name* form here (classes and
//! attributes as strings); the facade interpreter resolves them against a
//! schema when it loads a program into an engine. Trigger event
//! expressions, conditions and actions are parsed directly into the
//! `chimera-calculus` / `chimera-rules` ASTs — resolution of event-type
//! names happens at parse time against the schema built so far, so the
//! parser is handed a schema-building context by the interpreter.

use chimera_model::{Schema, Value};
use chimera_rules::condition::Term;
use chimera_rules::{ActionStmt, Condition, ConsumptionMode, CouplingMode, TriggerDef};
use chimera_calculus::EventExpr;

/// One attribute in a class declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrSpec {
    /// Attribute name.
    pub name: String,
    /// Type name: `integer | float | string | boolean | time | object`.
    pub ty: String,
    /// Optional default literal.
    pub default: Option<Value>,
}

/// `define class NAME [extends SUPER] attributes ... end`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Optional superclass.
    pub superclass: Option<String>,
    /// Declared attributes.
    pub attrs: Vec<AttrSpec>,
}

/// `define [immediate|deferred] [consuming|preserving] trigger NAME
/// [for CLASS] events ... [condition ...] [actions ...] [priority N] end`.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerDecl {
    /// Trigger name.
    pub name: String,
    /// Target class name, if targeted.
    pub target: Option<String>,
    /// Parsed event expression.
    pub events: EventExpr,
    /// Parsed condition.
    pub condition: Condition,
    /// Parsed actions.
    pub actions: Vec<ActionStmt>,
    /// Coupling mode.
    pub coupling: CouplingMode,
    /// Consumption mode.
    pub consumption: ConsumptionMode,
    /// Priority.
    pub priority: i32,
}

impl TriggerDecl {
    /// Lower this declaration into an engine rule against `schema`.
    /// Events, condition and actions are already in their resolved ASTs
    /// (the parser resolves names at parse time); only the target class
    /// name remains to be looked up here. The one lowering shared by the
    /// facade interpreter and the wire protocol's `DefineTriggers`.
    pub fn lower(&self, schema: &Schema) -> Result<TriggerDef, crate::ParseError> {
        let target = match &self.target {
            Some(name) => Some(schema.class_by_name(name).map_err(|e| {
                crate::ParseError::new(e.to_string(), crate::Span::default())
            })?),
            None => None,
        };
        Ok(TriggerDef {
            name: self.name.clone(),
            target,
            events: self.events.clone(),
            condition: self.condition.clone(),
            actions: self.actions.clone(),
            coupling: self.coupling,
            consumption: self.consumption,
            priority: self.priority,
        })
    }
}

/// One transaction-script statement. Each statement is a
/// non-interruptible block on its own, except [`ScriptStmt::Block`] which
/// groups several operations into one block.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptStmt {
    /// `begin;`
    Begin,
    /// `commit;`
    Commit,
    /// `rollback;`
    Rollback,
    /// `[let x =] create CLASS(attr: term, ...);`
    Create {
        /// Script variable receiving the new OID, if any.
        binding: Option<String>,
        /// Class name.
        class: String,
        /// Attribute initializers.
        inits: Vec<(String, Term)>,
    },
    /// `modify VAR.attr = term;`
    Modify {
        /// Script variable holding the object.
        var: String,
        /// Attribute name.
        attr: String,
        /// New value.
        value: Term,
    },
    /// `delete VAR;`
    Delete {
        /// Script variable holding the object.
        var: String,
    },
    /// `specialize VAR to CLASS;`
    Specialize {
        /// Script variable holding the object.
        var: String,
        /// Target class name.
        target: String,
    },
    /// `generalize VAR to CLASS;`
    Generalize {
        /// Script variable holding the object.
        var: String,
        /// Target class name.
        target: String,
    },
    /// `select CLASS;`
    Select {
        /// Queried class name.
        class: String,
    },
    /// `raise CLASS#N;` — deliver an external event occurrence (clock or
    /// application event) on the class's channel `N`, as its own block.
    Raise {
        /// Channel-namespace class name.
        class: String,
        /// Channel number.
        channel: u32,
    },
    /// `{ stmt* }` — several operations in one non-interruptible block.
    Block(Vec<ScriptStmt>),
}

/// Top-level program item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A class declaration.
    Class(ClassDecl),
    /// A trigger declaration.
    Trigger(TriggerDecl),
    /// A script statement.
    Stmt(ScriptStmt),
}

/// A full program: items in source order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in order.
    pub items: Vec<Item>,
}

impl Program {
    /// All class declarations, in order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Class(c) => Some(c),
            _ => None,
        })
    }

    /// All trigger declarations, in order.
    pub fn triggers(&self) -> impl Iterator<Item = &TriggerDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Trigger(t) => Some(t),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_accessors() {
        let p = Program {
            items: vec![
                Item::Class(ClassDecl {
                    name: "stock".into(),
                    superclass: None,
                    attrs: vec![],
                }),
                Item::Stmt(ScriptStmt::Begin),
            ],
        };
        assert_eq!(p.classes().count(), 1);
        assert_eq!(p.triggers().count(), 0);
    }
}
