//! The multi-tenant runtime: tenant→home placement, job submission with
//! backpressure, the load-aware scheduler, the flush barrier, and
//! aggregate stats.

use crate::pool::{Pool, SubmitRefused};
use crate::shard::{
    approx_slot_bytes, home_of, recover_home, reopen_home, restore_tenant, spawn_worker, Counters,
    Envelope, Fabric, Home, Tenants, WorkerCtx, WorkerStats,
};
use crate::stats::{RuntimeStats, ShardStats};
use chimera_events::Timestamp;
use chimera_exec::{EngineConfig, EngineStats, Op};
use chimera_lifecycle::{LifecycleConfig, ResidencyLru};
use chimera_model::{ClassId, Oid, Schema};
use chimera_persist::{DurableStore, InMemoryStore, StateStore, SyncPolicy};
use chimera_rules::table::RuleError;
use chimera_rules::{RuleTable, TriggerDef};
use chimera_telemetry::{Gauge, Telemetry};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Barrier, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A tenant identity. Tenants are *homed* on shards by a mixed hash of
/// the raw id (dense id ranges still spread evenly); the home owns the
/// tenant's durable state and backpressure budget, while execution may
/// move to any worker under the load-aware scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

/// A runtime-unique job identity, allocated by
/// [`Runtime::submit_with_reply`] and echoed in the job's [`JobReply`].
/// Ids are issued from one monotone counter across all tenants, so they
/// also order submissions runtime-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// What one completed job did to its tenant engine: the engine-counter
/// delta across the job. `events` is the occurrences the job appended to
/// the tenant's Event Base; `considerations`/`executions` summarize the
/// trigger firings the job provoked (rules considered, actions run) —
/// the per-job view a networked client cannot reconstruct from aggregate
/// stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobSummary {
    /// Event occurrences the job appended.
    pub events: u64,
    /// Rules considered (conditions evaluated) while reacting to the job.
    pub considerations: u64,
    /// Rule actions executed while reacting to the job.
    pub executions: u64,
}

impl JobSummary {
    /// The engine-counter delta across one job.
    pub(crate) fn delta(before: EngineStats, after: EngineStats) -> JobSummary {
        JobSummary {
            events: after.events - before.events,
            considerations: after.considerations - before.considerations,
            executions: after.executions - before.executions,
        }
    }
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The engine operation succeeded.
    Done(JobSummary),
    /// The engine operation failed; the message is the engine error
    /// (also recorded in the tenant's error bookkeeping).
    Error(String),
    /// The job was refused because its home shard's durable store is
    /// unavailable: the store failed an append/commit/snapshot beyond
    /// the bounded transient-retry budget and the home's durability is
    /// *poisoned*. Tenants homed on other shards are unaffected; this
    /// tenant's jobs keep being answered — with this typed refusal — so
    /// no submission ever hangs or leaks. The message is the original
    /// store error. Repair path: [`Runtime::reopen_shard_store`].
    ///
    /// A job demoted here at group-commit time *did* execute in RAM; the
    /// refusal claims only that durability was not acknowledged (the
    /// strongest claim an ambiguous fsync failure allows).
    RefusedDurability(String),
    /// The job panicked mid-flight; the tenant's engine was discarded.
    Panicked,
}

impl JobOutcome {
    /// Did the job succeed?
    pub fn is_done(&self) -> bool {
        matches!(self, JobOutcome::Done(_))
    }
}

/// A per-job completion notification, delivered through the reply slot
/// returned by [`Runtime::submit_with_reply`] once the job is retired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReply {
    /// The id [`Runtime::submit_with_reply`] returned for the job.
    pub job: JobId,
    /// The tenant the job ran for.
    pub tenant: TenantId,
    /// How the job ended.
    pub outcome: JobOutcome,
}

/// One unit of tenant work, executed on the tenant's own engine in
/// submission order. Mirrors the engine's transaction surface.
#[derive(Debug, Clone)]
pub enum Job {
    /// `Engine::begin`.
    Begin,
    /// `Engine::exec_block` — one non-interruptible transaction line.
    ExecBlock(Vec<Op>),
    /// `Engine::raise_external` — a block of external occurrences.
    RaiseExternal(Vec<(ClassId, u32, Oid)>),
    /// `Engine::commit` (drains the tenant's deferred rules first).
    Commit,
    /// `Engine::rollback`.
    Rollback,
    /// `Engine::define_trigger` — a tenant-local rule on top of the
    /// runtime-wide set installed at engine creation. Only valid on
    /// in-memory runtimes: a pre-lowered definition has no durable form,
    /// so durable shards refuse it (use [`Job::DefineTriggerSource`]).
    DefineTrigger(Box<TriggerDef>),
    /// Tenant-local trigger definitions as concrete source text, parsed
    /// and lowered on the shard worker. All of the job's declarations are
    /// defined or none. This is the durable form of trigger definition —
    /// the source line is what the job log records, and recovery re-parses
    /// it deterministically.
    DefineTriggerSource(String),
    /// Test instrumentation: the worker waits on `entered` (proving it
    /// has claimed this job), then on `release`. Lets tests fill a
    /// queue deterministically while one worker is parked.
    #[doc(hidden)]
    Gate {
        /// The worker arrives here first.
        entered: Arc<Barrier>,
        /// ... and parks here until the test releases it.
        release: Arc<Barrier>,
    },
}

/// What to do when a tenant's home shard has `queue_capacity` jobs
/// staged already.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the submitter until a worker claims staged jobs (counted in
    /// [`RuntimeStats::submits_blocked`]).
    Block,
    /// Reject the job with [`RuntimeError::Shed`] (counted in
    /// [`RuntimeStats::jobs_shed`]).
    Shed,
}

/// How workers pick the next tenant to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// Each worker only claims tenants homed on its own shard — the
    /// static hash placement of the pre-pool design, kept as the
    /// measurable baseline (`benches/skew.rs`) and for strict
    /// cache-affinity setups. One hot (or hash-colliding) home
    /// saturates one worker while others idle.
    Pinned,
    /// Workers claim their own home's ready tenants first and *steal*
    /// whole ready tenants from other homes' deques when their own is
    /// empty. Per-tenant serial order is unaffected (a tenant is held
    /// by at most one worker); only placement changes. This is the
    /// default: a skewed tenant population keeps every worker busy.
    #[default]
    LoadAware,
}

/// Durable-storage tuning for [`StorageMode::Durable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Root directory for the runtime's durable state. Each home shard
    /// gets its own subdirectory (`shard-<i>/`), plus a `meta.chi` file
    /// at the root pinning the shard count (tenant→home placement is a
    /// hash, so reopening with a different count would scatter tenants).
    pub dir: PathBuf,
    /// `true` → one fsync per claimed batch (**group commit**);
    /// `false` → one fsync per job (maximum granularity, pays the full
    /// sync cost on every job).
    pub group_commit: bool,
    /// Write a shard snapshot and truncate the job log after this many
    /// durable groups (`0` = never compact).
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Group-commit durability rooted at `dir`, compacting every 1024
    /// groups.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            group_commit: true,
            snapshot_every: 1024,
        }
    }
}

/// Where tenant state lives.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// RAM only — a restart loses every tenant (the pre-durability
    /// behaviour, still the fastest and the default).
    #[default]
    InMemory,
    /// Job-log + snapshot persistence per home shard; tenants survive a
    /// crash and are rebuilt by [`Runtime::recover`].
    Durable(DurabilityConfig),
}

/// A hook applied to every home shard's store as it is built: the seam
/// fault-injection layers (`chimera-chaos`'s `ChaosStore`) use to wrap
/// stores without the runtime knowing anything about them. The function
/// receives the home-shard index and the freshly built store and returns
/// the store the shard actually uses; [`Runtime::reopen_shard_store`]
/// re-applies it to replacement stores, so a wrapped runtime stays
/// wrapped across a repair.
#[derive(Clone)]
pub struct StoreWrap(pub Arc<StoreWrapFn>);

/// The signature a [`StoreWrap`] hook implements: home-shard index plus
/// the freshly built store, returning the store the shard actually uses.
pub type StoreWrapFn = dyn Fn(usize, Box<dyn StateStore>) -> Box<dyn StateStore> + Send + Sync;

impl StoreWrap {
    /// Wrap a plain closure.
    pub fn new(
        f: impl Fn(usize, Box<dyn StateStore>) -> Box<dyn StateStore> + Send + Sync + 'static,
    ) -> StoreWrap {
        StoreWrap(Arc::new(f))
    }
}

impl fmt::Debug for StoreWrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StoreWrap(..)")
    }
}

/// Runtime construction knobs.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker-thread count; also the home-shard count for placement,
    /// backpressure and durable storage. Clamped to at least 1.
    pub shards: usize,
    /// Bounded number of staged (admitted, unclaimed) jobs per home
    /// shard. Clamped to ≥ 1.
    pub queue_capacity: usize,
    /// Full-queue policy.
    pub backpressure: Backpressure,
    /// How workers pick tenants: load-aware stealing (default) or
    /// strict home pinning.
    pub scheduler: Scheduler,
    /// Configuration of every tenant engine, including
    /// `check_workers` for the intra-shard parallel check round.
    pub engine: EngineConfig,
    /// Where tenant state lives (in RAM, or on disk behind the
    /// group-commit job log).
    pub storage: StorageMode,
    /// Optional wrapper applied to every home shard's store as it is
    /// built (fault injection, instrumentation). `None` — the default —
    /// uses the stores as built.
    pub store_wrap: Option<StoreWrap>,
    /// Enable the telemetry layer: per-worker stage histograms
    /// (queue-wait, append, execute, commit, reply), counters and the
    /// postmortem trace ring, all readable via [`Runtime::telemetry`].
    /// `false` — the default — keeps the hot path at its un-instrumented
    /// cost: every telemetry call is a single `None` check and the clock
    /// is never read.
    pub telemetry: bool,
    /// Tenant residency budget. The default
    /// ([`LifecycleConfig::unbounded`]) keeps every tenant engine in RAM
    /// forever — the pre-lifecycle behaviour, with the whole eviction
    /// path compiled down to one boolean check per batch. A bounded
    /// config makes workers evict the coldest idle tenants past the
    /// budget: their engines are snapshotted to their home store
    /// (`tenant-<id>.tsnap` on durable homes) and dropped from RAM, then
    /// rebuilt transparently on their next claimed job. The budget is
    /// fixed for the runtime's life — it is read once at construction
    /// (the recency LRU is only maintained while bounded), so changing
    /// it requires rebuilding the runtime; see [`LifecycleConfig`].
    pub lifecycle: LifecycleConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            shards: 4,
            queue_capacity: 64,
            backpressure: Backpressure::Block,
            scheduler: Scheduler::LoadAware,
            engine: EngineConfig::default(),
            storage: StorageMode::InMemory,
            store_wrap: None,
            telemetry: false,
            lifecycle: LifecycleConfig::default(),
        }
    }
}

/// What [`Runtime::recover`] found on disk, aggregated over the shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tenants rebuilt from shard snapshots.
    pub tenants_recovered: u64,
    /// Logged jobs re-applied on top of the snapshots.
    pub jobs_replayed: u64,
    /// Torn job-log tails that were cut and repaired (at most one per
    /// shard; each entry describes the cut).
    pub torn_tails: Vec<String>,
}

/// Runtime-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A trigger in the runtime-wide set failed validation.
    InvalidTrigger(RuleError),
    /// The job was shed: the tenant's home shard had `queue_capacity`
    /// jobs staged under the [`Backpressure::Shed`] policy.
    Shed {
        /// Tenant whose job was rejected.
        tenant: TenantId,
    },
    /// The worker threads are gone (the runtime is shut down, or a
    /// worker thread was killed).
    WorkerGone,
    /// The durable storage layer failed (open, recovery, or a
    /// shard-count mismatch against the directory's meta file).
    Persist(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidTrigger(e) => write!(f, "invalid runtime trigger: {e}"),
            RuntimeError::Shed { tenant } => {
                write!(f, "job for tenant {} shed: shard queue full", tenant.0)
            }
            RuntimeError::WorkerGone => write!(f, "shard worker thread is gone"),
            RuntimeError::Persist(msg) => write!(f, "durable storage error: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The sharded multi-tenant runtime. See the crate docs for the
/// architecture; in short: `submit` stages a tenant's job in the
/// admission pool against the tenant's home shard, workers claim ready
/// tenants (stealing across homes under [`Scheduler::LoadAware`]) and
/// run their batches, `flush` waits for every staged job to retire, and
/// `stats` aggregates.
///
/// The handle is `Sync`: feeder threads submit through a shared
/// reference (see `examples/concurrent_feeds.rs`).
pub struct Runtime {
    fabric: Fabric,
    handles: Vec<Option<JoinHandle<()>>>,
    config: RuntimeConfig,
    next_job: AtomicU64,
}

impl Runtime {
    /// Build a runtime over `schema`. Every tenant engine is created on
    /// the tenant's first job, with all of `triggers` pre-defined;
    /// the set is validated here so engine creation cannot fail later.
    ///
    /// With [`StorageMode::Durable`] this *is* recovery: any tenants
    /// already on disk are rebuilt before the first job is served (use
    /// [`Runtime::recover`] to also see what was found).
    pub fn new(
        schema: Schema,
        triggers: Vec<TriggerDef>,
        config: RuntimeConfig,
    ) -> Result<Runtime, RuntimeError> {
        Runtime::recover(schema, triggers, config).map(|(rt, _)| rt)
    }

    /// Build a runtime and report what its storage layer recovered:
    /// tenants rebuilt from snapshots, logged jobs replayed on top, and
    /// any torn log tail that was cut. In-memory runtimes recover
    /// nothing and report an empty [`RecoveryReport`].
    pub fn recover(
        schema: Schema,
        triggers: Vec<TriggerDef>,
        config: RuntimeConfig,
    ) -> Result<(Runtime, RecoveryReport), RuntimeError> {
        let mut probe = RuleTable::new();
        for def in &triggers {
            probe
                .define(def.clone(), Timestamp::ZERO)
                .map_err(RuntimeError::InvalidTrigger)?;
        }
        let shard_count = config.shards.max(1);
        let capacity = config.queue_capacity.max(1);
        let triggers = Arc::new(triggers);

        let mut homes = Vec::with_capacity(shard_count);
        let mut snapshot_every = 0;
        for i in 0..shard_count {
            let (store, snap_every) =
                make_store(&config.storage, config.store_wrap.as_ref(), shard_count, i)?;
            snapshot_every = snap_every;
            homes.push(Home::new(i, store));
        }

        // recovery runs here, on the constructing thread, home by home —
        // the registry is fully rebuilt before any worker exists
        let tenants = Arc::new(Tenants::new());
        let counters = Arc::new(Counters::default());
        // recovery is deliberately unmeasured (Telemetry::off): its jobs
        // replay before any worker or client exists, so folding them into
        // the live stage histograms would only skew the first snapshot
        let recovery_ctx = WorkerCtx::new(
            schema.clone(),
            Arc::clone(&triggers),
            config.engine.clone(),
            Telemetry::off(),
            0,
        );
        let mut report = RecoveryReport::default();
        for home in &homes {
            let stats = recover_home(home, &tenants, &counters, &recovery_ctx)
                .map_err(RuntimeError::Persist)?;
            report.tenants_recovered += stats.tenants_recovered;
            report.jobs_replayed += stats.jobs_replayed;
            if let Some(torn) = stats.torn {
                report.torn_tails.push(format!("shard {}: {torn}", home.index));
            }
        }

        let fabric = Fabric {
            pool: Arc::new(Pool::new(shard_count, capacity, config.scheduler)),
            tenants,
            homes: Arc::new(homes),
            counters,
            workers: Arc::new((0..shard_count).map(|_| WorkerStats::default()).collect()),
            schema,
            triggers,
            engine_cfg: config.engine.clone(),
            snapshot_every,
            telemetry: if config.telemetry {
                Telemetry::new(shard_count)
            } else {
                Telemetry::off()
            },
            lifecycle: config.lifecycle,
            lru: Arc::new(Mutex::new(ResidencyLru::new())),
        };
        // recovery ran with Telemetry::off and before the LRU existed:
        // seed both from the rebuilt registry so the residency gauge and
        // the eviction order are correct from the first claim. (Tenants
        // recovery left parked in the evicted maps have no engine and
        // are deliberately in neither.)
        let recovered = fabric.tenants.arcs();
        fabric
            .telemetry
            .gauge_add(Gauge::TenantsResident, recovered.len() as i64);
        if fabric.lifecycle.is_bounded() {
            let mut lru = fabric.lru.lock().unwrap_or_else(PoisonError::into_inner);
            for (tenant, arc) in &recovered {
                let slot = arc.lock().unwrap_or_else(PoisonError::into_inner);
                lru.touch(*tenant, home_of(*tenant, shard_count), approx_slot_bytes(&slot));
            }
        }
        let handles = (0..shard_count)
            .map(|i| Some(spawn_worker(i, fabric.clone())))
            .collect();
        Ok((
            Runtime {
                fabric,
                handles,
                config,
                next_job: AtomicU64::new(0),
            },
            report,
        ))
    }

    /// The storage mode the runtime was built with.
    pub fn storage(&self) -> &StorageMode {
        &self.config.storage
    }

    /// The runtime's telemetry handle: stage histograms, counters,
    /// gauges and the postmortem trace ring. With
    /// [`RuntimeConfig::telemetry`] off this is the no-op
    /// [`Telemetry::off`] handle — `snapshot()` returns a disabled
    /// [`chimera_telemetry::MetricsSnapshot`] and `recent()` is empty.
    /// The net layer shares this same handle, so one snapshot covers
    /// runtime *and* server-side series.
    pub fn telemetry(&self) -> &Telemetry {
        &self.fabric.telemetry
    }

    /// Number of shards (worker threads / home shards).
    pub fn shard_count(&self) -> usize {
        self.fabric.homes.len()
    }

    /// The schema every tenant engine is built over.
    pub fn schema(&self) -> &Schema {
        &self.fabric.schema
    }

    /// The *home* shard of a tenant (stable for the runtime's life): the
    /// owner of its durable state and backpressure budget. Under
    /// [`Scheduler::LoadAware`] execution may happen on any worker;
    /// under [`Scheduler::Pinned`] the home's worker is also the only
    /// executor.
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        home_of(tenant.0, self.fabric.homes.len())
    }

    /// Submit one job for a tenant. Stages it in the admission pool
    /// (preserving per-tenant FIFO order); a home shard at capacity
    /// blocks or sheds per the configured [`Backpressure`].
    /// Fire-and-forget: outcomes surface only through the per-tenant
    /// error bookkeeping and the aggregate stats — use
    /// [`Runtime::submit_with_reply`] for a per-job completion.
    pub fn submit(&self, tenant: TenantId, job: Job) -> Result<(), RuntimeError> {
        self.submit_inner(tenant, job, None)
    }

    /// Submit one job and get a per-job completion path back: a
    /// [`JobId`] plus a capacity-1 reply slot on which the claiming
    /// worker delivers exactly one [`JobReply`] — success with the job's
    /// engine-counter summary, the engine error message, or a panic
    /// notice — once the job is retired. Blocking on the receiver
    /// observes the job's completion *without* the flush-and-poll dance;
    /// dropping the receiver turns the job back into fire-and-forget.
    ///
    /// A shed or worker-gone submission fails here, at submit time, and
    /// no reply is ever delivered for it.
    pub fn submit_with_reply(
        &self,
        tenant: TenantId,
        job: Job,
    ) -> Result<(JobId, Receiver<JobReply>), RuntimeError> {
        let id = JobId(self.next_job.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = sync_channel(1);
        self.submit_inner(tenant, job, Some((id, tx)))?;
        Ok((id, rx))
    }

    fn submit_inner(
        &self,
        tenant: TenantId,
        job: Job,
        reply: Option<(JobId, SyncSender<JobReply>)>,
    ) -> Result<(), RuntimeError> {
        let home = self.shard_of(tenant);
        let env = Envelope {
            tenant,
            job,
            reply,
            queued_at: self.fabric.telemetry.start(),
        };
        match self
            .fabric
            .pool
            .submit(home, tenant.0, env, self.config.backpressure)
        {
            Ok(()) => Ok(()),
            Err(SubmitRefused::Shed) => Err(RuntimeError::Shed { tenant }),
            Err(SubmitRefused::Closed) => Err(RuntimeError::WorkerGone),
        }
    }

    /// Convenience: `submit(tenant, Job::Begin)`.
    pub fn begin(&self, tenant: TenantId) -> Result<(), RuntimeError> {
        self.submit(tenant, Job::Begin)
    }
    /// Convenience: `submit(tenant, Job::ExecBlock(ops))`.
    pub fn exec_block(&self, tenant: TenantId, ops: Vec<Op>) -> Result<(), RuntimeError> {
        self.submit(tenant, Job::ExecBlock(ops))
    }
    /// Convenience: `submit(tenant, Job::RaiseExternal(events))`.
    pub fn raise_external(
        &self,
        tenant: TenantId,
        events: Vec<(ClassId, u32, Oid)>,
    ) -> Result<(), RuntimeError> {
        self.submit(tenant, Job::RaiseExternal(events))
    }
    /// Convenience: `submit(tenant, Job::Commit)`.
    pub fn commit(&self, tenant: TenantId) -> Result<(), RuntimeError> {
        self.submit(tenant, Job::Commit)
    }
    /// Convenience: `submit(tenant, Job::Rollback)`.
    pub fn rollback(&self, tenant: TenantId) -> Result<(), RuntimeError> {
        self.submit(tenant, Job::Rollback)
    }
    /// Convenience: `submit(tenant, Job::DefineTriggerSource(src))`.
    pub fn define_trigger_source(
        &self,
        tenant: TenantId,
        src: impl Into<String>,
    ) -> Result<(), RuntimeError> {
        self.submit(tenant, Job::DefineTriggerSource(src.into()))
    }

    /// The flush barrier: wait until every job accepted so far has been
    /// processed. Errors with [`RuntimeError::WorkerGone`] if a worker
    /// thread died with jobs still staged.
    pub fn flush(&self) -> Result<(), RuntimeError> {
        let gone = || {
            self.handles
                .iter()
                .any(|h| h.as_ref().is_none_or(|w| w.is_finished()))
        };
        self.fabric
            .pool
            .flush(gone)
            .map_err(|()| RuntimeError::WorkerGone)
    }

    /// Run `f` over a tenant's engine. Returns `None` for a tenant that
    /// has never submitted a job (no engine exists). Takes the tenant's
    /// slot lock, so it serializes against the workers between jobs —
    /// call [`Runtime::flush`] first for a quiesced view.
    ///
    /// An *evicted* tenant is inspectable too: `f` runs over a throwaway
    /// engine rebuilt from the tenant's parked snapshot — a read-only
    /// peek that does **not** rehydrate (only a claimed job does), so
    /// mutations made through it are discarded.
    pub fn with_tenant<R>(
        &self,
        tenant: TenantId,
        f: impl FnOnce(&mut chimera_exec::Engine) -> R,
    ) -> Option<R> {
        if let Some(slot) = self.fabric.tenants.get(tenant.0) {
            let mut slot = slot.lock().unwrap_or_else(PoisonError::into_inner);
            return Some(f(&mut slot.engine));
        }
        let home = &self.fabric.homes[self.shard_of(tenant)];
        let snap = home.evicted_lock().get(&tenant.0).cloned()?;
        let ctx = WorkerCtx::new(
            self.fabric.schema.clone(),
            Arc::clone(&self.fabric.triggers),
            self.config.engine.clone(),
            Telemetry::off(),
            0,
        );
        let mut slot = restore_tenant(&snap, &ctx).ok()?;
        Some(f(&mut slot.engine))
    }

    /// A tenant's job-error bookkeeping: `(errors, last error message)`.
    /// `None` for tenants without an engine. Works on evicted tenants
    /// (read from the parked snapshot).
    pub fn tenant_errors(&self, tenant: TenantId) -> Option<(u64, Option<String>)> {
        if let Some(slot) = self.fabric.tenants.get(tenant.0) {
            let slot = slot.lock().unwrap_or_else(PoisonError::into_inner);
            return Some((slot.job_errors, slot.last_error.clone()));
        }
        let home = &self.fabric.homes[self.shard_of(tenant)];
        let evicted = home.evicted_lock();
        let snap = evicted.get(&tenant.0)?;
        Some((snap.job_errors, snap.last_error.clone()))
    }

    /// Operator repair path for a *poisoned* home shard: build a
    /// replacement store for `shard` (same [`StorageMode`], same
    /// directory, [`StoreWrap`] re-applied), snapshot every live tenant
    /// homed there into it, swap it in and clear the poison — without
    /// restarting the runtime or touching any other shard. Also works on
    /// a healthy home (the swap is then just a forced compaction).
    ///
    /// Call [`Runtime::flush`] first: the home must have no batch
    /// mid-flight and every homed tenant must be uncontended and outside
    /// a transaction, otherwise this returns an error and changes
    /// nothing. The live in-RAM tenants are authoritative — jobs that
    /// were answered with [`JobOutcome::RefusedDurability`] when the old
    /// store died have still executed, so the reopen makes their effects
    /// durable via the fresh snapshot (the refusal only ever claimed
    /// "not acknowledged as durable at completion time").
    pub fn reopen_shard_store(&self, shard: usize) -> Result<(), RuntimeError> {
        let homes = self.fabric.homes.len();
        let home = self
            .fabric
            .homes
            .get(shard)
            .ok_or_else(|| RuntimeError::Persist(format!("no such shard: {shard}")))?;
        let (store, _) = make_store(
            &self.config.storage,
            self.config.store_wrap.as_ref(),
            homes,
            shard,
        )?;
        reopen_home(
            home,
            homes,
            &self.fabric.tenants,
            store,
            &self.fabric.telemetry,
        )
        .map_err(RuntimeError::Persist)
    }

    /// Aggregate counters over every shard, worker and tenant engine,
    /// including the per-home-shard breakdown
    /// ([`RuntimeStats::per_shard`]) that makes skew visible. Exact
    /// after a [`Runtime::flush`]; a live snapshot otherwise.
    pub fn stats(&self) -> RuntimeStats {
        let f = &self.fabric;
        let homes = f.homes.len();
        let p = f.pool.progress();
        let mut out = RuntimeStats {
            shards: homes,
            ..RuntimeStats::default()
        };
        let mut per_shard: Vec<ShardStats> = (0..homes)
            .map(|i| ShardStats {
                jobs_submitted: p.submitted[i],
                jobs_executed: f.workers[i].executed.load(Ordering::Relaxed),
                steals: f.workers[i].steals.load(Ordering::Relaxed),
                jobs_shed: f.pool.shed[i].load(Ordering::Relaxed),
                submits_blocked: f.pool.blocked[i].load(Ordering::Relaxed),
                queue_depth: p.staged[i],
                tenants: 0,
                store_retries: 0,
                poisoned: false,
            })
            .collect();
        for (i, s) in per_shard.iter().enumerate() {
            out.jobs_submitted += s.jobs_submitted;
            out.jobs_processed += p.processed[i];
            out.jobs_shed += s.jobs_shed;
            out.submits_blocked += s.submits_blocked;
            out.steals += s.steals;
            out.ready_queue_depth += s.queue_depth;
        }
        out.job_errors = f.counters.errors.load(Ordering::Relaxed);
        out.job_panics = f.counters.panics.load(Ordering::Relaxed);
        for (i, home) in f.homes.iter().enumerate() {
            out.wal_appends += home.wal_appends.load(Ordering::Relaxed);
            out.wal_syncs += home.wal_syncs.load(Ordering::Relaxed);
            out.wal_sync_nanos += home.wal_sync_nanos.load(Ordering::Relaxed);
            out.snapshots += home.snapshots.load(Ordering::Relaxed);
            out.tenants_recovered += home.recovered_tenants.load(Ordering::Relaxed);
            out.jobs_replayed += home.replayed_jobs.load(Ordering::Relaxed);
            out.evictions += home.evictions.load(Ordering::Relaxed);
            out.rehydrations += home.rehydrations.load(Ordering::Relaxed);
            let retries = home.store_retries.load(Ordering::Relaxed);
            out.store_retries += retries;
            per_shard[i].store_retries = retries;
            if home.is_poisoned() {
                out.shards_poisoned += 1;
                per_shard[i].poisoned = true;
            }
            // evicted tenants still belong to the aggregate: their engine
            // counters live in the parked snapshot
            for snap in home.evicted_lock().values() {
                per_shard[i].tenants += 1;
                out.tenants += 1;
                out.add_engine(EngineStats {
                    blocks: snap.stats[0],
                    events: snap.stats[1],
                    considerations: snap.stats[2],
                    executions: snap.stats[3],
                    commits: snap.stats[4],
                    rollbacks: snap.stats[5],
                });
            }
        }
        for (tenant, slot) in f.tenants.arcs() {
            per_shard[home_of(tenant, homes)].tenants += 1;
            out.tenants += 1;
            out.tenants_resident += 1;
            let slot = slot.lock().unwrap_or_else(PoisonError::into_inner);
            out.add_engine(slot.engine.stats());
            out.add_support(slot.engine.support_stats());
        }
        out.per_shard = per_shard;
        out
    }

    /// Graceful shutdown: close the admission pool, let the workers
    /// drain every staged job (cross-home claims are allowed during the
    /// drain regardless of scheduler mode, so nothing strands behind an
    /// exiting worker), join them, and return the final (exact) stats.
    /// No accepted job is silently dropped — every job runs and every
    /// requested [`JobReply`] is delivered before this returns. Only if
    /// a worker thread is already *gone* (it was killed out from under
    /// the runtime) are leftover jobs discarded, and those are accounted
    /// under [`RuntimeStats::jobs_shed`].
    pub fn shutdown(mut self) -> RuntimeStats {
        self.stop_workers();
        self.stats()
    }

    /// Close the pool, join the workers, and reconcile the accounting.
    /// Deterministic: after this returns every home's `processed` equals
    /// its `submitted`, with any shortfall (jobs abandoned because every
    /// worker died) moved into the shed counter.
    fn stop_workers(&mut self) {
        self.fabric.pool.close();
        for handle in &mut self.handles {
            if let Some(worker) = handle.take() {
                let _ = worker.join();
            }
        }
        self.fabric.pool.reconcile();
    }
}

/// Build one home shard's store for the configured mode, applying the
/// configured [`StoreWrap`] (if any). Returns the store plus the
/// `snapshot_every` compaction threshold.
fn make_store(
    storage: &StorageMode,
    wrap: Option<&StoreWrap>,
    shards: usize,
    index: usize,
) -> Result<(Box<dyn StateStore>, u64), RuntimeError> {
    let (store, snap_every): (Box<dyn StateStore>, u64) = match storage {
        StorageMode::InMemory => (Box::new(InMemoryStore), 0),
        StorageMode::Durable(cfg) => {
            if index == 0 {
                check_meta(&cfg.dir, shards)?;
            }
            let policy = if cfg.group_commit {
                SyncPolicy::GroupCommit
            } else {
                SyncPolicy::EveryJob
            };
            let store = DurableStore::open(&cfg.dir.join(format!("shard-{index}")), policy)
                .map_err(|e| RuntimeError::Persist(e.to_string()))?;
            (Box::new(store), cfg.snapshot_every)
        }
    };
    let store = match wrap {
        Some(w) => (w.0)(index, store),
        None => store,
    };
    Ok((store, snap_every))
}

/// Pin the shard count in the durable directory's meta file. Placement
/// is `hash(tenant) % shards`, so reopening a directory with a different
/// count would route tenants to homes that never logged them — refuse
/// loudly instead (re-sharding a durable directory is future work).
fn check_meta(dir: &std::path::Path, shards: usize) -> Result<(), RuntimeError> {
    let io = |e: std::io::Error| RuntimeError::Persist(format!("meta file: {e}"));
    std::fs::create_dir_all(dir).map_err(io)?;
    let meta = dir.join("meta.chi");
    match std::fs::read_to_string(&meta) {
        Ok(text) => {
            let recorded = text
                .trim()
                .strip_prefix("shards ")
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| {
                    RuntimeError::Persist(format!("unreadable meta file {}", meta.display()))
                })?;
            if recorded != shards {
                return Err(RuntimeError::Persist(format!(
                    "directory {} was created with {recorded} shards but the runtime is \
                     configured with {shards}; tenant placement would not match",
                    dir.display()
                )));
            }
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            std::fs::write(&meta, format!("shards {shards}\n")).map_err(io)
        }
        Err(e) => Err(io(e)),
    }
}

impl Drop for Runtime {
    /// Dropping the runtime is a graceful shutdown too: the pool is
    /// drained and workers joined (see [`Runtime::shutdown`]), so a
    /// runtime going out of scope never silently drops accepted jobs.
    fn drop(&mut self) {
        self.stop_workers();
    }
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("shards", &self.fabric.homes.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::EventExpr;
    use chimera_events::EventType;
    use chimera_model::{AttrDef, AttrType, SchemaBuilder, Value};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class(
            "stock",
            None,
            vec![
                AttrDef::new("quantity", AttrType::Integer),
                AttrDef::with_default("max_quantity", AttrType::Integer, Value::Int(100)),
            ],
        )
        .unwrap();
        b.build()
    }

    fn tick_trigger(schema: &Schema) -> TriggerDef {
        let stock = schema.class_by_name("stock").unwrap();
        let mut def = TriggerDef::new(
            "onTick",
            EventExpr::prim(EventType::external(stock, 1)),
        );
        def.actions = vec![chimera_rules::ActionStmt::Create {
            class: "stock".into(),
            inits: vec![],
        }];
        def
    }

    fn cfg(shards: usize) -> RuntimeConfig {
        RuntimeConfig {
            shards,
            queue_capacity: 8,
            backpressure: Backpressure::Block,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn tenants_are_isolated_and_jobs_ordered() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let rt = Runtime::new(s, vec![tick_trigger(&schema())], cfg(3)).unwrap();
        for t in 0..16u64 {
            rt.begin(TenantId(t)).unwrap();
            for _ in 0..=(t % 4) {
                rt.raise_external(TenantId(t), vec![(stock, 1, Oid(0))]).unwrap();
            }
            rt.commit(TenantId(t)).unwrap();
        }
        rt.flush().unwrap();
        for t in 0..16u64 {
            let extent = rt
                .with_tenant(TenantId(t), |e| e.extent(stock).len())
                .unwrap();
            // one object per external tick, per tenant — no cross-talk
            assert_eq!(extent, (t % 4) as usize + 1, "tenant {t}");
            assert_eq!(rt.tenant_errors(TenantId(t)), Some((0, None)));
        }
        let stats = rt.stats();
        assert_eq!(stats.tenants, 16);
        assert_eq!(stats.jobs_processed, stats.jobs_submitted);
        assert_eq!(stats.engine.commits, 16);
        assert_eq!(stats.jobs_shed + stats.job_errors + stats.job_panics, 0);
    }

    #[test]
    fn shed_policy_rejects_when_queue_full() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let capacity = 3;
        let rt = Runtime::new(
            s,
            vec![],
            RuntimeConfig {
                shards: 1,
                queue_capacity: capacity,
                backpressure: Backpressure::Shed,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let tenant = TenantId(7);
        let entered = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        rt.submit(
            tenant,
            Job::Gate {
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            },
        )
        .unwrap();
        // the worker is now provably parked inside the gate job and
        // nothing is staged: the next `capacity` submissions fill the
        // home shard...
        entered.wait();
        rt.begin(tenant).unwrap();
        for _ in 0..capacity - 1 {
            rt.raise_external(tenant, vec![(stock, 1, Oid(0))]).unwrap();
        }
        // ...and the one after that is shed
        assert_eq!(
            rt.commit(tenant),
            Err(RuntimeError::Shed { tenant })
        );
        release.wait();
        rt.flush().unwrap();
        let stats = rt.stats();
        assert_eq!(stats.jobs_shed, 1);
        assert_eq!(stats.jobs_processed, 1 + capacity as u64);
        assert_eq!(stats.submits_blocked, 0);
    }

    #[test]
    fn block_policy_waits_out_a_full_queue() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let rt = Runtime::new(
            s,
            vec![],
            RuntimeConfig {
                shards: 1,
                queue_capacity: 1,
                backpressure: Backpressure::Block,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let tenant = TenantId(1);
        let entered = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        rt.submit(
            tenant,
            Job::Gate {
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            },
        )
        .unwrap();
        entered.wait();
        rt.begin(tenant).unwrap(); // fills the 1-slot budget
        std::thread::scope(|scope| {
            let rt = &rt;
            let feeder = scope.spawn(move || {
                // budget full, worker parked: this submission must block
                // until the gate opens, then drain normally
                rt.raise_external(tenant, vec![(stock, 1, Oid(0))]).unwrap();
                rt.commit(tenant).unwrap();
            });
            // the worker is parked and the home is at capacity, so the
            // feeder *will* hit the blocked path — wait until it provably
            // has before opening the gate (counted before the wait)
            while rt.stats().submits_blocked == 0 {
                std::thread::yield_now();
            }
            release.wait();
            feeder.join().unwrap();
        });
        rt.flush().unwrap();
        let stats = rt.stats();
        assert!(stats.submits_blocked >= 1, "blocked {}", stats.submits_blocked);
        assert_eq!(stats.jobs_shed, 0);
        assert_eq!(stats.engine.commits, 1);
        assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    }

    #[test]
    fn job_errors_are_recorded_not_fatal() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let rt = Runtime::new(s, vec![], cfg(2)).unwrap();
        let tenant = TenantId(3);
        // commit without a transaction: an engine error, not a crash
        rt.commit(tenant).unwrap();
        rt.begin(tenant).unwrap();
        rt.raise_external(tenant, vec![(stock, 1, Oid(0))]).unwrap();
        rt.commit(tenant).unwrap();
        rt.flush().unwrap();
        let (errors, last) = rt.tenant_errors(tenant).unwrap();
        assert_eq!(errors, 1);
        assert!(last.unwrap().contains("no active transaction"));
        let stats = rt.stats();
        assert_eq!(stats.job_errors, 1);
        assert_eq!(stats.engine.commits, 1);
    }

    #[test]
    fn invalid_runtime_trigger_rejected_at_construction() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let a = EventExpr::prim(EventType::external(stock, 0));
        let b = EventExpr::prim(EventType::external(stock, 1));
        let c = EventExpr::prim(EventType::external(stock, 2));
        // set operators inside an instance operator: ill-formed (§3.2)
        let bad = TriggerDef::new("bad", a.and(b).iand(c));
        match Runtime::new(s, vec![bad], cfg(1)) {
            Err(RuntimeError::InvalidTrigger(_)) => {}
            other => panic!("expected InvalidTrigger, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_returns_final_stats() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let rt = Runtime::new(s, vec![], cfg(2)).unwrap();
        for t in 0..4u64 {
            rt.begin(TenantId(t)).unwrap();
            rt.exec_block(
                TenantId(t),
                vec![Op::Create {
                    class: stock,
                    inits: vec![],
                }],
            )
            .unwrap();
            rt.commit(TenantId(t)).unwrap();
        }
        let stats = rt.shutdown();
        assert_eq!(stats.tenants, 4);
        assert_eq!(stats.engine.commits, 4);
        assert_eq!(stats.engine.blocks, 4);
        assert_eq!(stats.jobs_processed, 12);
    }

    #[test]
    fn replies_carry_summaries_and_errors_without_flush() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let rt = Runtime::new(s, vec![tick_trigger(&schema())], cfg(2)).unwrap();
        let t = TenantId(9);
        // an engine error answered as an Error outcome, not a counter
        let (id0, rx0) = rt.submit_with_reply(t, Job::Commit).unwrap();
        let reply = rx0.recv().unwrap();
        assert_eq!(reply.job, id0);
        assert_eq!(reply.tenant, t);
        match &reply.outcome {
            JobOutcome::Error(msg) => assert!(msg.contains("no active transaction")),
            other => panic!("expected Error, got {other:?}"),
        }
        rt.begin(t).unwrap();
        // the tick trigger fires: 2 external events + 1 create from the
        // rule action, one consideration, one execution — all in the
        // job's own summary, observed with no flush anywhere
        let (_, rx1) = rt
            .submit_with_reply(t, Job::RaiseExternal(vec![(stock, 1, Oid(0)), (stock, 1, Oid(1))]))
            .unwrap();
        match rx1.recv().unwrap().outcome {
            JobOutcome::Done(sum) => {
                assert_eq!(sum.events, 3);
                assert_eq!(sum.considerations, 1);
                assert_eq!(sum.executions, 1);
            }
            other => panic!("expected Done, got {other:?}"),
        }
        let (_, rx2) = rt.submit_with_reply(t, Job::Commit).unwrap();
        assert!(rx2.recv().unwrap().outcome.is_done());
        // ids are monotone across the runtime
        let (id3, rx3) = rt.submit_with_reply(TenantId(2), Job::Begin).unwrap();
        assert!(id3 > id0);
        assert!(rx3.recv().unwrap().outcome.is_done());
    }

    #[test]
    fn drop_and_shutdown_drain_queued_jobs() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let rt = Runtime::new(s, vec![], cfg(1)).unwrap();
        let t = TenantId(4);
        let mut rxs = Vec::new();
        let (_, rx) = rt.submit_with_reply(t, Job::Begin).unwrap();
        rxs.push(rx);
        for _ in 0..6 {
            let (_, rx) = rt
                .submit_with_reply(t, Job::RaiseExternal(vec![(stock, 1, Oid(0))]))
                .unwrap();
            rxs.push(rx);
        }
        let (_, rx) = rt.submit_with_reply(t, Job::Commit).unwrap();
        rxs.push(rx);
        // no flush: drop the runtime with jobs plausibly still staged.
        // The drop must drain and join, so every reply is already there.
        drop(rt);
        for (i, rx) in rxs.into_iter().enumerate() {
            let reply = rx.try_recv().unwrap_or_else(|_| panic!("job {i} dropped"));
            assert!(reply.outcome.is_done(), "job {i}: {:?}", reply.outcome);
        }

        // and shutdown() reports exact, fully-drained accounting
        let rt = Runtime::new(schema(), vec![], cfg(2)).unwrap();
        for t in 0..8u64 {
            rt.begin(TenantId(t)).unwrap();
            rt.raise_external(TenantId(t), vec![(stock, 1, Oid(0))]).unwrap();
            rt.commit(TenantId(t)).unwrap();
        }
        let stats = rt.shutdown();
        assert_eq!(stats.jobs_processed, stats.jobs_submitted);
        assert_eq!(stats.jobs_submitted, 24);
        assert_eq!(stats.jobs_shed, 0);
    }

    #[test]
    fn tenants_spread_across_shards() {
        let rt = Runtime::new(schema(), vec![], cfg(4)).unwrap();
        let mut seen = [false; 4];
        for t in 0..64u64 {
            seen[rt.shard_of(TenantId(t))] = true;
        }
        assert!(seen.iter().all(|&s| s), "dense ids hit every shard");
    }

    #[test]
    fn fifo_holds_under_forced_stealing() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let rt = Runtime::new(
            s,
            vec![],
            RuntimeConfig {
                shards: 2,
                queue_capacity: 64,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        // two distinct tenants homed on the same shard
        let mut homed = (0u64..).map(TenantId).filter(|t| rt.shard_of(*t) == 0);
        let parked = homed.next().unwrap();
        let busy = homed.next().unwrap();
        let entered = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        rt.submit(
            parked,
            Job::Gate {
                entered: Arc::clone(&entered),
                release: Arc::clone(&release),
            },
        )
        .unwrap();
        // one worker is provably parked on `parked`'s claim; `busy` is
        // homed on the same shard, so the *other* worker must claim it —
        // whichever worker holds the gate, one of the two claims crossed
        // shards (a steal)
        entered.wait();
        let jobs = 50u64;
        rt.begin(busy).unwrap();
        for i in 0..jobs {
            rt.raise_external(busy, vec![(stock, 1, Oid(i))]).unwrap();
        }
        rt.commit(busy).unwrap();
        // `busy` drains while the gate is still parked (can't flush: the
        // gate job itself is unfinished)
        while rt.stats().jobs_processed < jobs + 2 {
            std::thread::yield_now();
        }
        release.wait();
        rt.flush().unwrap();
        let stats = rt.stats();
        assert!(stats.steals >= 1, "one of the claims crossed shards");
        assert_eq!(rt.tenant_errors(busy), Some((0, None)));
        // the event log records exactly the submission order: per-tenant
        // FIFO held even though the tenant ran on a stolen claim
        let oids = rt
            .with_tenant(busy, |e| {
                e.event_base().iter().map(|o| o.oid).collect::<Vec<_>>()
            })
            .unwrap();
        assert_eq!(oids, (0..jobs).map(Oid).collect::<Vec<_>>());
    }

    #[test]
    fn pinned_scheduler_never_steals() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let rt = Runtime::new(
            s,
            vec![],
            RuntimeConfig {
                shards: 4,
                scheduler: Scheduler::Pinned,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        for t in 0..32u64 {
            rt.begin(TenantId(t)).unwrap();
            rt.raise_external(TenantId(t), vec![(stock, 1, Oid(0))]).unwrap();
            rt.commit(TenantId(t)).unwrap();
        }
        rt.flush().unwrap();
        let stats = rt.stats();
        assert_eq!(stats.steals, 0, "pinned mode never crosses shards");
        assert_eq!(stats.per_shard.len(), 4);
        // under pinning each worker executed exactly its own home's jobs
        for (i, shard) in stats.per_shard.iter().enumerate() {
            assert_eq!(
                shard.jobs_executed, shard.jobs_submitted,
                "shard {i} executed its own submissions"
            );
            assert_eq!(shard.steals, 0);
        }
        assert_eq!(stats.jobs_processed, 96);
    }
}
