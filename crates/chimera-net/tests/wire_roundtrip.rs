//! Codec property suite: `decode(encode(x)) == x` on arbitrary
//! messages, and *no* input — truncated, garbage-prefixed, bit-flipped,
//! or lying about its length — makes the decoder panic or allocate
//! unboundedly.

use chimera_model::{Oid, TotalF64, Value};
use chimera_net::wire::{read_frame, write_frame, WireError};
use chimera_net::{
    ExternalEvent, Request, Response, TenantQuery, TenantReply, TriggerOutcome, WireDurability,
    WireJob, WireOp, WireOutcome, WireStats,
};
use chimera_telemetry::{HistSnapshot, MetricsSnapshot, TraceEvent, TraceKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

// ------------------------------------------------- arbitrary generators

fn arb_string(rng: &mut StdRng) -> String {
    let len = rng.random_range(0..12usize);
    (0..len)
        .map(|_| char::from_u32(rng.random_range(0x20..0x2FF)).unwrap_or('x'))
        .collect()
}

fn arb_value(rng: &mut StdRng) -> Value {
    match rng.random_range(0..7u32) {
        0 => Value::Null,
        1 => Value::Int(rng.next_u64() as i64),
        // raw bit patterns: NaNs and signed zeros must round-trip too
        2 => Value::Float(TotalF64::from_bits(rng.next_u64())),
        3 => Value::Str(arb_string(rng)),
        4 => Value::Bool(rng.next_u32() & 1 == 1),
        5 => Value::Time(rng.next_u64()),
        _ => Value::Ref(Oid(rng.next_u64())),
    }
}

fn arb_op(rng: &mut StdRng) -> WireOp {
    match rng.random_range(0..6u32) {
        0 => WireOp::Create {
            class: rng.next_u32(),
            inits: (0..rng.random_range(0..4usize))
                .map(|_| (rng.next_u32(), arb_value(rng)))
                .collect(),
        },
        1 => WireOp::Modify {
            oid: rng.next_u64(),
            attr: rng.next_u32(),
            value: arb_value(rng),
        },
        2 => WireOp::Delete {
            oid: rng.next_u64(),
        },
        3 => WireOp::Specialize {
            oid: rng.next_u64(),
            class: rng.next_u32(),
        },
        4 => WireOp::Generalize {
            oid: rng.next_u64(),
            class: rng.next_u32(),
        },
        _ => WireOp::Select {
            class: rng.next_u32(),
            deep: rng.next_u32() & 1 == 1,
        },
    }
}

fn arb_job(rng: &mut StdRng) -> WireJob {
    match rng.random_range(0..5u32) {
        0 => WireJob::Begin,
        1 => WireJob::ExecBlock((0..rng.random_range(0..5usize)).map(|_| arb_op(rng)).collect()),
        2 => WireJob::RaiseExternal(
            (0..rng.random_range(0..5usize))
                .map(|_| ExternalEvent {
                    class: rng.next_u32(),
                    channel: rng.next_u32(),
                    oid: rng.next_u64(),
                })
                .collect(),
        ),
        3 => WireJob::Commit,
        _ => WireJob::Rollback,
    }
}

fn arb_query(rng: &mut StdRng) -> TenantQuery {
    match rng.random_range(0..4u32) {
        0 => TenantQuery::Extent {
            class: rng.next_u32(),
        },
        1 => TenantQuery::EventLogLen,
        2 => TenantQuery::Errors,
        _ => TenantQuery::EngineStats,
    }
}

fn arb_durability(rng: &mut StdRng) -> Option<WireDurability> {
    match rng.random_range(0..4u32) {
        0 => None,
        1 => Some(WireDurability::InMemory),
        2 => Some(WireDurability::PerJob),
        _ => Some(WireDurability::GroupCommit),
    }
}

fn arb_metrics(rng: &mut StdRng) -> MetricsSnapshot {
    MetricsSnapshot {
        enabled: rng.next_u32() & 1 == 1,
        counters: (0..rng.random_range(0..4usize))
            .map(|_| (arb_string(rng), rng.next_u64()))
            .collect(),
        gauges: (0..rng.random_range(0..3usize))
            .map(|_| (arb_string(rng), rng.next_u64() as i64))
            .collect(),
        hists: (0..rng.random_range(0..3usize))
            .map(|_| HistSnapshot {
                name: arb_string(rng),
                buckets: (0..rng.random_range(0..65usize))
                    .map(|_| rng.next_u64())
                    .collect(),
            })
            .collect(),
        traces: (0..rng.random_range(0..4usize))
            .map(|_| TraceEvent {
                seq: rng.next_u64(),
                at_ns: rng.next_u64(),
                kind: TraceKind::from_u8(rng.random_range(0..9u32) as u8).unwrap(),
                a: rng.next_u64(),
                b: rng.next_u64(),
            })
            .collect(),
    }
}

fn arb_request(rng: &mut StdRng) -> Request {
    match rng.random_range(0..8u32) {
        0 => Request::Hello {
            version: rng.next_u32(),
            client: arb_string(rng),
            durability: arb_durability(rng),
        },
        1 => Request::DefineTriggers {
            tenant: rng.next_u64(),
            source: arb_string(rng),
        },
        2 => Request::SubmitBlock {
            tenant: rng.next_u64(),
            job: arb_job(rng),
        },
        3 => Request::Flush,
        4 => Request::Stats,
        5 => Request::WithTenantQuery {
            tenant: rng.next_u64(),
            query: arb_query(rng),
        },
        6 => Request::Shutdown,
        _ => Request::MetricsSnapshot,
    }
}

fn arb_outcome(rng: &mut StdRng) -> WireOutcome {
    match rng.random_range(0..5u32) {
        0 => WireOutcome::Done {
            events: rng.next_u64(),
            considerations: rng.next_u64(),
            executions: rng.next_u64(),
        },
        1 => WireOutcome::Error {
            message: arb_string(rng),
        },
        2 => WireOutcome::RefusedDurability {
            message: arb_string(rng),
        },
        3 => WireOutcome::Disconnected,
        _ => WireOutcome::Panicked,
    }
}

fn arb_response(rng: &mut StdRng) -> Response {
    match rng.random_range(0..10u32) {
        0 => Response::HelloAck {
            version: rng.next_u32(),
            server: arb_string(rng),
            shards: rng.next_u32(),
            durability: arb_durability(rng),
        },
        1 => Response::JobDone {
            job: rng.next_u64(),
            tenant: rng.next_u64(),
            outcome: arb_outcome(rng),
        },
        2 => Response::TriggersDefined {
            outcomes: (0..rng.random_range(0..4usize))
                .map(|_| TriggerOutcome {
                    name: arb_string(rng),
                    error: if rng.next_u32() & 1 == 1 {
                        Some(arb_string(rng))
                    } else {
                        None
                    },
                })
                .collect(),
        },
        3 => Response::FlushDone,
        4 => Response::StatsReply(WireStats {
            shards: rng.next_u32(),
            tenants: rng.next_u64(),
            jobs_submitted: rng.next_u64(),
            jobs_processed: rng.next_u64(),
            jobs_shed: rng.next_u64(),
            submits_blocked: rng.next_u64(),
            job_errors: rng.next_u64(),
            job_panics: rng.next_u64(),
            blocks: rng.next_u64(),
            events: rng.next_u64(),
            considerations: rng.next_u64(),
            executions: rng.next_u64(),
            commits: rng.next_u64(),
            rollbacks: rng.next_u64(),
            wal_appends: rng.next_u64(),
            wal_syncs: rng.next_u64(),
            snapshots: rng.next_u64(),
            tenants_recovered: rng.next_u64(),
            jobs_replayed: rng.next_u64(),
            steals: rng.next_u64(),
            ready_queue_depth: rng.next_u64(),
            net_reads_throttled: rng.next_u64(),
            per_shard: (0..rng.random_range(0..5usize))
                .map(|_| chimera_net::proto::WireShardStats {
                    jobs_submitted: rng.next_u64(),
                    jobs_executed: rng.next_u64(),
                    steals: rng.next_u64(),
                    jobs_shed: rng.next_u64(),
                    submits_blocked: rng.next_u64(),
                    queue_depth: rng.next_u64(),
                    tenants: rng.next_u64(),
                })
                .collect(),
            store_retries: rng.next_u64(),
            shards_poisoned: rng.next_u64(),
            net_conns_reaped: rng.next_u64(),
            evictions: rng.next_u64(),
            rehydrations: rng.next_u64(),
            tenants_resident: rng.next_u64(),
        }),
        8 => Response::Busy {
            active: rng.next_u32(),
            limit: rng.next_u32(),
        },
        5 => Response::TenantReply(match rng.random_range(0..5u32) {
            0 => TenantReply::NoSuchTenant,
            1 => TenantReply::Extent(
                (0..rng.random_range(0..6usize))
                    .map(|_| rng.next_u64())
                    .collect(),
            ),
            2 => TenantReply::EventLogLen(rng.next_u64()),
            3 => TenantReply::Errors {
                count: rng.next_u64(),
                last: if rng.next_u32() & 1 == 1 {
                    Some(arb_string(rng))
                } else {
                    None
                },
            },
            _ => TenantReply::EngineStats {
                blocks: rng.next_u64(),
                events: rng.next_u64(),
                considerations: rng.next_u64(),
                executions: rng.next_u64(),
                commits: rng.next_u64(),
                rollbacks: rng.next_u64(),
            },
        }),
        6 => Response::ShutdownAck,
        9 => Response::MetricsReply(arb_metrics(rng)),
        _ => Response::Error {
            message: arb_string(rng),
        },
    }
}

// ------------------------------------------------------------ properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on requests.
    #[test]
    fn request_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let req = arb_request(&mut rng);
            let bytes = req.encode();
            prop_assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    /// encode → decode is the identity on responses.
    #[test]
    fn response_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let resp = arb_response(&mut rng);
            let bytes = resp.encode();
            prop_assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    /// Every strict prefix of a valid encoding is rejected as truncated
    /// — unless the cut removed exactly a whole optional trailing field
    /// (that's a *version-1* encoding by construction, so it must decode
    /// to a value that itself round-trips bit-exactly). Either way:
    /// never a panic, never an unstable partial decode.
    #[test]
    fn truncated_encodings_rejected(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = arb_request(&mut rng);
        let bytes = req.encode();
        for cut in 0..bytes.len() {
            if let Ok(m) = Request::decode(&bytes[..cut]) {
                prop_assert_eq!(Request::decode(&m.encode()).unwrap(), m, "cut {}", cut);
            }
        }
        let resp = arb_response(&mut rng);
        let bytes = resp.encode();
        for cut in 0..bytes.len() {
            if let Ok(m) = Response::decode(&bytes[..cut]) {
                prop_assert_eq!(Response::decode(&m.encode()).unwrap(), m, "cut {}", cut);
            }
        }
    }

    /// Appending garbage to a valid encoding is `Trailing`, and decoding
    /// arbitrary byte soup returns an error or an honest message — and
    /// never panics.
    #[test]
    fn garbage_never_panics(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = arb_request(&mut rng);
        let mut bytes = req.encode();
        bytes.push(rng.next_u32() as u8);
        prop_assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::Trailing { .. }) | Err(_)
        ));
        for _ in 0..16 {
            let len = rng.random_range(0..64usize);
            let soup: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
            let _ = Request::decode(&soup);   // must return, not panic
            let _ = Response::decode(&soup);
        }
        // bit flips over a valid encoding
        let mut bytes = arb_response(&mut rng).encode();
        for _ in 0..16 {
            let i = rng.random_range(0..bytes.len());
            bytes[i] ^= 1 << rng.random_range(0..8u32);
            let _ = Response::decode(&bytes); // any Result is fine
        }
    }
}

// ------------------------------------------------------------- framing

#[test]
fn frame_roundtrip_and_bounds() {
    let mut buf = Vec::new();
    write_frame(&mut buf, b"hello").unwrap();
    write_frame(&mut buf, &[0xAB; 300]).unwrap();
    let mut cursor = &buf[..];
    assert_eq!(read_frame(&mut cursor, 1024).unwrap().unwrap(), b"hello");
    assert_eq!(read_frame(&mut cursor, 1024).unwrap().unwrap(), vec![0xAB; 300]);
    // clean EOF between frames
    assert_eq!(read_frame(&mut cursor, 1024).unwrap(), None);

    // a frame over the bound is rejected before allocation
    let mut big = Vec::new();
    write_frame(&mut big, &[0u8; 2048]).unwrap();
    match read_frame(&mut &big[..], 1024) {
        Err(WireError::FrameTooLarge { len: 2048, max: 1024 }) => {}
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }

    // a lying length prefix (announces more than the stream holds)
    let lying = 64u32.to_le_bytes().to_vec();
    assert_eq!(read_frame(&mut &lying[..], 1024), Err(WireError::Truncated));

    // a zero-length frame carries no tag: rejected
    let empty = 0u32.to_le_bytes().to_vec();
    assert_eq!(read_frame(&mut &empty[..], 1024), Err(WireError::EmptyFrame));

    // EOF inside the header
    assert_eq!(read_frame(&mut &[0x01u8][..], 1024), Err(WireError::Truncated));
}

#[test]
fn version1_peers_still_decode() {
    // cutting the optional trailing durability off a version-2 Hello
    // yields exactly a version-1 Hello (and the same for the ack)
    let hello = Request::Hello {
        version: 2,
        client: "new".into(),
        durability: Some(WireDurability::GroupCommit),
    };
    let bytes = hello.encode();
    match Request::decode(&bytes[..bytes.len() - 1]).unwrap() {
        Request::Hello { durability: None, version: 2, .. } => {}
        other => panic!("expected durability-less Hello, got {other:?}"),
    }
    let ack = Response::HelloAck {
        version: 2,
        server: "srv".into(),
        shards: 4,
        durability: Some(WireDurability::PerJob),
    };
    let bytes = ack.encode();
    match Response::decode(&bytes[..bytes.len() - 1]).unwrap() {
        Response::HelloAck { durability: None, shards: 4, .. } => {}
        other => panic!("expected durability-less HelloAck, got {other:?}"),
    }
    // older StatsReply shapes decode with the newer counters zeroed,
    // not an error. The version-6 trailing block is 3 u64s; so is the
    // version-4 block; the version-3 block on an empty breakdown is
    // 3 u64s + a u32 count; the version-2 block is 5 u64s.
    let stats = WireStats {
        shards: 3,
        jobs_submitted: 11,
        wal_appends: 7,
        wal_syncs: 5,
        snapshots: 2,
        tenants_recovered: 1,
        jobs_replayed: 9,
        steals: 13,
        ready_queue_depth: 4,
        net_reads_throttled: 6,
        store_retries: 21,
        shards_poisoned: 1,
        net_conns_reaped: 2,
        evictions: 8,
        rehydrations: 6,
        tenants_resident: 2,
        ..WireStats::default()
    };
    let bytes = Response::StatsReply(stats).encode();
    let v6_block = 3 * 8;
    let v4_block = 3 * 8;
    let v3_block = 3 * 8 + 4;
    // a version-4/5 reply: robustness counters present, lifecycle zeroed
    match Response::decode(&bytes[..bytes.len() - v6_block]).unwrap() {
        Response::StatsReply(s) => {
            assert_eq!(s.store_retries, 21);
            assert_eq!(s.evictions, 0);
            assert_eq!(s.rehydrations, 0);
            assert_eq!(s.tenants_resident, 0);
        }
        other => panic!("expected StatsReply, got {other:?}"),
    }
    let bytes = &bytes[..bytes.len() - v6_block];
    // a version-3 reply: scheduler counters present, robustness zeroed
    match Response::decode(&bytes[..bytes.len() - v4_block]).unwrap() {
        Response::StatsReply(s) => {
            assert_eq!(s.steals, 13);
            assert_eq!(s.store_retries, 0);
            assert_eq!(s.shards_poisoned, 0);
            assert_eq!(s.net_conns_reaped, 0);
        }
        other => panic!("expected StatsReply, got {other:?}"),
    }
    let bytes = &bytes[..bytes.len() - v4_block];
    // a version-2 reply: storage counters present, scheduler zeroed
    match Response::decode(&bytes[..bytes.len() - v3_block]).unwrap() {
        Response::StatsReply(s) => {
            assert_eq!(s.shards, 3);
            assert_eq!(s.wal_appends, 7);
            assert_eq!(s.steals, 0);
            assert_eq!(s.net_reads_throttled, 0);
            assert!(s.per_shard.is_empty());
        }
        other => panic!("expected StatsReply, got {other:?}"),
    }
    // a version-1 reply (14 flat fields): storage counters zeroed too
    match Response::decode(&bytes[..bytes.len() - v3_block - 5 * 8]).unwrap() {
        Response::StatsReply(s) => {
            assert_eq!(s.shards, 3);
            assert_eq!(s.jobs_submitted, 11);
            assert_eq!(s.wal_appends, 0);
            assert_eq!(s.jobs_replayed, 0);
            assert_eq!(s.steals, 0);
        }
        other => panic!("expected StatsReply, got {other:?}"),
    }
}

#[test]
fn version4_peers_still_decode() {
    // version 5 added *new tags only* and version 6 *optional trailing
    // StatsReply fields only* — no version-4 message's encoding
    // changed, so a version-4 peer decodes every frame it knew about
    // byte-for-byte. Pin the fixed encodings that contract rests on
    // (and the new tags, which a version-4 peer rejects as BadTag — a
    // typed refusal, never a desync, since frames are length-prefixed).
    assert_eq!(chimera_net::PROTOCOL_VERSION, 6);
    assert_eq!(Request::Flush.encode(), vec![0x04]);
    assert_eq!(Request::Stats.encode(), vec![0x05]);
    assert_eq!(Request::Shutdown.encode(), vec![0x07]);
    assert_eq!(Request::MetricsSnapshot.encode(), vec![0x08]);
    assert_eq!(Response::FlushDone.encode(), vec![0x84]);
    assert_eq!(Response::ShutdownAck.encode(), vec![0x87]);
    assert_eq!(Response::MetricsReply(MetricsSnapshot::disabled()).encode()[0], 0x8B);

    // the MetricsReply trace tail is an optional trailing block: cutting
    // it yields a reply that decodes (traces empty, every other series
    // intact) and re-encodes bit-exactly to the cut form
    let m = MetricsSnapshot {
        enabled: true,
        counters: vec![("batches_claimed".into(), 7)],
        gauges: vec![("conns_active".into(), -2)],
        hists: vec![HistSnapshot {
            name: "execute".into(),
            buckets: vec![0; 64],
        }],
        traces: vec![TraceEvent {
            seq: 1,
            at_ns: 99,
            kind: TraceKind::JobClaimed,
            a: 3,
            b: 4,
        }],
    };
    let bytes = Response::MetricsReply(m.clone()).encode();
    // the trace block is a u32 count plus one 33-byte event
    let cut = &bytes[..bytes.len() - (4 + 33)];
    match Response::decode(cut).unwrap() {
        Response::MetricsReply(got) => {
            assert!(got.traces.is_empty());
            assert_eq!(got.counters, m.counters);
            assert_eq!(got.gauges, m.gauges);
            assert_eq!(got.hists, m.hists);
            assert_eq!(Response::MetricsReply(got).encode(), cut);
        }
        other => panic!("expected MetricsReply, got {other:?}"),
    }
}

#[test]
fn version5_peers_still_decode() {
    // version 6 appends *optional trailing StatsReply fields only* — a
    // version-5 StatsReply (no lifecycle block) still decodes, with the
    // lifecycle counters zeroed, and every other field intact. Build a
    // version-5-shaped reply by cutting the version-6 block off a full
    // encoding whose lifecycle fields are zero: byte-for-byte, that is
    // what a version-5 server would have sent.
    let stats = WireStats {
        shards: 2,
        tenants: 9,
        jobs_submitted: 41,
        store_retries: 3,
        shards_poisoned: 1,
        net_conns_reaped: 5,
        ..WireStats::default()
    };
    let full = Response::StatsReply(stats.clone()).encode();
    let v5 = &full[..full.len() - 3 * 8];
    match Response::decode(v5).unwrap() {
        Response::StatsReply(s) => {
            assert_eq!(s, stats);
            assert_eq!(s.evictions, 0);
            assert_eq!(s.rehydrations, 0);
            assert_eq!(s.tenants_resident, 0);
            // re-encoding appends the (all-zero) version-6 block back
            assert_eq!(Response::StatsReply(s).encode(), full);
        }
        other => panic!("expected StatsReply, got {other:?}"),
    }
}

#[test]
fn hostile_length_prefix_does_not_allocate() {
    // u32::MAX length with a tiny max: must fail fast, not OOM
    let mut hostile = u32::MAX.to_le_bytes().to_vec();
    hostile.extend_from_slice(&[0u8; 8]);
    match read_frame(&mut &hostile[..], 1 << 20) {
        Err(WireError::FrameTooLarge { .. }) => {}
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    // an in-payload count field lying about its element count fails as
    // Truncated instead of pre-allocating gigabytes: a RaiseExternal
    // job claiming 2^31 events in a 16-byte payload
    let mut payload = vec![0x03u8]; // SubmitBlock
    payload.extend_from_slice(&7u64.to_le_bytes()); // tenant
    payload.push(2); // RaiseExternal
    payload.extend_from_slice(&(1u32 << 31).to_le_bytes()); // count
    payload.extend_from_slice(&[0u8; 4]);
    assert!(matches!(Request::decode(&payload), Err(WireError::Truncated)));
}
