//! Property suite for the §3.3 event formulas over random instance
//! expressions and histories:
//!
//! * `occurred` binds exactly the objects whose `ots` is active;
//! * `at` instants are exactly the fresh per-object activations, and every
//!   `at`-bound object also satisfies `occurred` at some point;
//! * consuming windows are suffixes of preserving ones.

use chimera::calculus::{at_occurrences, occurred_objects, ots_logical};
use chimera::events::{EventBase, EventType, Timestamp, Window};
use chimera::model::{ClassId, Oid};
use chimera::workload::{ExprGenConfig, RandomExprGen};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn et(n: u32) -> EventType {
    EventType::external(ClassId(0), n)
}

fn stream(seed: u64, len: usize) -> EventBase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut eb = EventBase::new();
    for _ in 0..len {
        eb.append(
            et(rng.random_range(0..4u32)),
            Oid(rng.random_range(1..5u64)),
        );
    }
    eb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn occurred_is_exactly_active_ots(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 0usize..30,
        after in 0u64..10,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 4,
            max_depth: 4,
            negation_prob: 0.35,
            seed: expr_seed,
            ..Default::default()
        });
        let expr = g.generate_instance();
        let eb = stream(stream_seed, len);
        let w = Window::new(Timestamp(after), eb.now().max(Timestamp(after)));
        let bound = occurred_objects(&expr, &eb, w).unwrap();
        // soundness: every bound object has an active ots
        for &oid in &bound {
            prop_assert!(
                ots_logical(&expr, &eb, w, w.upto, oid).is_active(),
                "{} bound {} without active ots", &expr, oid
            );
        }
        // completeness over the whole object universe
        for oid in 1..5u64 {
            let oid = Oid(oid);
            let active = ots_logical(&expr, &eb, w, w.upto, oid).is_active();
            if active && !bound.contains(&oid) {
                // only objects outside the domain may be missed, and only
                // when they were affected by nothing at all in the window
                let affected = eb
                    .occurrences_of_obj_in(oid, w)
                    .count();
                prop_assert_eq!(
                    affected, 0,
                    "{} missed affected object {}", &expr, oid
                );
            }
        }
        // bindings are sorted and unique
        let mut sorted = bound.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(bound, sorted);
    }

    #[test]
    fn at_instants_are_fresh_activations(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 0usize..30,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 4,
            max_depth: 3,
            negation_prob: 0.0, // `at` rejects negation
            seed: expr_seed,
            ..Default::default()
        });
        let expr = g.generate_instance();
        let eb = stream(stream_seed, len);
        let w = Window::from_origin(eb.now());
        let pairs = at_occurrences(&expr, &eb, w).unwrap();
        // each reported (oid, te): ots freshly activates at te
        for &(oid, te) in &pairs {
            prop_assert_eq!(
                ots_logical(&expr, &eb, w, te, oid).activation(),
                Some(te),
                "{} at ({}, {})", &expr, oid, te
            );
        }
        // completeness: every event instant with a fresh activation is in
        // the list
        for e in eb.iter() {
            let v = ots_logical(&expr, &eb, w, e.ts, e.oid);
            if v.activation() == Some(e.ts) {
                prop_assert!(
                    pairs.contains(&(e.oid, e.ts)),
                    "{} missing ({}, {})", &expr, e.oid, e.ts
                );
            }
        }
        // every at-bound object is occurred-bound at window end, unless
        // its activation later went away (impossible without negation)
        let occ = occurred_objects(&expr, &eb, w).unwrap();
        for &(oid, _) in &pairs {
            prop_assert!(occ.contains(&oid), "{} at-object {} not occurred", &expr, oid);
        }
    }

    /// Consuming windows see a subset of the preserving bindings.
    #[test]
    fn consuming_subset_of_preserving(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 1usize..30,
        cut in 1u64..20,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 4,
            max_depth: 3,
            negation_prob: 0.0,
            seed: expr_seed,
            ..Default::default()
        });
        let expr = g.generate_instance();
        let eb = stream(stream_seed, len);
        let now = eb.now().max(Timestamp(cut));
        let preserving = Window::from_origin(now);
        let consuming = Window::new(Timestamp(cut), now);
        let at_pres = at_occurrences(&expr, &eb, preserving).unwrap();
        let at_cons = at_occurrences(&expr, &eb, consuming).unwrap();
        // consuming `at` instants fall inside the consuming window and...
        for &(_, te) in &at_cons {
            prop_assert!(consuming.contains(te));
        }
        // ...the preserving run reports an occurrence at every instant the
        // consuming run does NOT only when it predates the cut... weaker,
        // universally true direction: instants in both windows coincide.
        let pres_in_cons: Vec<_> = at_pres
            .iter()
            .filter(|(_, te)| consuming.contains(*te))
            .copied()
            .collect();
        // every consuming instant appears in the preserving enumeration
        // restricted to the shared range IF its prefix support also lies
        // in the window; the reverse inclusion always holds:
        for pair in &pres_in_cons {
            // a preserving occurrence needs its initiators, which may be
            // before the cut — so it need not re-occur in consuming mode.
            let _ = pair;
        }
        for pair in &at_cons {
            prop_assert!(
                pres_in_cons.contains(pair),
                "{} consuming pair {:?} missing from preserving", &expr, pair
            );
        }
    }
}
