//! Action effect inference: the event types a rule's actions can generate.
//!
//! The engine turns every store mutation into exactly one event occurrence
//! (`chimera-exec`'s Event Handler), so the effect set of an action
//! statement is determined by the mutation kinds it can produce:
//!
//! * `create(C, …)` → `create(C)` (attribute initializers are part of the
//!   creation, not separate `modify` events);
//! * `modify(V.a, …)` → `modify(C'.a)` for every class `C'` in the deep
//!   extent of `V`'s declared class that resolves attribute `a` — the
//!   store reports the *object's* class, which may be any descendant;
//! * `delete(V)` → `delete(C')` for every descendant `C'`;
//! * `specialize(V, T)` / `generalize(V, T)` → the event is reported on
//!   the **target** class `T` of the migration.
//!
//! The set is an over-approximation in one direction only: an action may
//! run zero times (empty condition bindings), never on classes outside the
//! computed set. That is the direction the triggering graph needs.

use crate::Result;
use chimera_events::EventType;
use chimera_model::{ModelError, Schema};
use chimera_rules::{ActionStmt, TriggerDef};
use std::collections::BTreeSet;

/// Look up the declared class of a condition variable.
fn var_class(def: &TriggerDef, schema: &Schema, var: &str) -> Result<chimera_model::ClassId> {
    let decl = def
        .condition
        .decls
        .iter()
        .find(|d| d.name == var)
        .ok_or_else(|| ModelError::UnknownClass(format!("<undeclared variable {var}>")))?;
    schema.class_by_name(&decl.class)
}

/// The event types the actions of `def` can generate, against `schema`.
///
/// Fails only on resolution errors (unknown class/attribute/variable),
/// which the engine would equally reject at execution time.
pub fn action_effects(def: &TriggerDef, schema: &Schema) -> Result<BTreeSet<EventType>> {
    let mut out = BTreeSet::new();
    for stmt in &def.actions {
        match stmt {
            ActionStmt::Create { class, .. } => {
                let c = schema.class_by_name(class)?;
                out.insert(EventType::create(c));
            }
            ActionStmt::Modify { var, attr, .. } => {
                let declared = var_class(def, schema, var)?;
                for c in schema.descendants(declared) {
                    let aid = schema.attr_by_name(c, attr)?;
                    out.insert(EventType::modify(c, aid));
                }
            }
            ActionStmt::Delete { var } => {
                let declared = var_class(def, schema, var)?;
                for c in schema.descendants(declared) {
                    out.insert(EventType::delete(c));
                }
            }
            ActionStmt::Specialize { target, .. } => {
                let t = schema.class_by_name(target)?;
                out.insert(EventType::specialize(t));
            }
            ActionStmt::Generalize { target, .. } => {
                let t = schema.class_by_name(target)?;
                out.insert(EventType::generalize(t));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::EventExpr;
    use chimera_model::{AttrDef, AttrType, SchemaBuilder};
    use chimera_rules::{Condition, Term, VarDecl};

    /// `base` ← `sub` hierarchy with an inherited attribute.
    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class("base", None, vec![AttrDef::new("x", AttrType::Integer)])
            .unwrap();
        b.class(
            "sub",
            Some("base"),
            vec![AttrDef::new("y", AttrType::Integer)],
        )
        .unwrap();
        b.build()
    }

    fn def_with(actions: Vec<ActionStmt>, decls: Vec<VarDecl>) -> TriggerDef {
        let s = schema();
        let base = s.class_by_name("base").unwrap();
        let mut def = TriggerDef::new("r", EventExpr::prim(EventType::create(base)));
        def.condition = Condition {
            decls,
            formulas: vec![],
        };
        def.actions = actions;
        def
    }

    fn v(name: &str, class: &str) -> VarDecl {
        VarDecl {
            name: name.into(),
            class: class.into(),
        }
    }

    #[test]
    fn create_yields_single_create_event() {
        let s = schema();
        let def = def_with(
            vec![ActionStmt::Create {
                class: "sub".into(),
                inits: vec![("x".into(), Term::int(1))],
            }],
            vec![],
        );
        let eff = action_effects(&def, &s).unwrap();
        let sub = s.class_by_name("sub").unwrap();
        assert_eq!(eff.len(), 1);
        assert!(eff.contains(&EventType::create(sub)));
    }

    #[test]
    fn modify_covers_descendant_classes() {
        let s = schema();
        let def = def_with(
            vec![ActionStmt::Modify {
                var: "B".into(),
                attr: "x".into(),
                value: Term::int(0),
            }],
            vec![v("B", "base")],
        );
        let eff = action_effects(&def, &s).unwrap();
        let base = s.class_by_name("base").unwrap();
        let sub = s.class_by_name("sub").unwrap();
        let xb = s.attr_by_name(base, "x").unwrap();
        let xs = s.attr_by_name(sub, "x").unwrap();
        assert!(eff.contains(&EventType::modify(base, xb)));
        assert!(eff.contains(&EventType::modify(sub, xs)));
        assert_eq!(eff.len(), 2);
    }

    #[test]
    fn modify_on_leaf_class_stays_narrow() {
        let s = schema();
        let def = def_with(
            vec![ActionStmt::Modify {
                var: "S".into(),
                attr: "y".into(),
                value: Term::int(0),
            }],
            vec![v("S", "sub")],
        );
        let eff = action_effects(&def, &s).unwrap();
        assert_eq!(eff.len(), 1);
    }

    #[test]
    fn delete_covers_descendants() {
        let s = schema();
        let def = def_with(vec![ActionStmt::Delete { var: "B".into() }], vec![v("B", "base")]);
        let eff = action_effects(&def, &s).unwrap();
        let base = s.class_by_name("base").unwrap();
        let sub = s.class_by_name("sub").unwrap();
        assert_eq!(eff.len(), 2);
        assert!(eff.contains(&EventType::delete(base)));
        assert!(eff.contains(&EventType::delete(sub)));
    }

    #[test]
    fn migrations_report_target_class() {
        let s = schema();
        let def = def_with(
            vec![
                ActionStmt::Specialize {
                    var: "B".into(),
                    target: "sub".into(),
                },
                ActionStmt::Generalize {
                    var: "S".into(),
                    target: "base".into(),
                },
            ],
            vec![v("B", "base"), v("S", "sub")],
        );
        let eff = action_effects(&def, &s).unwrap();
        let base = s.class_by_name("base").unwrap();
        let sub = s.class_by_name("sub").unwrap();
        assert!(eff.contains(&EventType::specialize(sub)));
        assert!(eff.contains(&EventType::generalize(base)));
    }

    #[test]
    fn empty_actions_have_no_effects() {
        let s = schema();
        let def = def_with(vec![], vec![]);
        assert!(action_effects(&def, &s).unwrap().is_empty());
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let s = schema();
        let def = def_with(
            vec![ActionStmt::Delete { var: "Z".into() }],
            vec![v("B", "base")],
        );
        assert!(action_effects(&def, &s).is_err());
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let s = schema();
        let def = def_with(
            vec![ActionStmt::Modify {
                var: "B".into(),
                attr: "nope".into(),
                value: Term::int(0),
            }],
            vec![v("B", "base")],
        );
        assert!(action_effects(&def, &s).is_err());
    }
}
