//! Static optimization (§5.1): variation sets `V(E)` and the relevance
//! filter that lets the Trigger Support skip `ts` recomputation.
//!
//! The occurrence of a composite event `E` shows up as a *positive
//! variation* `Δ⁺E` of its `ts` function. The derivation rules of Fig. 6
//! propagate the required variation through the operators — negation flips
//! the sign, conjunction/disjunction/precedence forward it to both
//! operands, instance operators switch to the object-level (`Δ⁺ᴼ`/`Δ⁻ᴼ`)
//! variants — until only primitive event types remain. The simplification
//! rules of Fig. 7 then merge variations of the same primitive:
//! object-level is subsumed by set-level of the same sign, and mixed signs
//! collapse to the "any variation" form `Δ`.
//!
//! The resulting set `V(E)` is a *sufficient* recomputation condition: if
//! newly arrived event occurrences match none of its entries, the sign of
//! `ts(E)` cannot have changed and the Trigger Support skips the rule
//! (§5.1: "if new arising event occurrences do not match V(E), no
//! recomputation of ts is required").
//!
//! One completion beyond the paper (DESIGN.md §3): an expression that is
//! *vacuously active* (active over an empty `R`, e.g. pure negation) must
//! also be re-checked when the window transitions from empty to non-empty,
//! because the `R ≠ ∅` guard — not a primitive variation — was the only
//! thing holding the rule back. [`RelevanceFilter`] carries that flag.

use crate::expr::EventExpr;
use chimera_events::EventType;
use std::collections::BTreeMap;
use std::fmt;

/// Variation granularity (Fig. 6: `Δ` vs `Δᴼ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Object-level variation (`Δᴼ`): the `ots` of some object changed.
    Object,
    /// Set-level variation (`Δ`): the set-oriented `ts` changed.
    Set,
}

/// Variation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// `Δ⁺`: the `ts` may have become positive / increased.
    Positive,
    /// `Δ⁻`: the `ts` may have become negative / decreased.
    Negative,
    /// `Δ`: either direction (the Fig. 7 merged form).
    Any,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Positive => Sign::Negative,
            Sign::Negative => Sign::Positive,
            Sign::Any => Sign::Any,
        }
    }

    /// Fig. 7 merge: equal signs keep, different signs collapse to `Any`.
    fn merge(self, other: Sign) -> Sign {
        if self == other {
            self
        } else {
            Sign::Any
        }
    }

    /// Does an *arrival* of the primitive (always a positive variation)
    /// match this required variation?
    pub fn matches_arrival(self) -> bool {
        matches!(self, Sign::Positive | Sign::Any)
    }
}

/// A variation requirement on one primitive event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variation {
    /// Set- or object-level.
    pub scope: Scope,
    /// Direction.
    pub sign: Sign,
}

impl Variation {
    /// Fig. 7 simplification: merge two variations of the same primitive.
    /// Scope takes the coarser (set subsumes object); signs merge to `Any`
    /// when they differ.
    pub fn merge(self, other: Variation) -> Variation {
        Variation {
            scope: self.scope.max(other.scope),
            sign: self.sign.merge(other.sign),
        }
    }
}

impl fmt::Display for Variation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = match self.sign {
            Sign::Positive => "+",
            Sign::Negative => "-",
            Sign::Any => "",
        };
        let scope = match self.scope {
            Scope::Object => "O",
            Scope::Set => "",
        };
        write!(f, "Δ{sign}{scope}")
    }
}

/// The variation set `V(E)`: one merged [`Variation`] per primitive.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VariationSet {
    entries: BTreeMap<EventType, Variation>,
}

impl VariationSet {
    /// Compute `V(E)` = the simplified derivation of `Δ⁺E` (Fig. 6 + 7).
    pub fn for_expr(expr: &EventExpr) -> Self {
        let mut vs = VariationSet::default();
        derive_set(expr, Sign::Positive, &mut vs);
        vs
    }

    fn add(&mut self, ty: EventType, v: Variation) {
        self.entries
            .entry(ty)
            .and_modify(|e| *e = e.merge(v))
            .or_insert(v);
    }

    /// Variation required for a primitive, if it appears at all.
    pub fn get(&self, ty: EventType) -> Option<Variation> {
        self.entries.get(&ty).copied()
    }

    /// Number of distinct primitives.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(type, variation)` pairs in type order.
    pub fn iter(&self) -> impl Iterator<Item = (&EventType, &Variation)> {
        self.entries.iter()
    }

    /// Does the arrival of an occurrence of `ty` match the set?
    pub fn matches_arrival(&self, ty: EventType) -> bool {
        self.get(ty).map(|v| v.sign.matches_arrival()).unwrap_or(false)
    }

    /// Render against a schema, e.g. `{Δ create(stock), Δ+ modify(stock.quantity)}`.
    pub fn render(&self, schema: &chimera_model::Schema) -> String {
        let parts: Vec<String> = self
            .entries
            .iter()
            .map(|(ty, v)| format!("{v} {}", ty.render(schema)))
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

/// Fig. 6 derivation through set-oriented operators.
///
/// One conservative completion over the paper's figure: a *negative*
/// variation of a precedence can also be produced by a **positive**
/// variation of its right operand — a fresh `b` occurrence moves the
/// reference instant at which `a` must have been active, which can
/// deactivate `a < b` when `a` is non-monotone (contains negation). The
/// derivation therefore widens `Δ⁻(a<b)` to `Δ⁻a ∪ Δb`; without this the
/// filter misses activations of expressions like `-(A < -X)` (covered by
/// the optimizer-equivalence property suite).
fn derive_set(expr: &EventExpr, sign: Sign, out: &mut VariationSet) {
    match expr {
        EventExpr::Prim(ty) => out.add(
            *ty,
            Variation {
                scope: Scope::Set,
                sign,
            },
        ),
        EventExpr::Not(e) => derive_set(e, sign.flip(), out),
        EventExpr::And(a, b) | EventExpr::Or(a, b) => {
            derive_set(a, sign, out);
            derive_set(b, sign, out);
        }
        EventExpr::Prec(a, b) => {
            derive_set(a, sign, out);
            match sign {
                Sign::Positive => derive_set(b, Sign::Positive, out),
                Sign::Negative | Sign::Any => derive_set(b, Sign::Any, out),
            }
        }
        // instance→set boundary: switch to object-level variations.
        EventExpr::IAnd(..) | EventExpr::IOr(..) | EventExpr::IPrec(..) => {
            derive_obj(expr, sign, out)
        }
        EventExpr::INot(inner) => derive_obj(inner, sign.flip(), out),
    }
}

/// Fig. 6 derivation through instance-oriented operators (object level),
/// with the same precedence widening as [`derive_set`].
fn derive_obj(expr: &EventExpr, sign: Sign, out: &mut VariationSet) {
    match expr {
        EventExpr::Prim(ty) => out.add(
            *ty,
            Variation {
                scope: Scope::Object,
                sign,
            },
        ),
        EventExpr::INot(e) => derive_obj(e, sign.flip(), out),
        EventExpr::IAnd(a, b) | EventExpr::IOr(a, b) => {
            derive_obj(a, sign, out);
            derive_obj(b, sign, out);
        }
        EventExpr::IPrec(a, b) => {
            derive_obj(a, sign, out);
            match sign {
                Sign::Positive => derive_obj(b, Sign::Positive, out),
                Sign::Negative | Sign::Any => derive_obj(b, Sign::Any, out),
            }
        }
        // validated expressions have no set operators below instance ones.
        _ => unreachable!("set operator inside instance derivation"),
    }
}

/// Per-object vacuous activity: can `ots(expr, t, oid)` be positive for an
/// object with *no* occurrences at all? (True exactly when an inner `-=`
/// makes absence sufficient.) Such sub-expressions become active for every
/// fresh object an arrival introduces, so the filter must treat *any*
/// arrival as relevant ([`arrival_sensitive`]).
fn vac_obj(expr: &EventExpr) -> bool {
    match expr {
        EventExpr::Prim(_) => false,
        EventExpr::INot(e) => !vac_obj(e),
        EventExpr::IAnd(a, b) | EventExpr::IPrec(a, b) => vac_obj(a) && vac_obj(b),
        EventExpr::IOr(a, b) => vac_obj(a) || vac_obj(b),
        _ => false,
    }
}

/// Can an arrival of an *arbitrary* event type (one not in `V(E)`) cause
/// the expression to become active? This happens through the §4.3 object
/// domain: a fresh object activates a per-object-vacuous instance subtree
/// (∃-boundary), or deactivates a `-=` boundary whose component is
/// per-object vacuous — which, under an enclosing set negation, again
/// surfaces as an activation. Computed as the positive side of a
/// (pos, neg) sensitivity pair.
pub(crate) fn arrival_sensitive(expr: &EventExpr) -> bool {
    sensitivity(expr).0
}

fn sensitivity(expr: &EventExpr) -> (bool, bool) {
    match expr {
        EventExpr::Prim(_) => (false, false),
        EventExpr::Not(e) => {
            let (p, n) = sensitivity(e);
            (n, p)
        }
        EventExpr::And(a, b) | EventExpr::Or(a, b) => {
            let (pa, na) = sensitivity(a);
            let (pb, nb) = sensitivity(b);
            (pa || pb, na || nb)
        }
        EventExpr::Prec(a, b) => {
            let (pa, na) = sensitivity(a);
            let (pb, nb) = sensitivity(b);
            // a fresh activation of b moves the reference instant, which
            // can also deactivate the precedence.
            (pa || pb, na || nb || pb)
        }
        // ∃-boundary: a fresh object activates a vacuous subtree.
        EventExpr::IAnd(..) | EventExpr::IOr(..) | EventExpr::IPrec(..) => (vac_obj(expr), false),
        // ∄-boundary: a fresh object with the component vacuously active
        // deactivates it.
        EventExpr::INot(inner) => (false, vac_obj(inner)),
    }
}

/// The runtime filter derived from `V(E)`, used by the Trigger Support.
#[derive(Debug, Clone)]
pub struct RelevanceFilter {
    variations: VariationSet,
    vacuously_active: bool,
    arrival_sensitive: bool,
}

impl RelevanceFilter {
    /// Build the filter for a rule's triggering event expression.
    pub fn new(expr: &EventExpr) -> Self {
        RelevanceFilter {
            variations: VariationSet::for_expr(expr),
            vacuously_active: expr.vacuously_active(),
            arrival_sensitive: arrival_sensitive(expr),
        }
    }

    /// The underlying `V(E)`.
    pub fn variations(&self) -> &VariationSet {
        &self.variations
    }

    /// Must `ts` be recomputed after occurrences of `arrivals` were
    /// appended? `window_was_empty` reports whether the rule's observation
    /// window was empty before this batch (the `R: ∅ → ≠∅` transition that
    /// can trigger vacuously-active expressions).
    pub fn needs_recheck(&self, arrivals: &[EventType], window_was_empty: bool) -> bool {
        if arrivals.is_empty() {
            return false;
        }
        if window_was_empty && self.vacuously_active {
            return true;
        }
        if self.arrival_sensitive {
            return true; // fresh objects can activate the expression
        }
        arrivals.iter().any(|&ty| self.variations.matches_arrival(ty))
    }

    /// Can the expression be active over an empty occurrence set?
    pub fn vacuously_active(&self) -> bool {
        self.vacuously_active
    }

    /// Can an arrival of an event type *outside* `V(E)` activate the
    /// expression (through the §4.3 fresh-object paths)? When true, every
    /// arrival is relevant and the `V(E)` fast path is disabled.
    pub fn arrival_sensitive(&self) -> bool {
        self.arrival_sensitive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::ClassId;

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }
    const A: u32 = 0;
    const B: u32 = 1;
    const C: u32 = 2;

    fn v(scope: Scope, sign: Sign) -> Variation {
        Variation { scope, sign }
    }

    #[test]
    fn primitive_yields_positive_set_variation() {
        let vs = VariationSet::for_expr(&p(A));
        assert_eq!(vs.len(), 1);
        assert_eq!(vs.get(et(A)), Some(v(Scope::Set, Sign::Positive)));
    }

    #[test]
    fn negation_flips_sign() {
        let vs = VariationSet::for_expr(&p(A).not());
        assert_eq!(vs.get(et(A)), Some(v(Scope::Set, Sign::Negative)));
        let vs2 = VariationSet::for_expr(&p(A).not().not());
        assert_eq!(vs2.get(et(A)), Some(v(Scope::Set, Sign::Positive)));
    }

    #[test]
    fn binops_forward_sign_to_both_operands() {
        for e in [p(A).and(p(B)), p(A).or(p(B)), p(A).prec(p(B))] {
            let vs = VariationSet::for_expr(&e);
            assert_eq!(vs.get(et(A)), Some(v(Scope::Set, Sign::Positive)));
            assert_eq!(vs.get(et(B)), Some(v(Scope::Set, Sign::Positive)));
        }
    }

    #[test]
    fn mixed_signs_merge_to_any() {
        // A + (-A): both Δ+A and Δ−A required → ΔA
        let vs = VariationSet::for_expr(&p(A).and(p(A).not()));
        assert_eq!(vs.get(et(A)), Some(v(Scope::Set, Sign::Any)));
    }

    #[test]
    fn instance_boundary_uses_object_scope() {
        let vs = VariationSet::for_expr(&p(A).iand(p(B)));
        assert_eq!(vs.get(et(A)), Some(v(Scope::Object, Sign::Positive)));
        assert_eq!(vs.get(et(B)), Some(v(Scope::Object, Sign::Positive)));
        // instance negation at the boundary flips to negative object-level
        let vs2 = VariationSet::for_expr(&p(A).iand(p(B)).inot());
        assert_eq!(vs2.get(et(A)), Some(v(Scope::Object, Sign::Negative)));
    }

    #[test]
    fn set_scope_subsumes_object_scope() {
        // A + (A += B): Δ+A and Δ+O A → Δ+A (set, positive)
        let vs = VariationSet::for_expr(&p(A).and(p(A).iand(p(B))));
        assert_eq!(vs.get(et(A)), Some(v(Scope::Set, Sign::Positive)));
        assert_eq!(vs.get(et(B)), Some(v(Scope::Object, Sign::Positive)));
    }

    /// The §5.1 worked example: the derivation+simplification of
    /// `E = ((A , B) < (C + (-A))) , ((A += C) ,= (-=(B <= A)))`
    /// yields exactly `V(E) = {ΔA, ΔB, Δ+C}`.
    #[test]
    fn section51_paper_example() {
        let part1 = p(A).or(p(B)).prec(p(C).and(p(A).not()));
        let part2 = p(A).iand(p(C)).ior(p(B).iprec(p(A)).inot());
        let e = part1.or(part2);
        e.validate().unwrap();
        let vs = VariationSet::for_expr(&e);
        assert_eq!(vs.len(), 3);
        assert_eq!(vs.get(et(A)), Some(v(Scope::Set, Sign::Any)), "ΔA");
        assert_eq!(vs.get(et(B)), Some(v(Scope::Set, Sign::Any)), "ΔB");
        assert_eq!(vs.get(et(C)), Some(v(Scope::Set, Sign::Positive)), "Δ+C");
    }

    #[test]
    fn variation_display() {
        assert_eq!(v(Scope::Set, Sign::Positive).to_string(), "Δ+");
        assert_eq!(v(Scope::Set, Sign::Any).to_string(), "Δ");
        assert_eq!(v(Scope::Object, Sign::Negative).to_string(), "Δ-O");
    }

    #[test]
    fn merge_lattice_matches_fig7() {
        let pos_o = v(Scope::Object, Sign::Positive);
        let neg_o = v(Scope::Object, Sign::Negative);
        let any_o = v(Scope::Object, Sign::Any);
        let pos_s = v(Scope::Set, Sign::Positive);
        let neg_s = v(Scope::Set, Sign::Negative);
        let any_s = v(Scope::Set, Sign::Any);
        // {Δ+O, Δ−O} → ΔO          {Δ+, Δ−O} → Δ
        assert_eq!(pos_o.merge(neg_o), any_o);
        assert_eq!(pos_s.merge(neg_o), any_s);
        // {ΔO, Δ−O} → ΔO           {ΔO, Δ−} → Δ
        assert_eq!(any_o.merge(neg_o), any_o);
        assert_eq!(any_o.merge(neg_s), any_s);
        // {ΔO, Δ+O} → ΔO           {ΔO, Δ+} → Δ
        assert_eq!(any_o.merge(pos_o), any_o);
        assert_eq!(any_o.merge(pos_s), any_s);
        // {Δ−, Δ−O} → Δ−           {Δ−, Δ+} → Δ
        assert_eq!(neg_s.merge(neg_o), neg_s);
        assert_eq!(neg_s.merge(pos_s), any_s);
        // {Δ+, Δ+O} → Δ+           {Δ−, Δ} → Δ
        assert_eq!(pos_s.merge(pos_o), pos_s);
        assert_eq!(neg_s.merge(any_s), any_s);
        // {Δ−, Δ+O} → Δ            {Δ+, Δ} → Δ
        assert_eq!(neg_s.merge(pos_o), any_s);
        assert_eq!(pos_s.merge(any_s), any_s);
    }

    #[test]
    fn filter_matches_only_relevant_arrivals() {
        // E = A + (-B): Δ+A, Δ−B → arrivals of A relevant, B and C not.
        let f = RelevanceFilter::new(&p(A).and(p(B).not()));
        assert!(f.needs_recheck(&[et(A)], false));
        assert!(!f.needs_recheck(&[et(B)], false));
        assert!(!f.needs_recheck(&[et(C)], false));
        assert!(f.needs_recheck(&[et(C), et(A)], false));
        assert!(!f.needs_recheck(&[], false));
    }

    #[test]
    fn vacuous_rules_recheck_on_window_transition() {
        // E = -A: V(E) = {Δ−A} matches no arrival, but the ∅→≠∅ window
        // transition must force a recheck.
        let f = RelevanceFilter::new(&p(A).not());
        assert!(f.vacuously_active());
        assert!(!f.needs_recheck(&[et(B)], false));
        assert!(f.needs_recheck(&[et(B)], true));
        assert!(!f.needs_recheck(&[], true));
        // non-vacuous rule: transition alone is not enough
        let g = RelevanceFilter::new(&p(A));
        assert!(!g.vacuously_active());
        assert!(!g.needs_recheck(&[et(B)], true));
        assert!(g.needs_recheck(&[et(A)], true));
    }

    #[test]
    fn empty_and_iteration() {
        let vs = VariationSet::default();
        assert!(vs.is_empty());
        let vs2 = VariationSet::for_expr(&p(A).and(p(B)));
        assert!(!vs2.is_empty());
        let pairs: Vec<_> = vs2.iter().collect();
        assert_eq!(pairs.len(), 2);
    }
}
