//! Property suite for the histogram math and the recorder's
//! concurrency story.
//!
//! What is pinned here, against brute-force oracles:
//!
//! - bucket boundaries are exact at powers of two (`2^k` opens bucket
//!   `k`, `2^k - 1` closes bucket `k-1`),
//! - merging two histograms equals recording all samples into one,
//! - bucket-floor quantile estimates are within one bucket of a
//!   sorted-vec oracle,
//! - concurrent recording from many threads loses no counts.

use chimera_telemetry::{
    bucket_ceil, bucket_floor, bucket_of, Counter, HistSnapshot, Histogram, Stage, Telemetry,
    BUCKETS,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Nanosecond samples with the distribution telemetry actually sees:
/// mostly small-to-medium latencies, plus boundary noise from
/// `any::<u64>()` (which biases toward 0 and `u64::MAX`).
fn arb_ns() -> BoxedStrategy<u64> {
    prop_oneof![
        0u64..=64,
        1u64..1_000_000,
        1_000u64..10_000_000_000,
        any::<u64>(),
    ]
    .boxed()
}

fn snapshot_of(samples: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &ns in samples {
        h.record(ns);
    }
    let mut s = HistSnapshot::empty("t");
    h.merge_into(&mut s);
    s
}

/// The exact sample a `HistSnapshot::quantile(q)` call is estimating:
/// rank `⌈q·n⌉` (clamped to `[1, n]`) of the sorted samples.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    /// `2^k` is the smallest value in bucket `k`; `2^k - 1` the largest
    /// in bucket `k-1`. Also: every sample is inside its own bucket's
    /// `[floor, ceil]` range.
    fn bucket_boundaries_exact_at_powers_of_two(k in 1usize..64, ns in arb_ns()) {
        if k < 63 {
            prop_assert_eq!(bucket_of(1u64 << k), k);
            prop_assert_eq!(bucket_of((1u64 << k) - 1), k - 1);
            prop_assert_eq!(bucket_floor(k), 1u64 << k);
            prop_assert_eq!(bucket_ceil(k - 1), (1u64 << k) - 1);
        }
        let b = bucket_of(ns);
        prop_assert!(b < BUCKETS);
        prop_assert!(bucket_floor(b) <= ns.max(1));
        prop_assert!(ns <= bucket_ceil(b));
    }

    /// Histogram merge is exactly the histogram of the union of the
    /// samples: record a split workload into two histograms, merge the
    /// snapshots, compare bit-for-bit with one histogram that saw
    /// everything.
    fn merge_equals_record_all_in_one(
        left in prop::collection::vec(arb_ns(), 0..200),
        right in prop::collection::vec(arb_ns(), 0..200),
    ) {
        let mut merged = snapshot_of(&left);
        merged.merge(&snapshot_of(&right));

        let mut all = left.clone();
        all.extend_from_slice(&right);
        let direct = snapshot_of(&all);

        prop_assert_eq!(merged.buckets, direct.buckets);
        prop_assert_eq!(merged.count(), (left.len() + right.len()) as u64);
    }

    /// Quantile estimates are bucket-floor values of the bucket holding
    /// the oracle sample: the estimate never exceeds the true quantile,
    /// and the true quantile stays inside the estimate's bucket —
    /// "within one power-of-two bucket" of a sorted-vec oracle.
    fn quantiles_within_one_bucket_of_oracle(
        mut samples in prop::collection::vec(arb_ns(), 1..300),
        q in 0.0f64..1.0,
    ) {
        let snap = snapshot_of(&samples);
        samples.sort_unstable();
        for q in [q, 0.50, 0.90, 0.99, 1.0] {
            let est = snap.quantile(q);
            let truth = oracle_quantile(&samples, q);
            prop_assert!(
                est <= truth.max(1),
                "q={q}: estimate {est} above oracle {truth}"
            );
            prop_assert!(
                truth <= bucket_ceil(bucket_of(est)),
                "q={q}: oracle {truth} outside estimate bucket of {est}"
            );
        }
        // max() is the same contract at the top end.
        let top = *samples.last().unwrap();
        prop_assert_eq!(snap.max(), bucket_floor(bucket_of(top)));
    }
}

proptest! {
    // Thread spawning per case: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hammer one `Telemetry` from several threads — every sample and
    /// every counter increment must appear in the final snapshot
    /// (relaxed atomics lose no updates, sharded or not).
    fn concurrent_recording_loses_no_counts(
        per_thread in 1usize..400,
        threads in 1usize..5,
        shards in 1usize..4,
        ns in arb_ns(),
    ) {
        let tel = Telemetry::new(shards);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let tel = tel.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        // Deterministic per-thread sample spread.
                        let sample = ns ^ ((t * 1_000_003 + i) as u64);
                        tel.record_ns(t, Stage::Execute, sample);
                        tel.count(t, Counter::Batches, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = tel.snapshot();
        let expect = (threads * per_thread) as u64;
        let hist = snap.hist(Stage::Execute.name()).expect("execute histogram");
        prop_assert_eq!(hist.count(), expect);
        prop_assert_eq!(snap.counter(Counter::Batches.name()), Some(expect));
    }
}

/// A fixed heavier run of the concurrency property — 8 threads onto 4
/// shards, 10k samples each — as a deterministic smoke test (Arc'd
/// handle shared the way the runtime shares it).
#[test]
fn concurrent_smoke_eight_threads() {
    let tel = Arc::new(Telemetry::new(4));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let tel = Arc::clone(&tel);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    tel.record_ns(t, Stage::Commit, i * 37 + t as u64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = tel.snapshot();
    assert_eq!(snap.hist("commit").unwrap().count(), 80_000);
}
