//! Chaos soak: the robustness layer under sustained fire, as an
//! operator would drill it. Two phases, both watchdogged so any hang
//! exits nonzero instead of wedging CI:
//!
//! 1. **Storage chaos** — a durable multi-shard runtime whose every
//!    store is wrapped in a seeded `ChaosStore` injecting transient,
//!    torn and (late in the run) one permanent fault, fed a Zipf-skewed
//!    tenant mix. Every job must be answered, the poisoned home must be
//!    repairable with `reopen_shard_store`, and every tenant's end
//!    state must equal a fault-free sequential replay of the jobs that
//!    executed.
//! 2. **Eviction pressure** — a durable runtime with a tight tenant
//!    residency cap whose stores inject transient faults into the
//!    eviction path. Evictions under fault must *refuse-and-retain*
//!    (the tenant stays resident, nothing poisons, no job is lost), the
//!    cap must hold once traffic settles, and every tenant — evicted or
//!    resident — must equal its fault-free oracle.
//! 3. **Network chaos** — a TCP server behind a `ChaosProxy` that cuts
//!    connections mid-frame, driven by a reconnecting client. Every
//!    submission must resolve (`Done`/`Error`/typed `Disconnected`),
//!    orphan accounting must be exact, and the session must heal once
//!    the cut budget is spent.
//!
//! Run with `cargo run --release --example chaos_soak`. Exits 0 only if
//! every claim held; a panic or the watchdog exits nonzero.
//!
//! Both runtimes run with telemetry on, and the soak prints a summary —
//! stage latency p50/p99 plus the last 32 postmortem trace events — on
//! normal exit *and* from the watchdog, so a hang leaves behind the
//! evidence of where the pipeline stalled instead of just a timeout.

use chimera::chaos::{
    ChaosCounters, ChaosProxy, ChaosRates, ChaosStore, FaultPlan, NetChaosConfig, StorageFault,
    StoreOp,
};
use chimera::exec::{Engine, EngineConfig, Op};
use chimera::model::{AttrDef, AttrId, AttrType, ClassId, SchemaBuilder, Schema, Value};
use chimera::net::{
    Client, ClientConfig, ExternalEvent, ReconnectPolicy, Server, ServerConfig, WireJob,
    WireOutcome,
};
use chimera::runtime::{
    DurabilityConfig, Job, JobOutcome, Runtime, RuntimeConfig, StorageMode, StoreWrap, TenantId,
};
use chimera::telemetry::Telemetry;
use chimera::workload::{ZipfTenants, ZipfTenantsConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const SEED: u64 = 0xC4A0_50AC;
const TENANTS: u64 = 12;
const STORAGE_JOBS: usize = 600;
const NET_JOBS: u64 = 300;

/// The current phase's recorder, registered so the watchdog thread can
/// dump it when the soak hangs. The `Telemetry` handle is a cheap
/// Arc-backed clone; it outlives the runtime it came from.
static WATCH_TEL: Mutex<Option<Telemetry>> = Mutex::new(None);

fn watch(tel: &Telemetry) {
    *WATCH_TEL.lock().unwrap() = Some(tel.clone());
}

/// Stage latency p50/p99 for every stage that recorded anything, plus
/// the last 32 events out of the postmortem trace ring. Called on
/// normal exit and from the watchdog.
fn telemetry_summary(label: &str) {
    let tel = match WATCH_TEL.lock().unwrap().clone() {
        Some(tel) => tel,
        None => return,
    };
    let m = tel.snapshot();
    println!("telemetry [{label}]:");
    for h in &m.hists {
        if h.count() == 0 {
            continue;
        }
        println!(
            "  {:<16} n={:<7} p50={}ns p99={}ns max={}ns",
            h.name,
            h.count(),
            h.p50(),
            h.p99(),
            h.max()
        );
    }
    let tail: Vec<_> = m.traces.iter().rev().take(32).rev().collect();
    println!("  trace tail ({} of {} drained events):", tail.len(), m.traces.len());
    for ev in tail {
        println!(
            "    #{:<6} +{:>12}ns {:<14} a={} b={}",
            ev.seq,
            ev.at_ns,
            ev.kind.name(),
            ev.a,
            ev.b
        );
    }
}

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "item",
        None,
        vec![
            AttrDef::new("qty", AttrType::Integer),
            AttrDef::with_default("tag", AttrType::Integer, Value::Int(0)),
        ],
    )
    .unwrap();
    b.build()
}

/// Fault-free sequential replay of one tenant's jobs; returns the
/// comparable end state (counters, transaction flag, sorted extent).
fn oracle(s: &Schema, jobs: &[Job], item: ClassId) -> (chimera::exec::EngineStats, bool, Vec<u64>) {
    let mut engine = Engine::with_config(
        s.clone(),
        EngineConfig {
            max_rule_steps: 64,
            ..EngineConfig::default()
        },
    );
    for job in jobs {
        let _ = match job.clone() {
            Job::Begin => engine.begin().map(|_| ()).map_err(|_| ()),
            Job::ExecBlock(ops) => engine.exec_block(&ops).map(|_| ()).map_err(|_| ()),
            Job::RaiseExternal(ev) => engine.raise_external(&ev).map(|_| ()).map_err(|_| ()),
            Job::Commit => engine.commit().map(|_| ()).map_err(|_| ()),
            Job::Rollback => engine.rollback().map(|_| ()).map_err(|_| ()),
            _ => Ok(()),
        };
    }
    let mut extent: Vec<u64> = engine.extent(item).iter().map(|o| o.0).collect();
    extent.sort_unstable();
    (engine.stats(), engine.in_transaction(), extent)
}

fn storage_soak() {
    let s = schema();
    let item = s.class_by_name("item").unwrap();
    let dir = std::env::temp_dir().join(format!("chimera-chaos-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let shards = 4usize;
    // tenant→home is a hash, so "shard 0" could be a cold corner of the
    // Zipf mix; aim the permanent break at the *hot* tenant's home so the
    // poison/repair path is guaranteed traffic. A throwaway in-memory
    // runtime with the same shard count answers the mapping.
    let victim_shard = Runtime::new(
        s.clone(),
        vec![],
        RuntimeConfig {
            shards,
            ..Default::default()
        },
    )
    .unwrap()
    .shard_of(TenantId(0));
    // The wrap switches behaviour by phase. MIX: heavy but retryable
    // rates everywhere (chaos must be invisible). ARMED: a clean plan
    // except one scheduled permanent break on the victim home's 3rd
    // commit — `reopen_shard_store` re-applies the wrap, which is how
    // the armed store gets installed, and why REPAIRED must hand out a
    // faultless plan (otherwise repair would re-break itself).
    const MIX: usize = 0;
    const ARMED: usize = 1;
    const REPAIRED: usize = 2;
    let mode = Arc::new(std::sync::atomic::AtomicUsize::new(MIX));
    let counters = Arc::new(ChaosCounters::default());
    let wrap = {
        let counters = Arc::clone(&counters);
        let mode = Arc::clone(&mode);
        StoreWrap::new(move |shard, store| {
            let plan = match mode.load(std::sync::atomic::Ordering::SeqCst) {
                MIX => FaultPlan::seeded(
                    SEED ^ shard as u64,
                    ChaosRates {
                        append_transient: 1000,
                        commit_transient: 1500,
                        commit_torn: 1000,
                        snapshot_transient: 1500,
                        evict_transient: 0,
                    },
                ),
                ARMED if shard == victim_shard => {
                    FaultPlan::none().fail_nth(StoreOp::Commit, 2, StorageFault::Permanent)
                }
                _ => FaultPlan::none(),
            };
            Box::new(ChaosStore::with_counters(store, plan, Arc::clone(&counters)))
        })
    };
    let rt = Runtime::new(
        s.clone(),
        vec![],
        RuntimeConfig {
            shards,
            storage: StorageMode::Durable(DurabilityConfig {
                dir: dir.clone(),
                group_commit: true,
                snapshot_every: 8,
            }),
            engine: EngineConfig {
                max_rule_steps: 64,
                ..EngineConfig::default()
            },
            store_wrap: Some(wrap),
            telemetry: true,
            ..Default::default()
        },
    )
    .unwrap();
    watch(rt.telemetry());

    // Phase 1 — the mix. Zipf-skewed traffic, every job submitted with
    // a reply slot so the accounting claim ("every job is answered") is
    // checked literally. Faults here are all retryable, so a refusal is
    // a straight failure of the invisibility claim.
    let mut zipf = ZipfTenants::new(ZipfTenantsConfig {
        tenants: TENANTS,
        s: 1.2,
        hot_boost: 4.0,
        seed: SEED,
    });
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xF00D);
    let mut in_txn = vec![false; TENANTS as usize];
    let mut executed: Vec<Vec<Job>> = vec![Vec::new(); TENANTS as usize];
    let (mut done, mut errors) = (0u64, 0u64);
    let run = |t: usize, job: Job| -> JobOutcome {
        let (_, rx) = rt.submit_with_reply(TenantId(t as u64), job).unwrap();
        rx.recv_timeout(Duration::from_secs(60))
            .expect("a chaos-wrapped runtime must answer every job")
            .outcome
    };
    for _ in 0..STORAGE_JOBS {
        let t = zipf.next_rank() as usize;
        let job = if !in_txn[t] {
            Job::Begin
        } else {
            match rng.random_range(0..6u32) {
                0..=2 => Job::ExecBlock(vec![Op::Create {
                    class: item,
                    inits: vec![(AttrId(0), Value::Int(rng.random_range(0..100i64)))],
                }]),
                3..=4 => Job::Commit,
                _ => Job::Rollback,
            }
        };
        match run(t, job.clone()) {
            JobOutcome::Done(_) => done += 1,
            JobOutcome::Error(_) => errors += 1,
            other => panic!("retryable chaos must stay invisible, got {other:?}"),
        }
        match job {
            Job::Begin => in_txn[t] = true,
            Job::Commit | Job::Rollback => in_txn[t] = false,
            _ => {}
        }
        executed[t].push(job);
    }
    // close every open transaction (the repair drill below swaps the
    // victim store, which requires committed-only tenant state), then
    // settle and check the mix claims: no leaks, retries happened,
    // nothing poisoned, and every tenant equals the fault-free oracle.
    for t in 0..TENANTS as usize {
        if in_txn[t] {
            assert!(matches!(run(t, Job::Commit), JobOutcome::Done(_)));
            executed[t].push(Job::Commit);
            in_txn[t] = false;
        }
    }
    rt.flush().unwrap();
    let stats = rt.stats();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted, "job leak");
    assert_eq!(stats.ready_queue_depth, 0, "queue leak");
    assert_eq!(stats.shards_poisoned, 0, "retryable faults must not poison");
    assert!(
        stats.store_retries >= 1,
        "chaos rates this high must have caused retries"
    );
    let mix_retries = stats.store_retries;
    let mix_faults = counters.total();
    let check_tenant = |t: usize, jobs: &[Job]| {
        let (want_stats, want_txn, want_extent) = oracle(&s, jobs, item);
        let got = rt
            .with_tenant(TenantId(t as u64), |e| {
                let mut extent: Vec<u64> = e.extent(item).iter().map(|o| o.0).collect();
                extent.sort_unstable();
                (e.stats(), e.in_transaction(), extent)
            })
            .expect("tenant with jobs has an engine");
        assert_eq!(
            got,
            (want_stats, want_txn, want_extent),
            "tenant {t} diverged from the fault-free oracle"
        );
    };
    let mut checked = 0;
    for (t, jobs) in executed.iter().enumerate() {
        if !jobs.is_empty() {
            check_tenant(t, jobs);
            checked += 1;
        }
    }
    assert!(checked >= 2, "the soak must oracle-check most tenants");

    // Phase 2 — the repair drill. Install the armed store on the victim
    // home, break it on the hot tenant's engine-level Commit (a demoted
    // job: executed in RAM, answered RefusedDurability, transaction
    // exited), watch the home refuse follow-ups, then disarm, repair
    // with reopen_shard_store, and require full service and oracle
    // equivalence afterwards.
    let victim = 0usize; // tenant 0 is the Zipf-hot tenant by construction
    mode.store(ARMED, std::sync::atomic::Ordering::SeqCst);
    rt.reopen_shard_store(victim_shard).unwrap();
    let block = Job::ExecBlock(vec![Op::Create {
        class: item,
        inits: vec![(AttrId(0), Value::Int(41))],
    }]);
    assert!(matches!(run(victim, Job::Begin), JobOutcome::Done(_)));
    assert!(matches!(run(victim, block.clone()), JobOutcome::Done(_)));
    // 3rd commit on the armed store: the scheduled permanent fault
    let demoted = run(victim, Job::Commit);
    assert!(
        matches!(demoted, JobOutcome::RefusedDurability(_)),
        "the armed store's 3rd commit must demote, got {demoted:?}"
    );
    executed[victim].extend([Job::Begin, block.clone(), Job::Commit]);
    let refusal = run(victim, block.clone());
    assert!(
        matches!(refusal, JobOutcome::RefusedDurability(_)),
        "a poisoned home must refuse pre-execution, got {refusal:?}"
    );
    rt.flush().unwrap();
    assert_eq!(rt.stats().shards_poisoned, 1, "exactly one home poisoned");
    mode.store(REPAIRED, std::sync::atomic::Ordering::SeqCst);
    rt.reopen_shard_store(victim_shard).unwrap();
    assert_eq!(rt.stats().shards_poisoned, 0, "repair must clear the poison");
    for job in [Job::Begin, block.clone(), Job::Commit] {
        assert!(matches!(run(victim, job.clone()), JobOutcome::Done(_)));
        executed[victim].push(job);
    }
    rt.flush().unwrap();
    check_tenant(victim, &executed[victim]);
    let stats = rt.stats();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted, "job leak");
    println!(
        "storage soak: {} mix jobs ({done} done, {errors} engine errors), \
         {mix_faults} injected faults, {mix_retries} retries, {checked} tenants \
         oracle-checked; poison/repair drill on shard {victim_shard} passed",
        STORAGE_JOBS,
    );
    telemetry_summary("storage soak");
    drop(rt);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Phase 2: eviction under fire. A tight residency cap forces constant
/// eviction/rehydration churn while every store injects transient faults
/// into `evict_tenant` (and nothing else — any divergence is the
/// lifecycle's fault alone). The claims: a faulted eviction refuses and
/// retains (no poison, no loss), the cap holds at quiescence, and every
/// tenant equals its fault-free oracle whether it ended resident or
/// evicted.
fn lifecycle_soak() {
    use chimera::lifecycle::LifecycleConfig;
    const CAP: usize = 3;
    const JOBS: usize = 400;
    let s = schema();
    let item = s.class_by_name("item").unwrap();
    let dir = std::env::temp_dir().join(format!("chimera-evict-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let counters = Arc::new(ChaosCounters::default());
    let wrap = {
        let counters = Arc::clone(&counters);
        StoreWrap::new(move |shard, store| {
            let plan = FaultPlan::seeded(
                SEED ^ 0xE71C ^ shard as u64,
                ChaosRates {
                    evict_transient: 2000, // 20% of evictions refused
                    ..ChaosRates::default()
                },
            );
            Box::new(ChaosStore::with_counters(store, plan, Arc::clone(&counters)))
        })
    };
    let rt = Runtime::new(
        s.clone(),
        vec![],
        RuntimeConfig {
            shards: 2,
            storage: StorageMode::Durable(DurabilityConfig {
                dir: dir.clone(),
                group_commit: true,
                snapshot_every: 0, // tsnaps only: eviction is the sole snapshot path
            }),
            engine: EngineConfig {
                max_rule_steps: 64,
                ..EngineConfig::default()
            },
            store_wrap: Some(wrap),
            telemetry: true,
            lifecycle: LifecycleConfig::with_max_resident(CAP),
            ..Default::default()
        },
    )
    .unwrap();
    watch(rt.telemetry());

    let mut zipf = ZipfTenants::new(ZipfTenantsConfig {
        tenants: TENANTS,
        s: 1.1,
        hot_boost: 2.0,
        seed: SEED ^ 0xE71C,
    });
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xE71C);
    let mut in_txn = vec![false; TENANTS as usize];
    let mut executed: Vec<Vec<Job>> = vec![Vec::new(); TENANTS as usize];
    let run = |t: usize, job: Job| -> JobOutcome {
        let (_, rx) = rt.submit_with_reply(TenantId(t as u64), job).unwrap();
        rx.recv_timeout(Duration::from_secs(60))
            .expect("an eviction-churning runtime must answer every job")
            .outcome
    };
    for _ in 0..JOBS {
        let t = zipf.next_rank() as usize;
        let job = if !in_txn[t] {
            Job::Begin
        } else {
            match rng.random_range(0..6u32) {
                0..=2 => Job::ExecBlock(vec![Op::Create {
                    class: item,
                    inits: vec![(AttrId(0), Value::Int(rng.random_range(0..100i64)))],
                }]),
                3..=4 => Job::Commit,
                _ => Job::Rollback,
            }
        };
        match run(t, job.clone()) {
            JobOutcome::Done(_) | JobOutcome::Error(_) => {}
            other => panic!("eviction churn must stay invisible, got {other:?}"),
        }
        match job {
            Job::Begin => in_txn[t] = true,
            Job::Commit | Job::Rollback => in_txn[t] = false,
            _ => {}
        }
        executed[t].push(job);
    }
    rt.flush().unwrap();
    // Two legal sources of overshoot at rest: tenants parked inside a
    // transaction are unevictable, and a *refused* (fault-injected)
    // eviction retains its tenant until the next activity retries.
    // Enforcement only runs on claim/release, so nudge the runtime with
    // no-op claims until the working set fits cap + mid-txn tenants.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stuck = in_txn.iter().filter(|&&b| b).count();
        if rt.stats().tenants_resident <= (CAP + stuck) as u64
            || std::time::Instant::now() >= deadline
        {
            break;
        }
        let job = if in_txn[0] { Job::Commit } else { Job::Begin };
        match run(0, job.clone()) {
            JobOutcome::Done(_) | JobOutcome::Error(_) => {}
            other => panic!("retry nudge must stay invisible, got {other:?}"),
        }
        match job {
            Job::Begin => in_txn[0] = true,
            Job::Commit | Job::Rollback => in_txn[0] = false,
            _ => {}
        }
        executed[0].push(job);
        rt.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    let stuck = in_txn.iter().filter(|&&b| b).count();
    let stats = rt.stats();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted, "job leak");
    assert_eq!(stats.shards_poisoned, 0, "a refused eviction must not poison");
    assert_eq!(stats.tenants as u64, TENANTS, "no tenant may vanish");
    assert!(
        stats.tenants_resident <= (CAP + stuck) as u64,
        "cap {CAP} (+{stuck} mid-txn) violated at quiescence: {} resident",
        stats.tenants_resident
    );
    assert!(stats.evictions >= 1, "a 4x-over-cap mix must evict");
    assert!(stats.rehydrations >= 1, "revisited tenants must rehydrate");
    assert!(
        counters.transient() >= 1,
        "a 20% fault rate over {} evictions must have fired",
        stats.evictions
    );
    // refuse-and-retain, bit-for-bit: every tenant (resident or parked as
    // a snapshot) equals the fault-free sequential oracle
    for (t, jobs) in executed.iter().enumerate() {
        if jobs.is_empty() {
            continue;
        }
        let (want_stats, want_txn, want_extent) = oracle(&s, jobs, item);
        let got = rt
            .with_tenant(TenantId(t as u64), |e| {
                let mut extent: Vec<u64> = e.extent(item).iter().map(|o| o.0).collect();
                extent.sort_unstable();
                (e.stats(), e.in_transaction(), extent)
            })
            .expect("tenant with jobs is inspectable even when evicted");
        assert_eq!(
            got,
            (want_stats, want_txn, want_extent),
            "tenant {t} diverged under eviction churn"
        );
    }
    println!(
        "eviction soak: {JOBS} jobs over {TENANTS} tenants, cap {CAP}: {} evictions \
         ({} refused by injected faults), {} rehydrations, {} resident at rest",
        stats.evictions,
        counters.transient(),
        stats.rehydrations,
        stats.tenants_resident,
    );
    telemetry_summary("eviction soak");
    drop(rt);
    let _ = std::fs::remove_dir_all(&dir);
}

fn net_soak() {
    let rt = Arc::new(
        Runtime::new(
            schema(),
            vec![],
            RuntimeConfig {
                shards: 2,
                telemetry: true,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    watch(rt.telemetry());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&rt), ServerConfig::default()).unwrap();
    let proxy = ChaosProxy::start(
        server.local_addr(),
        NetChaosConfig {
            seed: SEED,
            cut_bytes: Some((500, 6000)),
            max_cuts: 6,
            chunk_bytes: 32,
            ..NetChaosConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect_config(
        proxy.local_addr(),
        ClientConfig {
            request_timeout: Some(Duration::from_secs(10)),
            reconnect: Some(ReconnectPolicy {
                max_attempts: 10,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(50),
                jitter_seed: SEED,
            }),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    let mut completions = Vec::new();
    for round in 0..NET_JOBS {
        let tenant = round % 5;
        let job = match round % 4 {
            0 => WireJob::Begin,
            1 | 2 => WireJob::RaiseExternal(vec![ExternalEvent {
                class: 0,
                channel: (round % 2) as u32,
                oid: round,
            }]),
            _ => WireJob::Commit,
        };
        completions.extend(c.submit(tenant, job).expect("reconnect must keep the client alive"));
    }
    completions.extend(c.drain().unwrap());
    assert_eq!(
        completions.len() as u64,
        NET_JOBS,
        "every submission must resolve exactly once"
    );
    let disconnected = completions
        .iter()
        .filter(|d| matches!(d.outcome, WireOutcome::Disconnected))
        .count() as u64;
    assert_eq!(disconnected, c.orphaned(), "orphan accounting drifted");

    // heal: the cut budget is finite, so clean rounds must return
    let mut healed = false;
    for _ in 0..30 {
        let mut round = Vec::new();
        round.extend(c.submit(9, WireJob::Begin).unwrap());
        round.extend(c.submit(9, WireJob::Commit).unwrap());
        round.extend(c.drain().unwrap());
        if round.iter().all(|d| !matches!(d.outcome, WireOutcome::Disconnected)) {
            healed = true;
            break;
        }
    }
    assert!(healed, "session never healed after {} cuts", proxy.cuts());
    rt.flush().unwrap();
    let stats = rt.stats();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted, "server-side job leak");
    println!(
        "net soak: {NET_JOBS} submissions, {} cuts, {} reconnects, {disconnected} orphaned, healed",
        proxy.cuts(),
        c.reconnects(),
    );
    drop(c);
    proxy.shutdown();
    server.shutdown();
}

fn main() {
    // the watchdog: chaos bugs present as hangs; CI needs an exit code
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(240));
        eprintln!("chaos_soak: watchdog fired — some chaos path is hanging");
        // the postmortem: where did the pipeline stall?
        telemetry_summary("watchdog");
        std::process::exit(2);
    });
    storage_soak();
    lifecycle_soak();
    net_soak();
    telemetry_summary("net soak");
    println!("chaos soak passed");
}
