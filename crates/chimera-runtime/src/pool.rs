//! The admission pool: per-tenant staged FIFO queues plus the
//! ready-tenant scheduler that shard workers claim work from.
//!
//! Submission no longer pushes into a per-shard channel owned by one
//! worker. Instead every job is *staged* on its tenant's own FIFO queue
//! inside this pool, and the tenant — not the job — is the unit of
//! scheduling: a tenant with staged jobs and no worker currently running
//! it is **ready**, and sits in the ready deque of its *home shard* (the
//! stable hash placement that still owns its durable state). Workers
//! claim ready tenants: their own shard's deque first and, under
//! [`Scheduler::LoadAware`], the front of another shard's deque when
//! their own is empty — **work stealing of whole tenants**. A claimed
//! tenant is marked running until its worker releases it, so per-tenant
//! serial order is structural: at most one worker ever holds a tenant,
//! and it drains that tenant's queue strictly FIFO.
//!
//! Backpressure is accounted against the tenant's *home shard*: each
//! home shard admits at most `queue_capacity` staged jobs, and a full
//! home either sheds or blocks the submitter exactly like the old
//! per-shard bounded channel did. Capacity is freed when a worker claims
//! the jobs into a batch (the moment the old design dequeued them), not
//! when they finish executing.

use crate::runtime::{Backpressure, Scheduler};
use crate::shard::Envelope;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// One tenant's staged jobs plus its scheduling state. Present in the
/// map only while the tenant has staged jobs or a worker holds it.
struct TenantQueue {
    jobs: VecDeque<Envelope>,
    /// Claimed by a worker right now (never in a ready deque while set).
    running: bool,
    /// Home shard index (cached `home_of`).
    home: usize,
}

/// The scheduling state, all under one mutex. Contention is per
/// batch/claim, not per engine operation, so a single lock is cheap
/// relative to job execution.
struct Sched {
    tenants: HashMap<u64, TenantQueue>,
    /// Ready tenants per home shard: in a deque iff `!running` and the
    /// tenant has staged jobs.
    ready: Vec<VecDeque<u64>>,
    /// Staged (admitted, unclaimed) jobs per home shard — the
    /// backpressure gauge.
    staged: Vec<u64>,
    /// Jobs admitted per home shard (the flush barrier's target).
    submitted: Vec<u64>,
    /// Jobs retired per home shard.
    processed: Vec<u64>,
    /// Set at shutdown: claims drain what is staged, then workers exit.
    closed: bool,
}

/// A claimed batch: one tenant, exclusively held, with up to
/// `queue_capacity` of its oldest staged jobs. The claiming worker must
/// call [`Pool::release`] exactly once when done.
pub(crate) struct Claim {
    pub tenant: u64,
    /// The tenant's home shard (where its durable state lives).
    pub home: usize,
    pub batch: Vec<Envelope>,
    /// Was this tenant homed on a different shard than the claiming
    /// worker's own?
    pub stolen: bool,
}

/// Why [`Pool::submit`] refused a job.
pub(crate) enum SubmitRefused {
    /// Home shard full under [`Backpressure::Shed`].
    Shed,
    /// The pool is closed (runtime shut down).
    Closed,
}

/// A consistent snapshot of the pool's per-home-shard accounting.
pub(crate) struct PoolProgress {
    pub submitted: Vec<u64>,
    pub processed: Vec<u64>,
    pub staged: Vec<u64>,
}

pub(crate) struct Pool {
    sched: Mutex<Sched>,
    /// Workers wait here for a claimable tenant (or shutdown).
    work: Condvar,
    /// Blocked submitters wait here for home-shard capacity.
    space: Condvar,
    /// The flush barrier waits here for `processed == submitted`.
    drained: Condvar,
    mode: Scheduler,
    capacity: usize,
    /// Jobs shed per home shard (full queue under [`Backpressure::Shed`],
    /// plus any shutdown shortfall moved here by [`Pool::reconcile`]).
    pub shed: Vec<AtomicU64>,
    /// Submissions that found their home shard full and had to wait
    /// under [`Backpressure::Block`], per home shard.
    pub blocked: Vec<AtomicU64>,
}

impl Pool {
    pub(crate) fn new(homes: usize, capacity: usize, mode: Scheduler) -> Pool {
        Pool {
            sched: Mutex::new(Sched {
                tenants: HashMap::new(),
                ready: (0..homes).map(|_| VecDeque::new()).collect(),
                staged: vec![0; homes],
                submitted: vec![0; homes],
                processed: vec![0; homes],
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            drained: Condvar::new(),
            mode,
            capacity,
            shed: (0..homes).map(|_| AtomicU64::new(0)).collect(),
            blocked: (0..homes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Stage one job on its tenant's queue, subject to the home shard's
    /// capacity and the configured backpressure policy.
    pub(crate) fn submit(
        &self,
        home: usize,
        tenant: u64,
        env: Envelope,
        backpressure: Backpressure,
    ) -> Result<(), SubmitRefused> {
        use std::sync::atomic::Ordering::Relaxed;
        let mut s = self.lock();
        if s.closed {
            return Err(SubmitRefused::Closed);
        }
        if s.staged[home] as usize >= self.capacity {
            match backpressure {
                Backpressure::Shed => {
                    self.shed[home].fetch_add(1, Relaxed);
                    return Err(SubmitRefused::Shed);
                }
                Backpressure::Block => {
                    // counted once per submission that had to wait, like
                    // the old channel's full-queue path
                    self.blocked[home].fetch_add(1, Relaxed);
                    while s.staged[home] as usize >= self.capacity {
                        if s.closed {
                            return Err(SubmitRefused::Closed);
                        }
                        s = self.space.wait(s).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }
        s.submitted[home] += 1;
        s.staged[home] += 1;
        let q = s.tenants.entry(tenant).or_insert_with(|| TenantQueue {
            jobs: VecDeque::new(),
            running: false,
            home,
        });
        q.jobs.push_back(env);
        // empty→nonempty while unclaimed: the tenant becomes ready
        let newly_ready = !q.running && q.jobs.len() == 1;
        if newly_ready {
            s.ready[home].push_back(tenant);
        }
        drop(s);
        if newly_ready {
            // notify_all, not notify_one: under `Scheduler::Pinned` only
            // the tenant's home worker may claim it, and a single wake
            // could land on a worker that cannot (a lost wakeup). Worker
            // counts are small, so the broadcast is cheap.
            self.work.notify_all();
        }
        Ok(())
    }

    /// Claim the next ready tenant for `worker`: its own shard's deque
    /// first; another shard's under [`Scheduler::LoadAware`] (and during
    /// the shutdown drain regardless of mode, so no staged job strands
    /// behind an already-exited worker). Blocks until work is available;
    /// `None` once the pool is closed and every ready deque is empty.
    pub(crate) fn claim(&self, worker: usize) -> Option<Claim> {
        let mut s = self.lock();
        loop {
            let steal_ok = self.mode == Scheduler::LoadAware || s.closed;
            let homes = s.ready.len();
            let mut found: Option<usize> = None;
            if !s.ready[worker].is_empty() {
                found = Some(worker);
            } else if steal_ok {
                for off in 1..homes {
                    let victim = (worker + off) % homes;
                    if !s.ready[victim].is_empty() {
                        found = Some(victim);
                        break;
                    }
                }
            }
            match found {
                Some(deque) => {
                    let tenant = s.ready[deque].pop_front().expect("checked non-empty");
                    let q = s
                        .tenants
                        .get_mut(&tenant)
                        .expect("ready tenant has a queue");
                    debug_assert!(!q.running && !q.jobs.is_empty());
                    q.running = true;
                    let home = q.home;
                    let n = q.jobs.len().min(self.capacity);
                    let batch: Vec<Envelope> = q.jobs.drain(..n).collect();
                    s.staged[home] -= batch.len() as u64;
                    drop(s);
                    // claiming freed home-shard capacity
                    self.space.notify_all();
                    return Some(Claim {
                        tenant,
                        home,
                        batch,
                        stolen: home != worker,
                    });
                }
                None => {
                    if s.closed {
                        return None;
                    }
                    s = self.work.wait(s).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Claim a tenant that is *idle* — no staged jobs, no worker holding
    /// it — for the eviction path. An idle tenant has no pool entry at
    /// all, so "claiming" it means inserting a running-marked entry with
    /// an empty queue: submissions that race in behind the claim stage
    /// jobs without readying the tenant, exactly as they would behind a
    /// worker's claim. Returns `false` (claim refused) if the tenant has
    /// any pool presence — staged work means it is not cold enough to
    /// evict. The caller must finish with [`Pool::release`]`(tenant,
    /// home, 0)`, which re-readies anything staged meanwhile (whose claim
    /// then rehydrates the tenant) or removes the empty entry.
    pub(crate) fn try_claim_idle(&self, tenant: u64, home: usize) -> bool {
        let mut s = self.lock();
        if s.closed || s.tenants.contains_key(&tenant) {
            return false;
        }
        s.tenants.insert(
            tenant,
            TenantQueue {
                jobs: VecDeque::new(),
                running: true,
                home,
            },
        );
        true
    }

    /// Release a claimed tenant after its batch retired: bump the home
    /// shard's processed count, mark the tenant claimable again and
    /// re-enqueue it if jobs were staged behind the batch.
    pub(crate) fn release(&self, tenant: u64, home: usize, retired: u64) {
        let mut s = self.lock();
        s.processed[home] += retired;
        let mut requeue = false;
        if let Some(q) = s.tenants.get_mut(&tenant) {
            q.running = false;
            if q.jobs.is_empty() {
                s.tenants.remove(&tenant);
            } else {
                s.ready[home].push_back(tenant);
                requeue = true;
            }
        }
        drop(s);
        if requeue {
            // broadcast for the same Pinned-mode reason as in `submit`
            self.work.notify_all();
        }
        self.drained.notify_all();
    }

    /// The flush barrier: wait until every home shard's `processed` has
    /// caught up with its `submitted`. `workers_gone` is polled while
    /// waiting; when it reports no live worker is left to make progress,
    /// the wait fails.
    pub(crate) fn flush(&self, workers_gone: impl Fn() -> bool) -> Result<(), ()> {
        let mut s = self.lock();
        while !drained(&s) {
            if workers_gone() {
                return Err(());
            }
            let (guard, _) = self
                .drained
                .wait_timeout(s, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            s = guard;
        }
        Ok(())
    }

    /// Close the pool: no further submissions are admitted, workers
    /// drain what is staged and then exit their claim loops.
    pub(crate) fn close(&self) {
        let mut s = self.lock();
        s.closed = true;
        drop(s);
        self.work.notify_all();
        self.space.notify_all();
        self.drained.notify_all();
    }

    /// Post-join reconciliation: with every worker gone, whatever is
    /// still staged can never run — move the shortfall into the shed
    /// counters (visibly discarded, exactly like the old design's
    /// abandoned-queue accounting) and make `processed == submitted`.
    pub(crate) fn reconcile(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        let mut s = self.lock();
        for home in 0..s.submitted.len() {
            if s.processed[home] < s.submitted[home] {
                let lost = s.submitted[home] - s.processed[home];
                self.shed[home].fetch_add(lost, Relaxed);
                s.processed[home] = s.submitted[home];
            }
            s.staged[home] = 0;
            s.ready[home].clear();
        }
        s.tenants.clear();
        drop(s);
        self.drained.notify_all();
    }

    /// Snapshot the per-home-shard accounting for stats.
    pub(crate) fn progress(&self) -> PoolProgress {
        let s = self.lock();
        PoolProgress {
            submitted: s.submitted.clone(),
            processed: s.processed.clone(),
            staged: s.staged.clone(),
        }
    }
}

fn drained(s: &Sched) -> bool {
    s.submitted
        .iter()
        .zip(&s.processed)
        .all(|(submitted, processed)| processed >= submitted)
}
