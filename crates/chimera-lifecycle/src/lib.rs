//! # chimera-lifecycle
//!
//! Tenant residency management for the multi-tenant runtime: the policy
//! half of "millions of registered tenants, a bounded working set in
//! RAM".
//!
//! PR 6 made every tenant reconstructible from its home shard's
//! snapshot + job-log replay, which means a tenant's RAM engine is a
//! *cache* of durable state, not the only copy. This crate supplies the
//! cache policy the runtime threads under its admission pool:
//!
//! * [`LifecycleConfig`] — the residency budget: a hard cap on resident
//!   engines ([`LifecycleConfig::max_resident_tenants`]) and/or an
//!   approximate bytes budget ([`LifecycleConfig::max_resident_bytes`]).
//!   The default is unbounded, i.e. the pre-lifecycle behaviour: every
//!   tenant ever touched stays resident.
//! * [`ResidencyLru`] — an intrusive LRU over tenant ids (slab-backed
//!   doubly-linked list + index map; `touch`/`remove`/`pop` are O(1), no
//!   per-operation allocation once warm). The runtime touches a tenant
//!   on every admission-pool release, so recency here is "last finished
//!   a batch", which tracks actual engine activity rather than
//!   submission arrival.
//!
//! The *mechanism* — snapshotting a cold engine into the home shard's
//! `StateStore`, dropping it from the registry, and rehydrating on the
//! next claim — lives in `chimera-runtime`, which owns the locks that
//! make eviction race-free (claim exclusivity, the tenant slot mutex,
//! the store slot). This crate is deliberately dependency-free so the
//! policy is testable in isolation and usable by other embedders of the
//! engine.

pub mod lru;

pub use lru::ResidencyLru;

/// The residency budget for a runtime's tenant engines.
///
/// Both limits default to `None` (unbounded). When either is set, the
/// runtime evicts coldest-first after each batch until the working set
/// fits, skipping tenants that are mid-transaction, have staged jobs, or
/// are homed on a poisoned shard — eviction is optional work and never
/// blocks, degrades, or drops unpersisted state.
///
/// The budget is **fixed at runtime construction**: the runtime reads
/// it once when its fabric is built, and an unbounded runtime never
/// populates the recency LRU at all. Changing the budget on a live
/// runtime is not supported — only tenants present in the LRU are
/// eviction candidates, so engines that became resident while no budget
/// was configured would be invisible to a budget imposed later. To
/// change the budget, rebuild the runtime (durable state recovers; a
/// bounded rebuild seeds the LRU from every recovered-resident engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LifecycleConfig {
    /// Maximum tenant engines resident in RAM, `None` for unbounded.
    /// A cap of 0 is treated as 1: the tenant being claimed is always
    /// resident while it runs.
    pub max_resident_tenants: Option<usize>,
    /// Approximate resident-bytes budget, `None` for unbounded. Sizes
    /// are the runtime's estimates (object/event/rule counts scaled by
    /// struct sizes), good for relative pressure, not accounting.
    pub max_resident_bytes: Option<u64>,
}

impl LifecycleConfig {
    /// The unbounded default: nothing is ever evicted.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Budget by resident-engine count.
    pub fn with_max_resident(n: usize) -> Self {
        LifecycleConfig {
            max_resident_tenants: Some(n),
            max_resident_bytes: None,
        }
    }

    /// Is any budget configured at all? The runtime skips the whole
    /// enforcement path (and its lock) when not.
    pub fn is_bounded(&self) -> bool {
        self.max_resident_tenants.is_some() || self.max_resident_bytes.is_some()
    }

    /// Does a working set of `tenants` engines totalling `bytes` exceed
    /// the budget? The count cap is clamped to ≥ 1 so the tenant
    /// currently claimed can always be resident.
    pub fn over_budget(&self, tenants: usize, bytes: u64) -> bool {
        if let Some(cap) = self.max_resident_tenants {
            if tenants > cap.max(1) {
                return true;
            }
        }
        if let Some(cap) = self.max_resident_bytes {
            if bytes > cap && tenants > 1 {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded() {
        let c = LifecycleConfig::default();
        assert!(!c.is_bounded());
        assert!(!c.over_budget(usize::MAX, u64::MAX));
    }

    #[test]
    fn count_budget() {
        let c = LifecycleConfig::with_max_resident(4);
        assert!(c.is_bounded());
        assert!(!c.over_budget(4, 0));
        assert!(c.over_budget(5, 0));
    }

    #[test]
    fn zero_cap_keeps_one_resident() {
        let c = LifecycleConfig::with_max_resident(0);
        assert!(!c.over_budget(1, 0), "the claimed tenant stays resident");
        assert!(c.over_budget(2, 0));
    }

    #[test]
    fn bytes_budget_never_evicts_the_last_tenant() {
        let c = LifecycleConfig {
            max_resident_tenants: None,
            max_resident_bytes: Some(1024),
        };
        assert!(c.over_budget(2, 2048));
        assert!(!c.over_budget(1, 2048), "a lone oversized tenant stays");
        assert!(!c.over_budget(2, 1024));
    }
}
