//! Checksummed full-store snapshots (log compaction).
//!
//! ```text
//! S <seq> <object-count>
//! P <oid> <class> <v0>,<v1>,…
//! N <next-oid-counter>
//! C <seq> <fnv1a-of-body>
//! ```
//!
//! `seq` is the commit sequence the snapshot captures; recovery replays
//! WAL batches with sequence `seq + 1, seq + 2, …` on top of it. The
//! snapshot is written to a temporary file and renamed into place, so a
//! crash mid-compaction leaves the previous snapshot (or none) intact; a
//! snapshot that fails its checksum is treated as absent rather than
//! fatal when a WAL covering the full history is available.

use crate::codec::{decode_object, encode_object};
use crate::{fnv1a, PersistError, Result};
use chimera_model::Object;
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// A decoded snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Commit sequence the snapshot captures (0 = empty store).
    pub seq: u64,
    /// Live objects in OID order.
    pub objects: Vec<Object>,
    /// OID allocation counter.
    pub next_oid: u64,
}

impl Snapshot {
    /// Render as on-disk text.
    fn render(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!("S {} {}\n", self.seq, self.objects.len()));
        for obj in &self.objects {
            body.push_str(&format!("P {}\n", encode_object(obj)));
        }
        body.push_str(&format!("N {}\n", self.next_oid));
        let crc = fnv1a(body.as_bytes());
        format!("{body}C {} {crc:016x}\n", self.seq)
    }

    /// Write atomically (temp file + rename + dir-less fsync).
    pub fn write(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(self.render().as_bytes())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and verify. `Ok(None)` when the file does not exist;
    /// `Err(Corrupt)` when it exists but fails validation.
    pub fn read(path: &Path) -> Result<Option<Snapshot>> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let corrupt = |what: &str| PersistError::Corrupt(format!("snapshot: {what}"));
        let text = String::from_utf8(bytes).map_err(|_| corrupt("invalid utf-8"))?;
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| corrupt("empty"))?;
        let (seq, count) = header
            .strip_prefix("S ")
            .and_then(|s| s.split_once(' '))
            .and_then(|(a, b)| Some((a.parse::<u64>().ok()?, b.parse::<usize>().ok()?)))
            .ok_or_else(|| corrupt("bad header"))?;
        let mut objects = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or_else(|| corrupt("truncated objects"))?;
            let payload = line
                .strip_prefix("P ")
                .ok_or_else(|| corrupt("expected object record"))?;
            objects.push(decode_object(payload)?);
        }
        let next_oid = lines
            .next()
            .and_then(|l| l.strip_prefix("N "))
            .and_then(|n| n.parse::<u64>().ok())
            .ok_or_else(|| corrupt("bad counter"))?;
        let term = lines.next().ok_or_else(|| corrupt("missing terminator"))?;
        let body_len = text
            .len()
            .checked_sub(term.len() + 1)
            .ok_or_else(|| corrupt("bad terminator"))?;
        let ok = (|| {
            let rest = term.strip_prefix("C ")?;
            let (seq_s, crc_s) = rest.split_once(' ')?;
            let term_seq: u64 = seq_s.parse().ok()?;
            let crc = u64::from_str_radix(crc_s, 16).ok()?;
            (term_seq == seq && crc == fnv1a(&text.as_bytes()[..body_len])).then_some(())
        })();
        if ok.is_none() || lines.next().is_some() {
            return Err(corrupt("terminator mismatch"));
        }
        Ok(Some(Snapshot {
            seq,
            objects,
            next_oid,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::{ClassId, Oid, Value};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("chimera-persist-snap-tests");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.chi", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    fn snap() -> Snapshot {
        Snapshot {
            seq: 7,
            objects: vec![
                Object {
                    oid: Oid(1),
                    class: ClassId(0),
                    attrs: vec![Value::Int(5), Value::Str("a b".into())],
                },
                Object {
                    oid: Oid(3),
                    class: ClassId(1),
                    attrs: vec![],
                },
            ],
            next_oid: 4,
        }
    }

    #[test]
    fn write_read_round_trip() {
        let path = tmp("round");
        let s = snap();
        s.write(&path).unwrap();
        assert_eq!(Snapshot::read(&path).unwrap(), Some(s));
    }

    #[test]
    fn missing_file_is_none() {
        assert_eq!(Snapshot::read(Path::new("/nonexistent/s.chi")).unwrap(), None);
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let path = tmp("flip");
        snap().write(&path).unwrap();
        let clean = fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut dirty = clean.clone();
            dirty[i] ^= 0x01;
            fs::write(&path, &dirty).unwrap();
            match Snapshot::read(&path) {
                Err(PersistError::Corrupt(_)) => {}
                Ok(Some(s)) => {
                    // a flip inside a value byte that still parses MUST be
                    // caught by the checksum; reaching here is a bug.
                    panic!("flip at byte {i} went undetected: {s:?}");
                }
                other => panic!("unexpected outcome for flip at {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let path = tmp("trunc");
        snap().write(&path).unwrap();
        let clean = fs::read(&path).unwrap();
        for cut in 0..clean.len() {
            fs::write(&path, &clean[..cut]).unwrap();
            assert!(
                Snapshot::read(&path).is_err(),
                "truncation at {cut} must be detected"
            );
        }
    }

    #[test]
    fn rename_leaves_no_tmp_behind() {
        let path = tmp("atomic");
        snap().write(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
    }
}
