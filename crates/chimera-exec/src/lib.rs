//! # chimera-exec
//!
//! The Chimera execution engine, following the §5 architecture:
//!
//! * the **Block Executor** executes non-interruptible blocks — user
//!   transaction lines and rule actions — against the object store;
//! * the **Event Handler** turns the resulting store mutations into event
//!   occurrences and appends them to the Event Base;
//! * the **Trigger Support** (from `chimera-rules`) then determines newly
//!   triggered rules; the engine picks the highest-priority triggered rule,
//!   *considers* it (evaluates its condition over the consumption window)
//!   and, if the condition yields bindings, executes its action as a new
//!   block — repeating until no immediate rule is triggered;
//! * `commit` first drains deferred (and any re-triggered immediate) rules,
//!   then commits the store; `rollback` undoes everything.
//!
//! Condition evaluation ([`formula`]) is set-oriented: event formulas
//! (`occurred`, `at`) bind objects/instants from the event calculus, class
//! variables range over extents, and comparison predicates filter the
//! binding tuples. Actions ([`action_exec`]) run once over all tuples.
//!
//! [`neteffect`] implements the §3.3 footnote: the `holds` predicate of
//! old Chimera is subsumed by the calculus, e.g. net creation is
//! `create(C) += -=(delete(C))`.

pub mod action_exec;
pub mod engine;
pub mod error;
pub mod formula;
pub mod neteffect;

pub use engine::{Engine, EngineConfig, EngineStats, Op};
pub use error::ExecError;
pub use formula::{evaluate_condition, Binding};
pub use neteffect::{net_created, net_deleted, net_modified};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, ExecError>;
