//! Shared helpers for the Criterion benches (see `benches/`).
//!
//! Each bench target regenerates one experiment of DESIGN.md §5; the
//! measured shapes are recorded in EXPERIMENTS.md.

use chimera_calculus::EventExpr;
use chimera_events::{EventBase, EventType};
use chimera_model::ClassId;
use chimera_workload::{StreamConfig, StreamGen};

/// External event type `n` on the bench class.
pub fn et(n: u32) -> EventType {
    EventType::external(ClassId(0), n)
}

/// Primitive expression on [`et`].
pub fn p(n: u32) -> EventExpr {
    EventExpr::prim(et(n))
}

/// A reproducible event base with `len` arrivals over `types`/`objects`.
pub fn history(seed: u64, len: usize, types: u32, objects: u64) -> EventBase {
    StreamGen::new(StreamConfig {
        event_types: types,
        objects,
        seed,
        skew: 0.3,
    })
    .build(len)
}

/// The benchmark expression menu: one representative per operator family
/// plus a deep composite (§3.1's big example shape).
pub fn operator_menu() -> Vec<(&'static str, EventExpr)> {
    vec![
        ("primitive", p(0)),
        ("disjunction", p(0).or(p(1))),
        ("conjunction", p(0).and(p(1))),
        ("negation", p(0).not()),
        ("precedence", p(0).prec(p(1))),
        ("instance-conjunction", p(0).iand(p(1))),
        ("instance-precedence", p(0).iprec(p(1))),
        ("instance-negation", p(0).iand(p(1)).inot()),
        (
            "deep-composite",
            p(0).and(p(1).prec(p(2)).or(p(3).prec(p(4))).not()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        let eb = history(1, 100, 4, 8);
        assert_eq!(eb.len(), 100);
        assert_eq!(operator_menu().len(), 9);
        for (_, e) in operator_menu() {
            e.validate().unwrap();
        }
    }
}
