//! Composite-event detection as a network service: a `chimera-net`
//! server over the sharded runtime on a loopback port, fed by
//! concurrent TCP clients, observed purely through per-job completion
//! replies — no flush-and-poll anywhere in the client path.
//!
//! Run with `cargo run --example net_service`.

use chimera::model::{AttrDef, AttrType, SchemaBuilder};
use chimera::net::{
    Client, ExternalEvent, Server, ServerConfig, TenantQuery, TenantReply, WireOutcome,
};
use chimera::runtime::{Backpressure, Runtime, RuntimeConfig};
use std::sync::Arc;

const FEEDERS: u64 = 3;
const TENANTS_PER_FEEDER: u64 = 8;
const BLOCKS: u64 = 20;

fn main() {
    // schema + one runtime-wide trigger, then the server on port 0
    let mut b = SchemaBuilder::new();
    b.class("reading", None, vec![AttrDef::new("v", AttrType::Integer)])
        .unwrap();
    let schema = b.build();
    let reading = schema.class_by_name("reading").unwrap();
    let runtime = Arc::new(
        Runtime::new(
            schema,
            vec![],
            RuntimeConfig {
                shards: 4,
                queue_capacity: 64,
                backpressure: Backpressure::Block,
                engine: Default::default(),
                telemetry: true,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let server = Server::bind("127.0.0.1:0", runtime, ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    println!("serving on {addr}");

    // concurrent feeder clients over real TCP, disjoint tenant ranges;
    // each installs a tenant-local trigger over the wire (concrete §2
    // syntax), then streams event blocks and counts rule firings out of
    // the per-job completion summaries
    std::thread::scope(|scope| {
        for f in 0..FEEDERS {
            scope.spawn(move || {
                let mut c =
                    Client::connect_with(addr, &format!("feeder-{f}"), 1 << 20).unwrap();
                let mut firings = 0u64;
                let mut errors = 0u64;
                for k in 0..TENANTS_PER_FEEDER {
                    let t = f * TENANTS_PER_FEEDER + k;
                    // no condition: the action runs once per firing (a
                    // bound condition would run it once per binding)
                    c.define_triggers(
                        t,
                        "define immediate trigger onPulse for reading
                           events external(reading#1)
                           actions create(reading)
                         end",
                    )
                    .unwrap();
                    c.begin(t).unwrap();
                    // seed object so the trigger condition has bindings
                    c.exec_block(
                        t,
                        vec![chimera::net::WireOp::Create {
                            class: reading.0,
                            inits: vec![],
                        }],
                    )
                    .unwrap();
                    for i in 0..BLOCKS {
                        c.raise_external(
                            t,
                            vec![ExternalEvent {
                                class: reading.0,
                                channel: (i % 2) as u32 + 1,
                                oid: 0,
                            }],
                        )
                        .unwrap();
                    }
                    c.commit(t).unwrap();
                }
                for done in c.drain().unwrap() {
                    match done.outcome {
                        WireOutcome::Done { executions, .. } => firings += executions,
                        WireOutcome::Error { .. } => errors += 1,
                        other => unreachable!("unexpected outcome here: {other:?}"),
                    }
                }
                println!(
                    "feeder {f}: {} tenants, {firings} rule firings, {errors} job errors",
                    TENANTS_PER_FEEDER
                );
                assert_eq!(errors, 0);
                // every odd pulse fired the tenant-local trigger once
                assert_eq!(firings, TENANTS_PER_FEEDER * BLOCKS / 2);
                // inspect one of our tenants over the wire: seed object
                // + one trigger-created object per firing
                let t = f * TENANTS_PER_FEEDER;
                match c.tenant_query(t, TenantQuery::Extent { class: reading.0 }).unwrap() {
                    TenantReply::Extent(oids) => {
                        assert_eq!(oids.len() as u64, 1 + BLOCKS / 2)
                    }
                    other => panic!("expected Extent, got {other:?}"),
                }
            });
        }
    });

    // one last client reads the aggregate picture and stops the server
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    println!(
        "aggregate: {} tenants on {} shards, {} jobs ({} events, {} executions), {} errors",
        stats.tenants,
        stats.shards,
        stats.jobs_processed,
        stats.events,
        stats.executions,
        stats.job_errors
    );
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(stats.tenants, FEEDERS * TENANTS_PER_FEEDER);
    // the runtime was built with `telemetry: true`, so one wire request
    // pulls the whole stage-latency registry (see `metrics_watch` for a
    // live poller against this kind of server)
    let m = c.metrics_snapshot().unwrap();
    assert!(m.enabled);
    for stage in ["queue_wait", "execute", "reply", "net_conn_rtt"] {
        let h = m.hist(stage).unwrap();
        println!(
            "  {stage:<14} n={:<6} p50={}ns p99={}ns max={}ns",
            h.count(),
            h.p50(),
            h.p99(),
            h.max()
        );
    }
    c.shutdown_server().unwrap();
    server.shutdown();
    println!("server stopped");
}
