//! # chimera-temporal
//!
//! Temporal extension of the Chimera event calculus, covering the two
//! related-work capabilities (§1.1 of the paper) that the minimal
//! calculus deliberately leaves out and the paper names as natural
//! extension points:
//!
//! * **Clock events** ([`clock`], [`driver`]) — HiPAC's absolute,
//!   relative and periodic time events, realised as *external* event
//!   occurrences on a reserved channel so that the calculus, the `V(E)`
//!   optimizer and the triggering semantics apply to them unchanged. The
//!   paper's clock is logical (stamps exist only when events occur);
//!   clock specs are therefore expressed in logical instants and injected
//!   by a [`driver::ClockDriver`] pumped between blocks.
//!
//! * **Derived operators** ([`derived`]) — the related-work operators
//!   that *are* expressible in the minimal calculus, provided as
//!   compilation helpers (HiPAC sequence, n-ary conjunction/disjunction,
//!   Samos `*`, Snoop's aperiodic shape), plus the one that is **not**
//!   ([`derived::TimesDetector`], Samos `Times(n, E)`), implemented as a
//!   runtime counter to document exactly where the expressiveness
//!   boundary lies (the calculus is level-based: `ts` carries activity
//!   and a stamp, never a count).

pub mod clock;
pub mod derived;
pub mod driver;

pub use clock::{ClockScheduler, ClockSpec};
pub use derived::{all_of, any_of, aperiodic, seq, star, TimesDetector};
pub use driver::ClockDriver;

/// Pseudo-object all clock occurrences are attributed to: the store never
/// allocates `Oid(0)`, so clock events can never alias a real object in
/// instance-oriented expressions.
pub const CLOCK_OID: chimera_model::Oid = chimera_model::Oid(0);
