//! Chaos oracle for the robustness layer (the PR-8 tentpole).
//!
//! Three claims, each driven by `chimera-chaos`'s deterministic fault
//! injection:
//!
//! 1. **Transient and torn storage faults are invisible.** A seeded
//!    schedule of retryable append/commit/snapshot failures — including
//!    the ambiguous torn commit, where data reached disk but the caller
//!    was told it didn't — must be fully absorbed by the runtime's
//!    bounded in-place retry: every job is acknowledged, no home is
//!    poisoned, the end state is identical to a fault-free sequential
//!    replay, and a restart from the directory recovers that same state
//!    (an acknowledged job is durable *even under fault injection*).
//!
//! 2. **A permanent fault degrades exactly one home, and the repair
//!    path heals it.** Breaking one shard's store poisons that home
//!    only: its tenants keep being answered — with the typed
//!    [`JobOutcome::RefusedDurability`] — while tenants homed elsewhere
//!    proceed oracle-identically. [`Runtime::reopen_shard_store`] then
//!    clears the poison, new jobs succeed, and a restart shows the
//!    repair made the refused-era RAM effects durable.
//!
//! 3. **A cut-happy network resolves every submission.** A client with
//!    a reconnect policy talking through a `ChaosProxy` that severs
//!    connections mid-frame must never hang and never silently drop a
//!    submission: every one resolves as `Done`, an engine `Error`, or
//!    the typed `Disconnected`, the client's orphan accounting matches,
//!    and once the proxy's cut budget is spent the session heals.
//!
//! 4. **A faulted eviction refuses and retains** (PR 10). Eviction is
//!    optional work: when the store rejects the tenant snapshot write,
//!    the engine stays resident, nothing is poisoned, no job is lost,
//!    and the next residency-pressure event simply retries.

use chimera::chaos::{
    ChaosCounters, ChaosProxy, ChaosRates, ChaosStore, FaultPlan, NetChaosConfig, StorageFault,
    StoreOp,
};
use chimera::events::Timestamp;
use chimera::exec::{Engine, EngineConfig, Op};
use chimera::lifecycle::LifecycleConfig;
use chimera::model::{AttrDef, AttrId, AttrType, ClassId, Oid, Schema, SchemaBuilder, Value};
use chimera::net::{
    Client, ClientConfig, ExternalEvent, ReconnectPolicy, Server, ServerConfig, WireJob,
    WireOutcome, JOB_DISCONNECTED,
};
use chimera::prelude::EventType;
use chimera::rules::{ActionStmt, TriggerDef};
use chimera::runtime::{
    DurabilityConfig, Job, JobOutcome, Runtime, RuntimeConfig, StorageMode, StoreWrap, TenantId,
};
use chimera::workload::{ExprGenConfig, RandomExprGen};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "item",
        None,
        vec![
            AttrDef::new("qty", AttrType::Integer),
            AttrDef::with_default("tag", AttrType::Integer, Value::Int(0)),
        ],
    )
    .unwrap();
    let s = b.build();
    assert_eq!(s.class_by_name("item").unwrap(), ClassId(0));
    s
}

fn runtime_triggers(seed: u64) -> Vec<TriggerDef> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RandomExprGen::new(ExprGenConfig {
        event_types: 4,
        max_depth: 3,
        instance_prob: 0.5,
        negation_prob: 0.2,
        seed: seed ^ 0xC4A0,
    });
    let k = rng.random_range(2..5usize);
    (0..k)
        .map(|i| {
            let mut def = TriggerDef::new(format!("r{i}"), g.generate());
            def.priority = rng.random_range(0..3i32);
            if i % 3 == 0 {
                def.actions = vec![ActionStmt::Create {
                    class: "item".into(),
                    inits: vec![],
                }];
            }
            def
        })
        .collect()
}

fn trigger_source(k: u64) -> String {
    format!(
        "define immediate trigger s{} for item\n\
           events create, modify(qty)\n\
           condition item(S), S.qty > S.tag\n\
           actions modify(S.qty, S.tag)\n\
         end",
        k % 3
    )
}

fn random_job(rng: &mut StdRng, in_txn: bool, item: ClassId) -> Job {
    if !in_txn {
        if rng.random_range(0..5u32) == 0 {
            return Job::DefineTriggerSource(trigger_source(rng.random_range(0..3u64)));
        }
        return Job::Begin;
    }
    match rng.random_range(0..11u32) {
        0..=4 => {
            let n = rng.random_range(1..4usize);
            let events = (0..n)
                .map(|_| {
                    (
                        item,
                        rng.random_range(0..4u32),
                        Oid(rng.random_range(0..4u64)),
                    )
                })
                .collect();
            Job::RaiseExternal(events)
        }
        5..=6 => {
            let n = rng.random_range(1..3usize);
            let ops = (0..n)
                .map(|_| Op::Create {
                    class: item,
                    inits: vec![(AttrId(0), Value::Int(rng.random_range(0..200i64)))],
                })
                .collect();
            Job::ExecBlock(ops)
        }
        7 => Job::Commit,
        8 => Job::Rollback,
        _ => Job::DefineTriggerSource(trigger_source(rng.random_range(0..3u64))),
    }
}

/// Everything observable about one tenant engine (minus the probe-work
/// counters, which measure this process's probing, not tenant state).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observed {
    stats: chimera::exec::EngineStats,
    in_txn: bool,
    eb_now: Timestamp,
    eb_log: Vec<(EventType, Oid, Timestamp)>,
    rules: Vec<(String, bool, bool, Timestamp, Timestamp, Timestamp)>,
    extent: Vec<Oid>,
}

fn observe(engine: &mut Engine, item: ClassId) -> Observed {
    let mut extent = engine.extent(item);
    extent.sort_unstable();
    Observed {
        stats: engine.stats(),
        in_txn: engine.in_transaction(),
        eb_now: engine.event_base().now(),
        eb_log: engine
            .event_base()
            .iter()
            .map(|e| (e.ty, e.oid, e.ts))
            .collect(),
        rules: engine
            .rules()
            .iter()
            .map(|(def, st)| {
                (
                    def.name.clone(),
                    st.triggered,
                    st.witness,
                    st.last_consideration,
                    st.last_consumption,
                    st.checked_upto,
                )
            })
            .collect(),
        extent,
    }
}

/// The fault-free sequential oracle: a fresh engine replaying one
/// tenant's jobs with the shard worker's exact `apply` semantics.
fn oracle_replay(
    schema: &Schema,
    triggers: &[TriggerDef],
    engine_cfg: &EngineConfig,
    jobs: &[Job],
    item: ClassId,
) -> (Observed, u64, Option<String>) {
    let mut engine = Engine::with_config(schema.clone(), engine_cfg.clone());
    for def in triggers {
        engine.define_trigger(def.clone()).unwrap();
    }
    let mut errors = 0u64;
    let mut last_error = None;
    for job in jobs {
        let res: Result<(), String> = match job.clone() {
            Job::Begin => engine.begin().map_err(|e| e.to_string()),
            Job::ExecBlock(ops) => engine.exec_block(&ops).map(|_| ()).map_err(|e| e.to_string()),
            Job::RaiseExternal(ev) => {
                engine.raise_external(&ev).map(|_| ()).map_err(|e| e.to_string())
            }
            Job::Commit => engine.commit().map_err(|e| e.to_string()),
            Job::Rollback => engine.rollback().map_err(|e| e.to_string()),
            Job::DefineTriggerSource(src) => apply_trigger_source(&mut engine, schema, &src),
            _ => Ok(()),
        };
        if let Err(msg) = res {
            errors += 1;
            last_error = Some(msg);
        }
    }
    (observe(&mut engine, item), errors, last_error)
}

/// Mirror of the shard worker's all-or-nothing trigger-source job.
fn apply_trigger_source(engine: &mut Engine, schema: &Schema, src: &str) -> Result<(), String> {
    let decls = chimera::lang::parse_trigger_decls(src, schema).map_err(|e| e.to_string())?;
    let mut defined: Vec<String> = Vec::with_capacity(decls.len());
    for decl in &decls {
        let result = decl
            .lower(schema)
            .map_err(|e| e.to_string())
            .and_then(|def| {
                let name = def.name.clone();
                engine
                    .define_trigger(def)
                    .map(|()| name)
                    .map_err(|e| e.to_string())
            });
        match result {
            Ok(name) => defined.push(name),
            Err(msg) => {
                for name in defined.iter().rev() {
                    let _ = engine.drop_trigger(name);
                }
                return Err(msg);
            }
        }
    }
    Ok(())
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "chimera-chaos-recovery-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Compare every tenant of a live runtime against the fault-free
/// sequential oracle over its *full* job list. `check_errors` also
/// compares the per-tenant error bookkeeping (skip it for runtimes that
/// recorded store refusals, which the engine-level oracle cannot see).
fn assert_oracle_equivalence(
    rt: &Runtime,
    s: &Schema,
    triggers: &[TriggerDef],
    engine_cfg: &EngineConfig,
    per_tenant: &[Vec<Job>],
    item: ClassId,
    check_errors: bool,
) -> Result<(), TestCaseError> {
    for (t, jobs) in per_tenant.iter().enumerate() {
        let got = rt.with_tenant(TenantId(t as u64), |e| observe(e, item));
        if jobs.is_empty() {
            prop_assert!(got.is_none(), "tenant {t}: no jobs, but an engine exists");
            continue;
        }
        let got = got.expect("tenant with jobs has an engine");
        let (want, want_errors, want_last) = oracle_replay(s, triggers, engine_cfg, jobs, item);
        prop_assert_eq!(&got, &want, "tenant {} diverged from the fault-free oracle", t);
        if check_errors {
            let (errors, last) = rt.tenant_errors(TenantId(t as u64)).unwrap();
            prop_assert_eq!(errors, want_errors, "tenant {} error count", t);
            prop_assert_eq!(last, want_last, "tenant {} last error", t);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Claim 1: transient + torn storage faults are invisible — every
    /// job acknowledged, nothing poisoned, end state (live *and* after
    /// a restart) identical to a fault-free sequential replay.
    #[test]
    fn transient_and_torn_faults_are_invisible(
        rule_seed in any::<u64>(),
        script_seed in any::<u64>(),
        chaos_seed in any::<u64>(),
        tenants in 1u64..4,
        steps in 6usize..24,
        shards in 1usize..3,
        snapshot_choice in 0u64..2,
    ) {
        let s = schema();
        let item = s.class_by_name("item").unwrap();
        let triggers = runtime_triggers(rule_seed);
        let engine_cfg = EngineConfig { max_rule_steps: 64, ..EngineConfig::default() };
        let dir = tmpdir("transient");
        let storage = DurabilityConfig {
            dir: dir.clone(),
            group_commit: true,
            snapshot_every: snapshot_choice * 2,
        };
        // aggressive but strictly retryable rates (units of 1/10000)
        let rates = ChaosRates {
            append_transient: 1500,
            commit_transient: 2000,
            commit_torn: 1500,
            snapshot_transient: 2000,
            evict_transient: 0,
        };
        let counters = Arc::new(ChaosCounters::default());
        let wrap = {
            let counters = Arc::clone(&counters);
            StoreWrap::new(move |shard, store| {
                Box::new(ChaosStore::with_counters(
                    store,
                    FaultPlan::seeded(chaos_seed ^ shard as u64, rates),
                    Arc::clone(&counters),
                ))
            })
        };
        let per_tenant = {
            let rt = Runtime::new(
                s.clone(),
                triggers.clone(),
                RuntimeConfig {
                    shards,
                    storage: StorageMode::Durable(storage.clone()),
                    engine: engine_cfg.clone(),
                    store_wrap: Some(wrap),
                    ..Default::default()
                },
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(script_seed);
            let mut in_txn = vec![false; tenants as usize];
            let mut per_tenant: Vec<Vec<Job>> = vec![Vec::new(); tenants as usize];
            for _ in 0..steps {
                let t = rng.random_range(0..tenants) as usize;
                let job = random_job(&mut rng, in_txn[t], item);
                match job {
                    Job::Begin => in_txn[t] = true,
                    Job::Commit | Job::Rollback => in_txn[t] = false,
                    _ => {}
                }
                per_tenant[t].push(job.clone());
                rt.submit(TenantId(t as u64), job).unwrap();
            }
            rt.flush().unwrap();
            let stats = rt.stats();
            prop_assert_eq!(stats.jobs_processed, stats.jobs_submitted);
            prop_assert_eq!(stats.shards_poisoned, 0, "retryable faults must never poison");
            prop_assert!(
                stats.store_retries >= counters.total(),
                "every injected fault ({}) must surface as a counted retry ({})",
                counters.total(),
                stats.store_retries
            );
            assert_oracle_equivalence(&rt, &s, &triggers, &engine_cfg, &per_tenant, item, true)?;
            per_tenant
        };
        // restart: every acknowledged job survived the fault schedule,
        // torn commits included — reopen without chaos and re-compare
        let rt = Runtime::new(
            s.clone(),
            triggers.clone(),
            RuntimeConfig {
                shards,
                storage: StorageMode::Durable(storage),
                engine: engine_cfg.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_oracle_equivalence(&rt, &s, &triggers, &engine_cfg, &per_tenant, item, true)?;
        drop(rt);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Claim 4: a transient fault on the eviction write refuses and
/// retains. The first eviction attempt the runtime ever makes is
/// forced to fail; the evicting home must keep the tenant resident
/// (state bit-exact, zero jobs lost), must *not* poison, and the next
/// residency-pressure event must retry and succeed. A chaos-free
/// restart then proves everything acknowledged was durable.
#[test]
fn refused_eviction_retains_the_tenant_and_retries() {
    let s = schema();
    let item = s.class_by_name("item").unwrap();
    let triggers = runtime_triggers(11);
    let engine_cfg = EngineConfig {
        max_rule_steps: 64,
        ..EngineConfig::default()
    };
    let dir = tmpdir("evict-refused");
    let storage = DurabilityConfig {
        dir: dir.clone(),
        group_commit: true,
        snapshot_every: 0, // tsnaps are the only snapshot path
    };
    let counters = Arc::new(ChaosCounters::default());
    let wrap = {
        let counters = Arc::clone(&counters);
        StoreWrap::new(move |_, store| {
            Box::new(ChaosStore::with_counters(
                store,
                FaultPlan::none().fail_nth(StoreOp::Evict, 0, StorageFault::Transient),
                Arc::clone(&counters),
            ))
        })
    };
    let rt = Runtime::new(
        s.clone(),
        triggers.clone(),
        RuntimeConfig {
            shards: 1,
            storage: StorageMode::Durable(storage.clone()),
            engine: engine_cfg.clone(),
            store_wrap: Some(wrap),
            lifecycle: LifecycleConfig::with_max_resident(1),
            ..Default::default()
        },
    )
    .unwrap();
    let block = |t: u64| {
        vec![
            Job::Begin,
            Job::ExecBlock(vec![Op::Create {
                class: item,
                inits: vec![(AttrId(0), Value::Int(40 + t as i64))],
            }]),
            Job::Commit,
        ]
    };
    let mut per_tenant: Vec<Vec<Job>> = Vec::new();
    // tenant 0 becomes resident; tenant 1 pushes residency to 2 > 1 and
    // triggers the first eviction attempt — the faulted one
    for t in 0..2u64 {
        per_tenant.push(block(t));
        for job in block(t) {
            rt.submit(TenantId(t), job).unwrap();
        }
        rt.flush().unwrap();
    }
    // enforcement runs worker-side just after the release that
    // satisfied the flush; wait for the injected fault to be consumed
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while counters.transient() == 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(counters.transient(), 1, "the forced eviction fault must fire");
    let stats = rt.stats();
    assert_eq!(stats.shards_poisoned, 0, "a refused eviction must not poison");
    assert_eq!(stats.jobs_processed, stats.jobs_submitted, "no job may be lost");
    assert_eq!(stats.tenants, 2, "both tenants still addressable");
    // the refused tenant is bit-exact — refuse-and-retain, not degrade
    assert_oracle_equivalence(&rt, &s, &triggers, &engine_cfg, &per_tenant, item, true).unwrap();
    // more pressure retries the eviction; the plan only forced attempt
    // 0, so enforcement now succeeds and the working set settles
    per_tenant.push(block(2));
    for job in block(2) {
        rt.submit(TenantId(2), job).unwrap();
    }
    rt.flush().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while rt.stats().tenants_resident > 1 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    let stats = rt.stats();
    assert!(
        stats.tenants_resident <= 1,
        "retried eviction must enforce the cap (got {} resident)",
        stats.tenants_resident
    );
    assert!(stats.evictions >= 1, "the retry must actually evict");
    assert_eq!(stats.shards_poisoned, 0);
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_oracle_equivalence(&rt, &s, &triggers, &engine_cfg, &per_tenant, item, true).unwrap();
    drop(rt);
    // chaos-free restart: evicted and resident tenants alike recover
    let (rt, _) = Runtime::recover(
        s.clone(),
        triggers.clone(),
        RuntimeConfig {
            shards: 1,
            storage: StorageMode::Durable(storage),
            engine: engine_cfg.clone(),
            lifecycle: LifecycleConfig::with_max_resident(1),
            ..Default::default()
        },
    )
    .unwrap();
    assert_oracle_equivalence(&rt, &s, &triggers, &engine_cfg, &per_tenant, item, true).unwrap();
    drop(rt);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Claim 2: a permanent store fault poisons exactly one home; its
/// tenants get typed refusals while other homes proceed oracle-exactly;
/// `reopen_shard_store` repairs it and makes refused-era effects
/// durable.
#[test]
fn permanent_fault_poisons_one_home_and_reopen_repairs() {
    let s = schema();
    let item = s.class_by_name("item").unwrap();
    let engine_cfg = EngineConfig {
        max_rule_steps: 64,
        ..EngineConfig::default()
    };
    let dir = tmpdir("poison");
    let storage = DurabilityConfig {
        dir: dir.clone(),
        group_commit: true,
        snapshot_every: 0,
    };
    // shard 0's third group commit breaks for good — but only while the
    // chaos is armed, so the reopened replacement store is healthy
    let armed = Arc::new(AtomicBool::new(true));
    let wrap = {
        let armed = Arc::clone(&armed);
        StoreWrap::new(move |shard, store| {
            let plan = if shard == 0 && armed.load(Ordering::Relaxed) {
                FaultPlan::none().fail_nth(StoreOp::Commit, 2, StorageFault::Permanent)
            } else {
                FaultPlan::none()
            };
            Box::new(ChaosStore::new(store, plan))
        })
    };
    let rt = Runtime::new(
        s.clone(),
        vec![],
        RuntimeConfig {
            shards: 2,
            storage: StorageMode::Durable(storage.clone()),
            engine: engine_cfg.clone(),
            store_wrap: Some(wrap),
            ..Default::default()
        },
    )
    .unwrap();
    let victim = (0u64..64).map(TenantId).find(|t| rt.shard_of(*t) == 0).unwrap();
    let healthy = (0u64..64).map(TenantId).find(|t| rt.shard_of(*t) == 1).unwrap();
    // serial submission: one job per batch, so store commits count 1:1
    let run = |tenant: TenantId, job: Job| -> JobOutcome {
        let (_, rx) = rt.submit_with_reply(tenant, job).unwrap();
        rx.recv_timeout(Duration::from_secs(30))
            .expect("every submission is answered")
            .outcome
    };
    let block = |v: i64| Job::ExecBlock(vec![Op::Create {
        class: item,
        inits: vec![(AttrId(0), Value::Int(v))],
    }]);

    // commits #0 and #1 succeed; #2 (the engine-level Commit) fails
    // permanently — the job *executed* in RAM, so the engine leaves the
    // transaction, but durability is refused and the home is poisoned
    assert!(run(victim, Job::Begin).is_done());
    assert!(run(victim, block(7)).is_done());
    let mut victim_executed = vec![Job::Begin, block(7), Job::Commit];
    match run(victim, Job::Commit) {
        JobOutcome::RefusedDurability(msg) => assert!(msg.contains("shard store failed"), "{msg}"),
        other => panic!("expected the demoted refusal, got {other:?}"),
    }
    // everything after arrives at a poisoned home: refused pre-execution
    for job in [Job::Begin, block(8), Job::Commit] {
        match run(victim, job) {
            JobOutcome::RefusedDurability(msg) => {
                assert!(msg.contains("shard store failed"), "{msg}")
            }
            other => panic!("expected a poisoned-home refusal, got {other:?}"),
        }
    }
    // the other home is untouched: a full script runs and matches the
    // oracle exactly
    let healthy_jobs = vec![Job::Begin, block(3), block(4), Job::Commit];
    for job in &healthy_jobs {
        assert!(run(healthy, job.clone()).is_done());
    }
    rt.flush().unwrap();
    let stats = rt.stats();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(stats.ready_queue_depth, 0);
    assert_eq!(stats.shards_poisoned, 1, "exactly the victim home is poisoned");
    let (verrors, vlast) = rt.tenant_errors(victim).unwrap();
    assert_eq!(
        verrors, 4,
        "the demoted Commit plus three pre-execution refusals were recorded"
    );
    assert!(vlast.unwrap().contains("shard store failed"));
    {
        let got = rt.with_tenant(healthy, |e| observe(e, item)).unwrap();
        let (want, want_errors, _) =
            oracle_replay(&s, &[], &engine_cfg, &healthy_jobs, item);
        assert_eq!(got, want, "healthy tenant diverged while the other home was down");
        assert_eq!(want_errors, 0);
    }

    // the repair: disarm the chaos, swap in a fresh store, poison clears
    armed.store(false, Ordering::Relaxed);
    rt.reopen_shard_store(0).unwrap();
    assert_eq!(rt.stats().shards_poisoned, 0, "reopen must clear the poison");
    for job in [Job::Begin, block(9), Job::Commit] {
        victim_executed.push(job.clone());
        assert!(run(victim, job).is_done(), "post-repair jobs must succeed");
    }
    // RAM was authoritative across the outage: the victim equals the
    // oracle over exactly the jobs that *executed* (the demoted Commit
    // included, the pre-execution refusals excluded)
    let got = rt.with_tenant(victim, |e| observe(e, item)).unwrap();
    let (want, _, _) = oracle_replay(&s, &[], &engine_cfg, &victim_executed, item);
    assert_eq!(got, want, "victim tenant diverged across poison + repair");
    drop(rt);

    // restart: the reopen's snapshot made the refused-era effects
    // durable, so recovery reproduces both tenants
    let rt = Runtime::new(
        s.clone(),
        vec![],
        RuntimeConfig {
            shards: 2,
            storage: StorageMode::Durable(storage),
            engine: engine_cfg.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    let got = rt.with_tenant(victim, |e| observe(e, item)).unwrap();
    let (want, _, _) = oracle_replay(&s, &[], &engine_cfg, &victim_executed, item);
    assert_eq!(got, want, "victim tenant lost state across the restart");
    let got = rt.with_tenant(healthy, |e| observe(e, item)).unwrap();
    let (want, _, _) = oracle_replay(&s, &[], &engine_cfg, &healthy_jobs, item);
    assert_eq!(got, want, "healthy tenant lost state across the restart");
    drop(rt);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression (PR-8 roadmap follow-up): a permanent fault that strikes
/// *mid-transaction* used to strand the tenant — the poisoned home
/// refused every job pre-execution, including the `Rollback` that
/// [`Runtime::reopen_shard_store`] needs the tenant to reach a
/// committed-only state, so the repair path was unreachable. The fix
/// lets `Rollback` (and only `Rollback`) through on a poisoned home as
/// a RAM-only job: the store is dead, but rolling back needs nothing
/// from it.
#[test]
fn rollback_escapes_a_poisoned_home_and_unblocks_reopen() {
    let s = schema();
    let item = s.class_by_name("item").unwrap();
    let engine_cfg = EngineConfig {
        max_rule_steps: 64,
        ..EngineConfig::default()
    };
    let dir = tmpdir("poison-midtxn");
    let storage = DurabilityConfig {
        dir: dir.clone(),
        group_commit: true,
        snapshot_every: 0,
    };
    let armed = Arc::new(AtomicBool::new(true));
    let wrap = {
        let armed = Arc::clone(&armed);
        StoreWrap::new(move |shard, store| {
            let plan = if shard == 0 && armed.load(Ordering::Relaxed) {
                FaultPlan::none().fail_nth(StoreOp::Commit, 2, StorageFault::Permanent)
            } else {
                FaultPlan::none()
            };
            Box::new(ChaosStore::new(store, plan))
        })
    };
    let rt = Runtime::new(
        s.clone(),
        vec![],
        RuntimeConfig {
            shards: 2,
            storage: StorageMode::Durable(storage.clone()),
            engine: engine_cfg.clone(),
            store_wrap: Some(wrap),
            ..Default::default()
        },
    )
    .unwrap();
    let victim = (0u64..64).map(TenantId).find(|t| rt.shard_of(*t) == 0).unwrap();
    let run = |tenant: TenantId, job: Job| -> JobOutcome {
        let (_, rx) = rt.submit_with_reply(tenant, job).unwrap();
        rx.recv_timeout(Duration::from_secs(30))
            .expect("every submission is answered")
            .outcome
    };
    let block = |v: i64| Job::ExecBlock(vec![Op::Create {
        class: item,
        inits: vec![(AttrId(0), Value::Int(v))],
    }]);

    // store commits #0 and #1 succeed; #2 — an exec block, which does
    // NOT end the transaction — fails permanently. The job executed in
    // RAM (demoted refusal), the home is poisoned, and the tenant is
    // stuck *inside* an open transaction.
    assert!(run(victim, Job::Begin).is_done());
    assert!(run(victim, block(7)).is_done());
    match run(victim, block(8)) {
        JobOutcome::RefusedDurability(msg) => assert!(msg.contains("shard store failed"), "{msg}"),
        other => panic!("expected the demoted refusal, got {other:?}"),
    }
    rt.flush().unwrap();
    assert_eq!(rt.stats().shards_poisoned, 1);
    assert!(rt.with_tenant(victim, |e| e.in_transaction()).unwrap());

    // the repair path is blocked: only committed state can be
    // snapshotted into the replacement store
    armed.store(false, Ordering::Relaxed);
    let err = rt.reopen_shard_store(0).unwrap_err().to_string();
    assert!(err.contains("open transaction"), "{err}");

    // Commit needs the dead store, so the poisoned home still refuses
    // it — but Rollback is let through as a RAM-only job and succeeds,
    // ending the transaction
    match run(victim, Job::Commit) {
        JobOutcome::RefusedDurability(msg) => assert!(msg.contains("shard store failed"), "{msg}"),
        other => panic!("expected a poisoned-home refusal, got {other:?}"),
    }
    assert!(
        run(victim, Job::Rollback).is_done(),
        "Rollback must escape a poisoned home"
    );
    assert!(!rt.with_tenant(victim, |e| e.in_transaction()).unwrap());

    // now the reopen goes through, and the tenant is healthy again
    rt.flush().unwrap();
    rt.reopen_shard_store(0).unwrap();
    assert_eq!(rt.stats().shards_poisoned, 0);
    let mut executed = vec![Job::Begin, block(7), block(8), Job::Rollback];
    for job in [Job::Begin, block(9), Job::Commit] {
        executed.push(job.clone());
        assert!(run(victim, job).is_done(), "post-repair jobs must succeed");
    }
    let got = rt.with_tenant(victim, |e| observe(e, item)).unwrap();
    let (want, _, _) = oracle_replay(&s, &[], &engine_cfg, &executed, item);
    assert_eq!(got, want, "victim diverged across mid-transaction poison + rollback + repair");
    drop(rt);

    // restart: the reopen snapshotted the rolled-back (committed-only)
    // state, and the post-repair transaction is in the fresh WAL
    let rt = Runtime::new(
        s.clone(),
        vec![],
        RuntimeConfig {
            shards: 2,
            storage: StorageMode::Durable(storage),
            engine: engine_cfg.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    let got = rt.with_tenant(victim, |e| observe(e, item)).unwrap();
    let (want, _, _) = oracle_replay(&s, &[], &engine_cfg, &executed, item);
    assert_eq!(got, want, "victim lost state across the restart");
    drop(rt);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: submission↔completion accounting under a poisoned home.
/// Forced commit failure on the only shard → every reply arrives (typed
/// refusals, never a hang), nothing leaks in the queues, and the flush
/// barrier still returns.
#[test]
fn poisoned_home_answers_everything_and_flush_returns() {
    let s = schema();
    let item = s.class_by_name("item").unwrap();
    let dir = tmpdir("accounting");
    let wrap = StoreWrap::new(|_, store| {
        Box::new(ChaosStore::new(
            store,
            FaultPlan::none().fail_nth(StoreOp::Commit, 0, StorageFault::Permanent),
        ))
    });
    let rt = Runtime::new(
        s,
        vec![],
        RuntimeConfig {
            shards: 1,
            storage: StorageMode::Durable(DurabilityConfig {
                dir: dir.clone(),
                group_commit: true,
                snapshot_every: 0,
            }),
            store_wrap: Some(wrap),
            ..Default::default()
        },
    )
    .unwrap();
    const JOBS: u64 = 30;
    let mut receivers = Vec::new();
    for k in 0..JOBS {
        let tenant = TenantId(k % 3);
        let job = match (k / 3) % 3 {
            0 => Job::Begin,
            1 => Job::ExecBlock(vec![Op::Create {
                class: item,
                inits: vec![(AttrId(0), Value::Int(k as i64))],
            }]),
            _ => Job::Commit,
        };
        let (_, rx) = rt.submit_with_reply(tenant, job).unwrap();
        receivers.push(rx);
    }
    rt.flush().unwrap();
    let (mut refused, mut errors, mut done) = (0u64, 0u64, 0u64);
    for rx in receivers {
        // the accounting claim: every reply slot is answered
        match rx
            .recv_timeout(Duration::from_secs(30))
            .expect("a poisoned home must still answer every job")
            .outcome
        {
            JobOutcome::RefusedDurability(msg) => {
                assert!(msg.contains("shard store failed"), "{msg}");
                refused += 1;
            }
            JobOutcome::Error(_) => errors += 1,
            JobOutcome::Done(_) => done += 1,
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    // the very first group commit failed: any Done in that batch was
    // demoted, everything after was refused outright
    assert_eq!(done, 0, "no job can claim durable success");
    assert!(refused >= 1);
    assert_eq!(refused + errors + done, JOBS);
    let stats = rt.stats();
    assert_eq!(stats.jobs_submitted, JOBS);
    assert_eq!(stats.jobs_processed, JOBS, "no job leaked in the queues");
    assert_eq!(stats.ready_queue_depth, 0);
    assert_eq!(stats.shards_poisoned, 1);
    drop(rt);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Claim 3: through a connection-cutting proxy, a reconnecting
    /// client resolves *every* submission — `Done`, engine `Error`, or
    /// the typed `Disconnected` — with exact orphan accounting, and the
    /// session heals once the cut budget is spent.
    #[test]
    fn cut_connections_resolve_every_submission(
        seed in any::<u64>(),
        max_cuts in 0u64..3,
        cut_lo in 400u64..900,
        cut_span in 1u64..2600,
    ) {
        let s = schema();
        let rt = Arc::new(
            Runtime::new(s, vec![], RuntimeConfig { shards: 2, ..Default::default() }).unwrap(),
        );
        let server =
            Server::bind("127.0.0.1:0", Arc::clone(&rt), ServerConfig::default()).unwrap();
        let proxy = ChaosProxy::start(
            server.local_addr(),
            NetChaosConfig {
                seed,
                // past the handshake, inside the job stream
                cut_bytes: Some((cut_lo, cut_lo + cut_span)),
                max_cuts,
                chunk_bytes: 16,
                ..NetChaosConfig::default()
            },
        )
        .unwrap();
        let mut c = Client::connect_config(
            proxy.local_addr(),
            ClientConfig {
                request_timeout: Some(Duration::from_secs(5)),
                reconnect: Some(ReconnectPolicy {
                    max_attempts: 8,
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(20),
                    jitter_seed: seed,
                }),
                ..ClientConfig::default()
            },
        )
        .unwrap();

        let mut completions = Vec::new();
        let mut submitted = 0u64;
        for round in 0..40u64 {
            let tenant = round % 3;
            let job = match round % 4 {
                0 => WireJob::Begin,
                1 | 2 => WireJob::RaiseExternal(vec![ExternalEvent {
                    class: 0,
                    channel: (round % 2) as u32,
                    oid: round,
                }]),
                _ => WireJob::Commit,
            };
            submitted += 1;
            completions.extend(c.submit(tenant, job).unwrap());
        }
        completions.extend(c.drain().unwrap());

        prop_assert_eq!(completions.len() as u64, submitted, "every submission resolves");
        let disconnected = completions
            .iter()
            .filter(|d| matches!(d.outcome, WireOutcome::Disconnected))
            .count() as u64;
        prop_assert_eq!(disconnected, c.orphaned(), "orphan accounting is exact");
        for d in &completions {
            prop_assert!(
                matches!(
                    d.outcome,
                    WireOutcome::Done { .. } | WireOutcome::Error { .. } | WireOutcome::Disconnected
                ),
                "unexpected outcome: {:?}",
                d.outcome
            );
            if matches!(d.outcome, WireOutcome::Disconnected) {
                prop_assert_eq!(d.job, JOB_DISCONNECTED);
            }
        }
        prop_assert!(
            c.reconnects() <= proxy.cuts(),
            "reconnects ({}) cannot exceed proxy cuts ({})",
            c.reconnects(),
            proxy.cuts()
        );

        // healing: the cut budget is finite, so a clean round (no
        // Disconnected) must arrive within a bounded number of attempts
        let mut healed = false;
        for _ in 0..20 {
            let mut round = Vec::new();
            round.extend(c.submit(7, WireJob::Begin).unwrap());
            round.extend(
                c.submit(
                    7,
                    WireJob::RaiseExternal(vec![ExternalEvent { class: 0, channel: 1, oid: 0 }]),
                )
                .unwrap(),
            );
            round.extend(c.submit(7, WireJob::Commit).unwrap());
            round.extend(c.drain().unwrap());
            if round
                .iter()
                .all(|d| !matches!(d.outcome, WireOutcome::Disconnected))
            {
                healed = true;
                break;
            }
        }
        prop_assert!(healed, "no clean round after {} cuts", proxy.cuts());

        // the flush barrier still works through whatever chaos remains
        let mut flushed = false;
        for _ in 0..10 {
            if c.flush().is_ok() {
                flushed = true;
                break;
            }
        }
        prop_assert!(flushed, "flush never made it through");
        // server-side accounting never leaked a job, cuts or not
        rt.flush().unwrap();
        let stats = rt.stats();
        prop_assert_eq!(stats.jobs_processed, stats.jobs_submitted);
        prop_assert_eq!(stats.ready_queue_depth, 0);
        drop(c);
        proxy.shutdown();
        server.shutdown();
    }
}
