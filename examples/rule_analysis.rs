//! Static analysis of an active-rule set before deploying it.
//!
//! Builds the paper's stock-domain triggers plus a deliberately looping
//! rule, runs the triggering-graph / termination / confluence analyses,
//! prints the report and the Graphviz rendering, then demonstrates at
//! runtime that (i) the flagged genuine loop hits the engine's cascade
//! guard while (ii) the flagged-but-convergent rule settles on its own.
//!
//! Run with: `cargo run --example rule_analysis`

use chimera::analysis::{analyze, TriggeringGraph};
use chimera::calculus::EventExpr;
use chimera::events::EventType;
use chimera::exec::{Engine, EngineConfig, Op};
use chimera::model::Value;
use chimera::rules::{ActionStmt, Condition, Formula, Term, TriggerDef, VarDecl};
use chimera::workload::{stock_schema, stock_triggers};

fn main() {
    let schema = stock_schema();
    let stock = schema.class_by_name("stock").expect("stock class");
    let q = schema.attr_by_name(stock, "quantity").expect("quantity");

    // The paper's three triggers…
    let mut defs = stock_triggers(&schema);

    // …plus a rule a hurried user might write: "whenever quantity changes,
    // bump it to a round number" — it re-triggers itself forever.
    let mut rounder = TriggerDef::new("roundUp", EventExpr::prim(EventType::modify(stock, q)));
    rounder.condition = Condition {
        decls: vec![VarDecl {
            name: "S".into(),
            class: "stock".into(),
        }],
        formulas: vec![Formula::Occurred {
            expr: EventExpr::prim(EventType::modify(stock, q)),
            var: "S".into(),
        }],
    };
    rounder.actions = vec![ActionStmt::Modify {
        var: "S".into(),
        attr: "quantity".into(),
        value: Term::Add(Box::new(Term::attr("S", "quantity")), Box::new(Term::int(1))),
    }];
    defs.push(rounder);

    println!("=== static analysis ===");
    let report = analyze(&defs, &schema).expect("analysis");
    print!("{report}");

    println!("\n=== triggering graph (Graphviz) ===");
    let graph = TriggeringGraph::build(&defs, &schema).expect("graph");
    print!("{}", graph.to_dot());

    println!("=== runtime check: the genuine loop ===");
    let mut engine = Engine::with_config(
        stock_schema(),
        EngineConfig {
            max_rule_steps: 50,
            ..EngineConfig::default()
        },
    );
    for d in &defs {
        engine.define_trigger(d.clone()).expect("define");
    }
    engine.begin().expect("begin");
    let oid = engine
        .exec_block(&[Op::Create {
            class: stock,
            inits: vec![(q, Value::Int(10))],
        }])
        .expect("create is quiet: quantity is under the max")[0]
        .oid;
    let err = engine
        .exec_block(&[Op::Modify {
            oid,
            attr: q,
            value: Value::Int(11),
        }])
        .expect_err("the roundUp cascade must hit the step guard");
    println!("engine stopped the cascade: {err}");
    engine.rollback().expect("rollback");

    println!("\n=== runtime check: the convergent flagged rule ===");
    let defs_ok = stock_triggers(&schema);
    let report_ok = analyze(&defs_ok, &schema).expect("analysis");
    println!(
        "without roundUp the verdict is still conservative: {}",
        report_ok.termination
    );
    let mut engine = Engine::new(stock_schema());
    for d in defs_ok {
        engine.define_trigger(d).expect("define");
    }
    engine.begin().expect("begin");
    let oid = engine
        .exec_block(&[Op::Create {
            class: stock,
            inits: vec![(q, Value::Int(5000))],
        }])
        .expect("block")[0]
        .oid;
    engine.commit().expect("commit");
    println!(
        "checkStockQty clamped quantity to {:?} and detriggered — \
         the flagged cycle converged ({} considerations)",
        engine.read_attr(oid, "quantity").expect("read"),
        engine.stats().considerations
    );
}
