//! Multiple tenant feeds racing into one sharded runtime.
//!
//! Four feeder threads share a single [`Runtime`] handle and drive eight
//! tenants each: every tenant gets its own engine (hashed onto one of the
//! runtime's shards), a composite-event trigger reacts to each tenant's
//! external feed independently, and the bounded queues absorb the racing
//! submissions with the Block backpressure policy. At the end, the flush
//! barrier quiesces the runtime, and per-tenant inspection shows that
//! every feed was processed in order with zero cross-talk.
//!
//! ```sh
//! cargo run --example concurrent_feeds
//! ```

use chimera::calculus::EventExpr;
use chimera::events::EventType;
use chimera::exec::EngineConfig;
use chimera::model::{AttrDef, AttrType, Oid, SchemaBuilder};
use chimera::rules::{ActionStmt, TriggerDef};
use chimera::runtime::{Backpressure, Runtime, RuntimeConfig, TenantId};

const FEEDERS: u64 = 4;
const TENANTS_PER_FEEDER: u64 = 8;
const BLOCKS_PER_TENANT: u64 = 25;

fn main() {
    let mut b = SchemaBuilder::new();
    b.class(
        "sensor",
        None,
        vec![AttrDef::new("reading", AttrType::Integer)],
    )
    .unwrap();
    let schema = b.build();
    let sensor = schema.class_by_name("sensor").unwrap();

    // an instance pair: channel 0 followed by channel 1 on the same
    // pseudo-object raises an alert (creates a sensor object)
    let p = |n: u32| EventExpr::prim(EventType::external(sensor, n));
    let mut alert = TriggerDef::new("alert_on_pair", p(0).iprec(p(1)));
    alert.actions = vec![ActionStmt::Create {
        class: "sensor".into(),
        inits: vec![],
    }];

    let rt = Runtime::new(
        schema,
        vec![alert],
        RuntimeConfig {
            shards: 4,
            queue_capacity: 16,
            backpressure: Backpressure::Block,
            engine: EngineConfig {
                check_workers: 2, // intra-shard parallel check rounds
                ..EngineConfig::default()
            },
            ..RuntimeConfig::default()
        },
    )
    .expect("valid trigger set");

    println!(
        "feeding {} tenants from {FEEDERS} threads into {} shards...",
        FEEDERS * TENANTS_PER_FEEDER,
        rt.shard_count()
    );
    std::thread::scope(|scope| {
        for f in 0..FEEDERS {
            let rt = &rt;
            scope.spawn(move || {
                for k in 0..TENANTS_PER_FEEDER {
                    let t = TenantId(f * TENANTS_PER_FEEDER + k);
                    rt.begin(t).unwrap();
                    for i in 0..BLOCKS_PER_TENANT {
                        // alternate the pair channels over two objects;
                        // every second block completes a same-object pair
                        let ch = (i % 2) as u32;
                        let obj = Oid(i / 2 % 2 + 1);
                        rt.raise_external(t, vec![(sensor, ch, obj)]).unwrap();
                    }
                    rt.commit(t).unwrap();
                }
            });
        }
    });
    rt.flush().expect("all queues drained");

    let mut alerts = 0usize;
    for t in 0..FEEDERS * TENANTS_PER_FEEDER {
        let tenant_alerts = rt
            .with_tenant(TenantId(t), |e| e.extent(sensor).len())
            .expect("tenant engine exists");
        assert_eq!(rt.tenant_errors(TenantId(t)), Some((0, None)));
        alerts += tenant_alerts;
    }
    let stats = rt.stats();
    println!(
        "processed {} jobs ({} blocked submits, {} shed), {} tenants",
        stats.jobs_processed, stats.submits_blocked, stats.jobs_shed, stats.tenants
    );
    println!(
        "engine totals: {} blocks, {} events, {} considerations, {} executions, {} commits",
        stats.engine.blocks,
        stats.engine.events,
        stats.engine.considerations,
        stats.engine.executions,
        stats.engine.commits
    );
    println!(
        "trigger support: {} check rounds, {} probes (+{} memo hits), {} filter skips",
        stats.support.check_rounds,
        stats.support.ts_probes,
        stats.support.probe_memo_hits,
        stats.support.skipped_by_filter
    );
    println!("alerts raised across all tenants: {alerts}");
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(stats.engine.commits, FEEDERS * TENANTS_PER_FEEDER);
}
