//! End-to-end engine scenarios through the surface language and the
//! interpreter: cascades, priorities, coupling/consumption modes,
//! rollback, and the engine-level consistency of the optimized trigger
//! support (workload-scale determinism).

use chimera::interp::Interpreter;
use chimera::exec::EngineConfig;
use chimera::model::Value;
use chimera::workload::{StockWorkload, StockWorkloadConfig, Trace, TraceOp};

#[test]
fn priorities_order_rule_cascades() {
    // two rules on the same event; the higher-priority one must run first,
    // observed through attribute writes.
    let mut chim = Interpreter::from_source(
        r#"
define class item
  attributes state: integer default 0
end
define immediate trigger second for item
  events create
  condition item(S), occurred(create, S), S.state = 1
  actions modify(S.state, 2)
  priority 1
end
define immediate trigger first for item
  events create
  condition item(S), occurred(create, S), S.state = 0
  actions modify(S.state, 1)
  priority 9
end
begin;
let x = create item;
commit;
"#,
    )
    .unwrap();
    chim.run_all().unwrap();
    let x = chim.var("x").unwrap();
    // `first` (priority 9) ran before `second` (priority 1); `second`
    // still found state = 1 because both were triggered by the creation.
    assert_eq!(chim.engine().read_attr(x, "state").unwrap(), Value::Int(2));
}

#[test]
fn deferred_rules_drain_at_commit_in_priority_order() {
    let mut chim = Interpreter::from_source(
        r#"
define class item
  attributes log: integer default 0
end
define deferred trigger low for item
  events create
  condition item(S), occurred(create, S)
  actions modify(S.log, S.log * 10 + 2)
  priority 1
end
define deferred trigger high for item
  events create
  condition item(S), occurred(create, S)
  actions modify(S.log, S.log * 10 + 1)
  priority 5
end
begin;
let x = create item;
"#,
    )
    .unwrap();
    chim.run_all().unwrap();
    let x = chim.var("x").unwrap();
    // nothing ran during the transaction body
    assert_eq!(chim.engine().read_attr(x, "log").unwrap(), Value::Int(0));
    chim.engine_mut().commit().unwrap();
    // high (→ …1) then low (→ …12)
    assert_eq!(chim.engine().read_attr(x, "log").unwrap(), Value::Int(12));
}

#[test]
fn consuming_vs_preserving_visibility() {
    // two counters over the same event, one consuming, one preserving:
    // after two separate creations the preserving rule has seen 1+2
    // bindings, the consuming one 1+1.
    let src = r#"
define class item attributes v: integer default 0 end
define class cons_log attributes n: integer default 0 end

define immediate consuming trigger consuming_count for item
  events create
  condition item(S), occurred(create, S)
  actions create(cons_log)
end
define immediate preserving trigger preserving_count for item
  events create
  condition item(S), occurred(create, S)
  actions create(cons_log, n: 1)
end
begin;
let a = create item;
let b = create item;
commit;
"#;
    let mut chim = Interpreter::from_source(src).unwrap();
    chim.run_all().unwrap();
    let log = chim.engine().schema().class_by_name("cons_log").unwrap();
    let logs = chim.engine().extent(log);
    let preserving = logs
        .iter()
        .filter(|&&o| chim.engine().read_attr(o, "n").unwrap() == Value::Int(1))
        .count();
    let consuming = logs.len() - preserving;
    assert_eq!(consuming, 2, "1 binding after first create, 1 after second");
    assert_eq!(preserving, 3, "1 after first create, 2 after second");
}

#[test]
fn rollback_discards_everything_including_rule_effects() {
    let mut chim = Interpreter::from_source(
        r#"
define class item attributes v: integer default 0 end
define class audit attributes n: integer default 0 end
define immediate trigger auditor for item
  events create
  condition item(S), occurred(create, S)
  actions create(audit)
end
begin;
let a = create item;
rollback;
begin;
let b = create item;
commit;
"#,
    )
    .unwrap();
    chim.run_all().unwrap();
    let item = chim.engine().schema().class_by_name("item").unwrap();
    let audit = chim.engine().schema().class_by_name("audit").unwrap();
    assert_eq!(chim.engine().extent(item).len(), 1);
    assert_eq!(chim.engine().extent(audit).len(), 1);
    // the rolled-back transaction's events must not leak into the next
    // transaction's windows (counts would be 2 otherwise).
}

#[test]
fn composite_event_trigger_via_language() {
    // untargeted rule over two classes with an instance-oriented part
    let mut chim = Interpreter::from_source(
        r#"
define class stock
  attributes quantity: integer, flagged: boolean default false
end
define class show
  attributes quantity: integer
end
define immediate trigger watch
  events modify(show.quantity) + (create(stock) += modify(stock.quantity))
  condition stock(S), occurred(create(stock) += modify(stock.quantity), S)
  actions modify(S.flagged, true)
end
begin;
let s = create stock(quantity: 5);
let v = create show(quantity: 1);
modify s.quantity = 7;
commit;
"#,
    )
    .unwrap();
    chim.run_all().unwrap();
    let s = chim.var("s").unwrap();
    // create+modify on the same stock happened, but NO show modification:
    // the conjunction never became active.
    assert_eq!(
        chim.engine().read_attr(s, "flagged").unwrap(),
        Value::Bool(false)
    );

    // now with the show modification
    let mut chim2 = Interpreter::from_source(
        r#"
define class stock
  attributes quantity: integer, flagged: boolean default false
end
define class show
  attributes quantity: integer
end
define immediate trigger watch
  events modify(show.quantity) + (create(stock) += modify(stock.quantity))
  condition stock(S), occurred(create(stock) += modify(stock.quantity), S)
  actions modify(S.flagged, true)
end
begin;
let s = create stock(quantity: 5);
let v = create show(quantity: 1);
modify s.quantity = 7;
modify v.quantity = 2;
commit;
"#,
    )
    .unwrap();
    chim2.run_all().unwrap();
    let s2 = chim2.var("s").unwrap();
    assert_eq!(
        chim2.engine().read_attr(s2, "flagged").unwrap(),
        Value::Bool(true)
    );
}

#[test]
fn optimization_does_not_change_workload_outcome() {
    let run = |optimized: bool| {
        let mut w = StockWorkload::new(StockWorkloadConfig {
            transactions: 8,
            blocks_per_txn: 5,
            ops_per_block: 4,
            seed: 99,
            with_triggers: true,
            engine: EngineConfig {
                use_static_optimization: optimized,
                ..EngineConfig::default()
            },
        });
        w.run();
        let stats = w.engine.stats();
        (
            stats.events,
            stats.considerations,
            stats.executions,
            w.engine.event_base().len(),
        )
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with, without, "§5.1 optimization must be invisible");
}

#[test]
fn trace_replay_through_trigger_cascade() {
    let schema_engine = || {
        let mut e = chimera::exec::Engine::new(chimera::workload::stock_schema());
        for def in chimera::workload::stock_triggers(e.schema()) {
            e.define_trigger(def).unwrap();
        }
        e
    };
    let mut trace = Trace::new();
    trace
        .push(TraceOp::Begin)
        .push(TraceOp::Create {
            class: "stock".into(),
            inits: vec![("quantity".into(), Value::Int(150))],
        })
        .push(TraceOp::Modify {
            handle: 0,
            attr: "quantity".into(),
            value: Value::Int(2),
        })
        .push(TraceOp::Commit);
    let mut e = schema_engine();
    let handles = trace.replay(&mut e).unwrap();
    // clamp then reorder: quantity 2, one stockOrder for 10-2=8
    assert_eq!(e.read_attr(handles[0], "quantity").unwrap(), Value::Int(2));
    let orders = e.extent(e.schema().class_by_name("stockOrder").unwrap());
    assert_eq!(orders.len(), 1);
    assert_eq!(e.read_attr(orders[0], "del_quantity").unwrap(), Value::Int(8));
}
