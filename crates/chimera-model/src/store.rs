//! Transactional object store.
//!
//! The store holds committed objects plus an *active transaction overlay*:
//! every mutating operation appends an inverse operation to an undo log, so
//! `rollback` restores the committed state exactly. Every successful
//! mutation also returns a [`Mutation`] record; the execution engine maps
//! these one-to-one onto event occurrences in the event base (the paper's
//! `create`, `delete`, `modify(attr)`, `generalize`, `specialize` event
//! types — `select` events are produced by queries, see [`ObjectStore::select`]).

use crate::error::ModelError;
use crate::ids::{AttrId, ClassId, Oid};
use crate::object::Object;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;
use std::collections::{BTreeSet, HashMap};

/// What a store operation did, reported to the event layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// Object created.
    Create,
    /// Object deleted.
    Delete,
    /// Attribute modified.
    Modify(AttrId),
    /// Object migrated up to a superclass.
    Generalize,
    /// Object migrated down to a subclass.
    Specialize,
    /// Object returned by an explicit `select` query.
    Select,
}

/// A mutation record: the raw material of an event occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mutation {
    /// Kind of operation.
    pub kind: MutationKind,
    /// Affected object.
    pub oid: Oid,
    /// Class the event is reported on. For `Generalize`/`Specialize` this
    /// is the *target* class of the migration; otherwise the object's class
    /// at the time of the operation.
    pub class: ClassId,
}

/// Transaction status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TxnStatus {
    /// No transaction running.
    #[default]
    Idle,
    /// A transaction is active.
    Active,
}

/// Inverse operations for rollback.
#[derive(Debug)]
enum Undo {
    /// Remove an object created in this transaction.
    RemoveObject(Oid),
    /// Re-insert an object deleted in this transaction.
    RestoreObject(Object),
    /// Restore a single attribute value.
    RestoreAttr(Oid, AttrId, Value),
    /// Restore class + full attribute vector (for migrations).
    RestoreShape(Oid, ClassId, Vec<Value>),
    /// Restore the OID allocator watermark.
    RestoreNextOid(u64),
}

/// The object store.
///
/// Deterministic, single-threaded, in-memory. Per-class extents are kept
/// as ordered sets so iteration order is stable (important for the
/// engine's set-oriented, deterministic rule semantics).
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: HashMap<Oid, Object>,
    /// Extent per class: objects whose *current* class is exactly that id.
    extents: HashMap<ClassId, BTreeSet<Oid>>,
    next_oid: u64,
    undo: Vec<Undo>,
    status: TxnStatus,
}

impl ObjectStore {
    /// Empty store; OIDs start at 1.
    pub fn new() -> Self {
        ObjectStore {
            objects: HashMap::new(),
            extents: HashMap::new(),
            next_oid: 1,
            undo: Vec::new(),
            status: TxnStatus::Idle,
        }
    }

    /// Current transaction status.
    pub fn status(&self) -> TxnStatus {
        self.status
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Begin a transaction.
    pub fn begin(&mut self) -> Result<()> {
        if self.status == TxnStatus::Active {
            return Err(ModelError::TransactionActive);
        }
        debug_assert!(self.undo.is_empty());
        self.status = TxnStatus::Active;
        Ok(())
    }

    /// Commit: discard the undo log, keep all changes.
    pub fn commit(&mut self) -> Result<()> {
        if self.status != TxnStatus::Active {
            return Err(ModelError::NoActiveTransaction);
        }
        self.undo.clear();
        self.status = TxnStatus::Idle;
        Ok(())
    }

    /// Rollback: undo every change of the active transaction (reverse order).
    pub fn rollback(&mut self) -> Result<()> {
        if self.status != TxnStatus::Active {
            return Err(ModelError::NoActiveTransaction);
        }
        while let Some(op) = self.undo.pop() {
            match op {
                Undo::RemoveObject(oid) => {
                    if let Some(obj) = self.objects.remove(&oid) {
                        self.extent_mut(obj.class).remove(&oid);
                    }
                }
                Undo::RestoreObject(obj) => {
                    self.extent_mut(obj.class).insert(obj.oid);
                    self.objects.insert(obj.oid, obj);
                }
                Undo::RestoreAttr(oid, attr, value) => {
                    if let Some(obj) = self.objects.get_mut(&oid) {
                        obj.set(attr, value);
                    }
                }
                Undo::RestoreShape(oid, class, attrs) => {
                    if let Some(obj) = self.objects.get_mut(&oid) {
                        self.extents.get_mut(&obj.class).map(|e| e.remove(&oid));
                        obj.class = class;
                        obj.attrs = attrs;
                        self.extents.entry(class).or_default().insert(oid);
                    }
                }
                Undo::RestoreNextOid(v) => self.next_oid = v,
            }
        }
        self.status = TxnStatus::Idle;
        Ok(())
    }

    fn extent_mut(&mut self, class: ClassId) -> &mut BTreeSet<Oid> {
        self.extents.entry(class).or_default()
    }

    fn require_txn(&self) -> Result<()> {
        if self.status != TxnStatus::Active {
            return Err(ModelError::NoActiveTransaction);
        }
        Ok(())
    }

    /// Create an object of `class`. `inits` assigns values to named slots;
    /// unassigned slots take the declared default.
    pub fn create(
        &mut self,
        schema: &Schema,
        class: ClassId,
        inits: &[(AttrId, Value)],
    ) -> Result<Mutation> {
        self.require_txn()?;
        let def = schema.class(class)?;
        let mut attrs: Vec<Value> = def.attrs.iter().map(|a| a.default.clone()).collect();
        for (attr, value) in inits {
            let adef = schema.attr(class, *attr)?;
            if !value.conforms_to(adef.ty) {
                return Err(ModelError::TypeMismatch {
                    class: def.name.clone(),
                    attr: adef.name.clone(),
                    expected: adef.ty,
                });
            }
            attrs[attr.index()] = value.clone();
        }
        let oid = Oid(self.next_oid);
        self.undo.push(Undo::RestoreNextOid(self.next_oid));
        self.next_oid += 1;
        self.objects.insert(oid, Object { oid, class, attrs });
        self.extent_mut(class).insert(oid);
        self.undo.push(Undo::RemoveObject(oid));
        Ok(Mutation {
            kind: MutationKind::Create,
            oid,
            class,
        })
    }

    /// Delete an object.
    pub fn delete(&mut self, oid: Oid) -> Result<Mutation> {
        self.require_txn()?;
        let obj = self
            .objects
            .remove(&oid)
            .ok_or(ModelError::UnknownObject(oid))?;
        self.extent_mut(obj.class).remove(&oid);
        let class = obj.class;
        self.undo.push(Undo::RestoreObject(obj));
        Ok(Mutation {
            kind: MutationKind::Delete,
            oid,
            class,
        })
    }

    /// Modify one attribute of an object.
    pub fn modify(
        &mut self,
        schema: &Schema,
        oid: Oid,
        attr: AttrId,
        value: Value,
    ) -> Result<Mutation> {
        self.require_txn()?;
        let obj = self
            .objects
            .get_mut(&oid)
            .ok_or(ModelError::UnknownObject(oid))?;
        let class = obj.class;
        let adef = schema.attr(class, attr)?;
        if !value.conforms_to(adef.ty) {
            return Err(ModelError::TypeMismatch {
                class: schema.class_name(class).to_owned(),
                attr: adef.name.clone(),
                expected: adef.ty,
            });
        }
        let old = obj.set(attr, value);
        self.undo.push(Undo::RestoreAttr(oid, attr, old));
        Ok(Mutation {
            kind: MutationKind::Modify(attr),
            oid,
            class,
        })
    }

    /// Migrate an object *down* to `target`, a strict subclass of its
    /// current class. New slots take their declared defaults.
    pub fn specialize(&mut self, schema: &Schema, oid: Oid, target: ClassId) -> Result<Mutation> {
        self.require_txn()?;
        let obj = self
            .objects
            .get(&oid)
            .ok_or(ModelError::UnknownObject(oid))?;
        let from = obj.class;
        if !schema.is_strict_subclass(target, from) {
            return Err(ModelError::NotASubclass { from, to: target });
        }
        let tdef = schema.class(target)?;
        let obj = self.objects.get_mut(&oid).expect("checked above");
        self.undo
            .push(Undo::RestoreShape(oid, from, obj.attrs.clone()));
        for adef in &tdef.attrs[obj.attrs.len()..] {
            obj.attrs.push(adef.default.clone());
        }
        obj.class = target;
        self.extents.entry(from).or_default().remove(&oid);
        self.extents.entry(target).or_default().insert(oid);
        Ok(Mutation {
            kind: MutationKind::Specialize,
            oid,
            class: target,
        })
    }

    /// Migrate an object *up* to `target`, a strict superclass of its
    /// current class. Subclass-only slots are dropped.
    pub fn generalize(&mut self, schema: &Schema, oid: Oid, target: ClassId) -> Result<Mutation> {
        self.require_txn()?;
        let obj = self
            .objects
            .get(&oid)
            .ok_or(ModelError::UnknownObject(oid))?;
        let from = obj.class;
        if !schema.is_strict_subclass(from, target) {
            return Err(ModelError::NotASuperclass { from, to: target });
        }
        let tdef = schema.class(target)?;
        let keep = tdef.attrs.len();
        let obj = self.objects.get_mut(&oid).expect("checked above");
        self.undo
            .push(Undo::RestoreShape(oid, from, obj.attrs.clone()));
        obj.attrs.truncate(keep);
        obj.class = target;
        self.extents.entry(from).or_default().remove(&oid);
        self.extents.entry(target).or_default().insert(oid);
        Ok(Mutation {
            kind: MutationKind::Specialize, // placeholder, fixed below
            oid,
            class: target,
        })
        .map(|mut m| {
            m.kind = MutationKind::Generalize;
            m
        })
    }

    /// Query the extent of `class` (optionally including subclasses),
    /// returning matching objects and one `Select` mutation per object.
    ///
    /// Chimera counts `select` among the event types; callers that do not
    /// want select events can ignore the mutations.
    pub fn select(
        &mut self,
        schema: &Schema,
        class: ClassId,
        include_subclasses: bool,
        mut pred: impl FnMut(&Object) -> bool,
    ) -> Result<(Vec<Oid>, Vec<Mutation>)> {
        self.require_txn()?;
        let classes = if include_subclasses {
            schema.descendants(class)
        } else {
            vec![class]
        };
        let mut oids = Vec::new();
        let mut muts = Vec::new();
        for c in classes {
            if let Some(extent) = self.extents.get(&c) {
                for &oid in extent {
                    let obj = &self.objects[&oid];
                    if pred(obj) {
                        oids.push(oid);
                        muts.push(Mutation {
                            kind: MutationKind::Select,
                            oid,
                            class: c,
                        });
                    }
                }
            }
        }
        Ok((oids, muts))
    }

    /// Read-only object access.
    pub fn get(&self, oid: Oid) -> Result<&Object> {
        self.objects.get(&oid).ok_or(ModelError::UnknownObject(oid))
    }

    /// Does the object exist?
    pub fn contains(&self, oid: Oid) -> bool {
        self.objects.contains_key(&oid)
    }

    /// Read an attribute value.
    pub fn read_attr(&self, oid: Oid, attr: AttrId) -> Result<&Value> {
        let obj = self.get(oid)?;
        obj.get(attr)
            .ok_or(ModelError::UnknownAttributeId {
                class: obj.class,
                attr,
            })
    }

    /// Objects whose current class is exactly `class`, in OID order.
    pub fn extent(&self, class: ClassId) -> impl Iterator<Item = Oid> + '_ {
        self.extents
            .get(&class)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Objects of `class` or any subclass, in OID order.
    pub fn extent_deep(&self, schema: &Schema, class: ClassId) -> Vec<Oid> {
        let mut out: Vec<Oid> = schema
            .descendants(class)
            .into_iter()
            .flat_map(|c| {
                self.extents
                    .get(&c)
                    .map(|s| s.iter().copied().collect::<Vec<_>>())
                    .unwrap_or_default()
            })
            .collect();
        out.sort();
        out
    }

    /// All live objects in OID order (snapshot/recovery support).
    pub fn snapshot_objects(&self) -> Vec<&Object> {
        let mut out: Vec<&Object> = self.objects.values().collect();
        out.sort_by_key(|o| o.oid);
        out
    }

    /// The OID allocation counter (the next `create` receives this OID).
    /// Durable logs must persist it: reconstructing it as `max + 1` would
    /// re-use the OID of a deleted most-recent object.
    pub fn next_oid_counter(&self) -> u64 {
        self.next_oid
    }

    /// Rebuild a store from recovered objects and the persisted OID
    /// counter. Extents are derived; the store starts idle (no open
    /// transaction survives a crash by definition).
    ///
    /// Fails on duplicate OIDs or an OID at/above the counter — both
    /// indicate a corrupt or truncated recovery source that the WAL
    /// layer's checksums should have filtered already.
    pub fn restore(objects: Vec<Object>, next_oid: u64) -> Result<Self> {
        let mut store = ObjectStore::new();
        store.next_oid = next_oid;
        for obj in objects {
            if obj.oid.0 >= next_oid {
                return Err(ModelError::CorruptRestore(format!(
                    "object {} at/above the OID counter {next_oid}",
                    obj.oid
                )));
            }
            let (oid, class) = (obj.oid, obj.class);
            if store.objects.insert(oid, obj).is_some() {
                return Err(ModelError::CorruptRestore(format!("duplicate object {oid}")));
            }
            store.extent_mut(class).insert(oid);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, SchemaBuilder};
    use crate::value::AttrType;

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class(
            "stock",
            None,
            vec![
                AttrDef::new("quantity", AttrType::Integer),
                AttrDef::with_default("max_quantity", AttrType::Integer, Value::Int(100)),
            ],
        )
        .unwrap();
        b.class(
            "perishable",
            Some("stock"),
            vec![AttrDef::new("expiry", AttrType::Time)],
        )
        .unwrap();
        b.build()
    }

    fn open() -> (Schema, ObjectStore) {
        let s = schema();
        let mut st = ObjectStore::new();
        st.begin().unwrap();
        (s, st)
    }

    #[test]
    fn create_uses_defaults_and_inits() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let q = s.attr_by_name(stock, "quantity").unwrap();
        let m = st.create(&s, stock, &[(q, Value::Int(7))]).unwrap();
        assert_eq!(m.kind, MutationKind::Create);
        let obj = st.get(m.oid).unwrap();
        assert_eq!(obj.get(q), Some(&Value::Int(7)));
        // default applied
        let maxq = s.attr_by_name(stock, "max_quantity").unwrap();
        assert_eq!(obj.get(maxq), Some(&Value::Int(100)));
    }

    #[test]
    fn create_type_checked() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let q = s.attr_by_name(stock, "quantity").unwrap();
        let err = st
            .create(&s, stock, &[(q, Value::Str("x".into()))])
            .unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn modify_and_read() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let q = s.attr_by_name(stock, "quantity").unwrap();
        let m = st.create(&s, stock, &[]).unwrap();
        let mm = st.modify(&s, m.oid, q, Value::Int(42)).unwrap();
        assert_eq!(mm.kind, MutationKind::Modify(q));
        assert_eq!(st.read_attr(m.oid, q).unwrap(), &Value::Int(42));
    }

    #[test]
    fn delete_removes_from_extent() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let m = st.create(&s, stock, &[]).unwrap();
        assert_eq!(st.extent(stock).count(), 1);
        let dm = st.delete(m.oid).unwrap();
        assert_eq!(dm.kind, MutationKind::Delete);
        assert_eq!(st.extent(stock).count(), 0);
        assert!(st.get(m.oid).is_err());
    }

    #[test]
    fn oids_never_reused_after_rollback_of_later_txn() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let m1 = st.create(&s, stock, &[]).unwrap();
        st.commit().unwrap();
        st.begin().unwrap();
        let m2 = st.create(&s, stock, &[]).unwrap();
        assert!(m2.oid > m1.oid);
        st.rollback().unwrap();
        // rolled back txn restores the watermark: acceptable to reuse within
        // the aborted range, but committed OIDs are never clobbered.
        st.begin().unwrap();
        let m3 = st.create(&s, stock, &[]).unwrap();
        assert!(m3.oid > m1.oid);
        assert!(st.contains(m1.oid));
    }

    #[test]
    fn rollback_restores_everything() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let q = s.attr_by_name(stock, "quantity").unwrap();
        let m = st.create(&s, stock, &[(q, Value::Int(1))]).unwrap();
        st.commit().unwrap();

        st.begin().unwrap();
        st.modify(&s, m.oid, q, Value::Int(99)).unwrap();
        let m2 = st.create(&s, stock, &[]).unwrap();
        st.delete(m.oid).unwrap();
        st.rollback().unwrap();

        assert!(st.contains(m.oid));
        assert!(!st.contains(m2.oid));
        assert_eq!(st.read_attr(m.oid, q).unwrap(), &Value::Int(1));
        assert_eq!(st.extent(stock).count(), 1);
    }

    #[test]
    fn specialize_then_generalize_roundtrip() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let perishable = s.class_by_name("perishable").unwrap();
        let q = s.attr_by_name(stock, "quantity").unwrap();
        let m = st.create(&s, stock, &[(q, Value::Int(5))]).unwrap();

        let sm = st.specialize(&s, m.oid, perishable).unwrap();
        assert_eq!(sm.kind, MutationKind::Specialize);
        assert_eq!(sm.class, perishable);
        let obj = st.get(m.oid).unwrap();
        assert_eq!(obj.class, perishable);
        assert_eq!(obj.attrs.len(), 3);
        assert_eq!(obj.get(q), Some(&Value::Int(5))); // kept

        let gm = st.generalize(&s, m.oid, stock).unwrap();
        assert_eq!(gm.kind, MutationKind::Generalize);
        let obj = st.get(m.oid).unwrap();
        assert_eq!(obj.class, stock);
        assert_eq!(obj.attrs.len(), 2);
        // extents updated
        assert_eq!(st.extent(stock).count(), 1);
        assert_eq!(st.extent(perishable).count(), 0);
    }

    #[test]
    fn invalid_migrations_rejected() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let perishable = s.class_by_name("perishable").unwrap();
        let m = st.create(&s, stock, &[]).unwrap();
        assert!(matches!(
            st.generalize(&s, m.oid, perishable).unwrap_err(),
            ModelError::NotASuperclass { .. }
        ));
        assert!(matches!(
            st.specialize(&s, m.oid, stock).unwrap_err(),
            ModelError::NotASubclass { .. }
        ));
    }

    #[test]
    fn rollback_restores_migrations() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let perishable = s.class_by_name("perishable").unwrap();
        let m = st.create(&s, stock, &[]).unwrap();
        st.commit().unwrap();
        st.begin().unwrap();
        st.specialize(&s, m.oid, perishable).unwrap();
        st.rollback().unwrap();
        let obj = st.get(m.oid).unwrap();
        assert_eq!(obj.class, stock);
        assert_eq!(obj.attrs.len(), 2);
        assert_eq!(st.extent(stock).count(), 1);
    }

    #[test]
    fn select_with_predicate_and_subclasses() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let perishable = s.class_by_name("perishable").unwrap();
        let q = s.attr_by_name(stock, "quantity").unwrap();
        st.create(&s, stock, &[(q, Value::Int(1))]).unwrap();
        st.create(&s, stock, &[(q, Value::Int(10))]).unwrap();
        st.create(&s, perishable, &[(q, Value::Int(10))]).unwrap();
        let (oids, muts) = st
            .select(&s, stock, true, |o| {
                o.get(q).map(|v| v.predicate_eq(&Value::Int(10))).unwrap_or(false)
            })
            .unwrap();
        assert_eq!(oids.len(), 2);
        assert!(muts.iter().all(|m| m.kind == MutationKind::Select));
        let (shallow, _) = st
            .select(&s, stock, false, |o| {
                o.get(q).map(|v| v.predicate_eq(&Value::Int(10))).unwrap_or(false)
            })
            .unwrap();
        assert_eq!(shallow.len(), 1);
    }

    #[test]
    fn operations_require_transaction() {
        let s = schema();
        let mut st = ObjectStore::new();
        let stock = s.class_by_name("stock").unwrap();
        assert!(matches!(
            st.create(&s, stock, &[]).unwrap_err(),
            ModelError::NoActiveTransaction
        ));
        assert!(st.commit().is_err());
        assert!(st.rollback().is_err());
        st.begin().unwrap();
        assert!(st.begin().is_err());
    }

    #[test]
    fn extent_deep_sorted() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let perishable = s.class_by_name("perishable").unwrap();
        let a = st.create(&s, perishable, &[]).unwrap();
        let b = st.create(&s, stock, &[]).unwrap();
        let deep = st.extent_deep(&s, stock);
        assert_eq!(deep, vec![a.oid, b.oid]);
    }

    #[test]
    fn snapshot_and_restore_round_trip() {
        let (s, mut st) = open();
        let stock = s.class_by_name("stock").unwrap();
        let q = s.attr_by_name(stock, "quantity").unwrap();
        let a = st.create(&s, stock, &[(q, Value::Int(3))]).unwrap();
        let b = st.create(&s, stock, &[]).unwrap();
        st.delete(b.oid).unwrap();
        st.commit().unwrap();

        let objects: Vec<Object> = st.snapshot_objects().into_iter().cloned().collect();
        let counter = st.next_oid_counter();
        assert_eq!(counter, 3, "two allocations happened");

        let mut restored = ObjectStore::restore(objects, counter).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored.read_attr(a.oid, q).unwrap(), &Value::Int(3));
        assert_eq!(restored.extent(stock).collect::<Vec<_>>(), vec![a.oid]);
        // the counter survived: the next create does not re-use b's OID
        restored.begin().unwrap();
        let c = restored.create(&s, stock, &[]).unwrap();
        assert_eq!(c.oid, Oid(3));
    }

    #[test]
    fn restore_rejects_corrupt_input() {
        let obj = Object {
            oid: Oid(5),
            class: ClassId(0),
            attrs: vec![],
        };
        // OID at/above the counter
        assert!(matches!(
            ObjectStore::restore(vec![obj.clone()], 5),
            Err(ModelError::CorruptRestore(_))
        ));
        // duplicate OID
        assert!(matches!(
            ObjectStore::restore(vec![obj.clone(), obj], 6),
            Err(ModelError::CorruptRestore(_))
        ));
    }
}
