//! Pretty-printer. Output is guaranteed to re-parse to the same AST
//! (round-trip property, tested here and in the integration suite).

use crate::ast::{AttrSpec, ClassDecl, TriggerDecl};
use chimera_calculus::EventExpr;
use chimera_model::Schema;
use chimera_rules::condition::{Condition, Formula};
use chimera_rules::{ActionStmt, ConsumptionMode, CouplingMode};
use std::fmt::Write as _;

/// Render an event expression in concrete syntax (class-qualified atoms).
pub fn print_event_expr(expr: &EventExpr, schema: &Schema) -> String {
    expr.render(schema)
}

/// Render a class declaration.
pub fn print_class(decl: &ClassDecl) -> String {
    let mut s = String::new();
    write!(s, "define class {}", decl.name).unwrap();
    if let Some(sup) = &decl.superclass {
        write!(s, " extends {sup}").unwrap();
    }
    if !decl.attrs.is_empty() {
        s.push_str("\n  attributes ");
        let parts: Vec<String> = decl.attrs.iter().map(print_attr).collect();
        s.push_str(&parts.join(",\n             "));
    }
    s.push_str("\nend\n");
    s
}

fn print_attr(a: &AttrSpec) -> String {
    match &a.default {
        Some(v) => format!("{}: {} default {}", a.name, a.ty, v),
        None => format!("{}: {}", a.name, a.ty),
    }
}

/// Render a trigger declaration.
pub fn print_trigger(decl: &TriggerDecl, schema: &Schema) -> String {
    let mut s = String::new();
    s.push_str("define ");
    if decl.coupling == CouplingMode::Deferred {
        s.push_str("deferred ");
    } else {
        s.push_str("immediate ");
    }
    if decl.consumption == ConsumptionMode::Preserving {
        s.push_str("preserving ");
    }
    write!(s, "trigger {}", decl.name).unwrap();
    if let Some(t) = &decl.target {
        write!(s, " for {t}").unwrap();
    }
    write!(s, "\n  events {}", decl.events.render(schema)).unwrap();
    if !(decl.condition.decls.is_empty() && decl.condition.formulas.is_empty()) {
        write!(s, "\n  condition {}", print_condition(&decl.condition, schema)).unwrap();
    }
    if !decl.actions.is_empty() {
        let parts: Vec<String> = decl.actions.iter().map(print_action).collect();
        write!(s, "\n  actions {}", parts.join(";\n          ")).unwrap();
    }
    if decl.priority != 0 {
        write!(s, "\n  priority {}", decl.priority).unwrap();
    }
    s.push_str("\nend\n");
    s
}

fn print_condition(cond: &Condition, schema: &Schema) -> String {
    let mut parts: Vec<String> = cond
        .decls
        .iter()
        .map(|d| format!("{}({})", d.class, d.name))
        .collect();
    for f in &cond.formulas {
        parts.push(match f {
            Formula::Occurred { expr, var } => {
                format!("occurred({}, {var})", expr.render(schema))
            }
            Formula::At {
                expr,
                var,
                time_var,
            } => format!("at({}, {var}, {time_var})", expr.render(schema)),
            Formula::Compare { lhs, op, rhs } => format!("{lhs} {op} {rhs}"),
        });
    }
    parts.join(",\n            ")
}

fn print_action(a: &ActionStmt) -> String {
    match a {
        ActionStmt::Create { class, inits } => {
            let mut s = format!("create({class}");
            for (attr, t) in inits {
                s.push_str(&format!(", {attr}: {t}"));
            }
            s.push(')');
            s
        }
        ActionStmt::Modify { var, attr, value } => format!("modify({var}.{attr}, {value})"),
        ActionStmt::Delete { var } => format!("delete({var})"),
        ActionStmt::Specialize { var, target } => format!("specialize({var}, {target})"),
        ActionStmt::Generalize { var, target } => format!("generalize({var}, {target})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_event_expr, parse_program};
    use chimera_events::EventType;

    const SCHEMA_SRC: &str = "
define class stock
  attributes quantity: integer,
             max_quantity: integer default 100
end
define class show
  attributes quantity: integer
end
";

    #[test]
    fn event_expr_roundtrip() {
        let (_, schema) = parse_program(SCHEMA_SRC).unwrap();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let show = schema.class_by_name("show").unwrap();
        let create = EventExpr::prim(EventType::create(stock));
        let modify = EventExpr::prim(EventType::modify(stock, q));
        let mshow = EventExpr::prim(EventType::create(show));
        let exprs = [
            create.clone(),
            create.clone().or(modify.clone()),
            create.clone().and(modify.clone()).not(),
            create.clone().iprec(modify.clone()).or(mshow.clone()),
            create.clone().iand(modify.clone()).inot().and(mshow.clone()),
            create.clone().not().not(),
            create.clone().prec(modify.clone()).prec(mshow.clone()),
            create.clone().ior(modify.clone()).iand(create.clone()),
        ];
        for e in &exprs {
            let printed = print_event_expr(e, &schema);
            let back = parse_event_expr(&printed, &schema, None)
                .unwrap_or_else(|err| panic!("reparsing `{printed}`: {err}"));
            assert_eq!(&back, e, "roundtrip of `{printed}`");
        }
    }

    #[test]
    fn class_roundtrip() {
        let (prog, _) = parse_program(SCHEMA_SRC).unwrap();
        for c in prog.classes() {
            let printed = print_class(c);
            let (prog2, _) = parse_program(&printed).unwrap();
            assert_eq!(prog2.classes().next().unwrap(), c, "from `{printed}`");
        }
    }

    #[test]
    fn trigger_roundtrip() {
        let src = format!(
            "{SCHEMA_SRC}
define deferred preserving trigger t1 for stock
  events create , modify(quantity)
  condition stock(S), occurred(create <= modify(quantity), S),
            S.quantity > S.max_quantity + 5
  actions modify(S.quantity, S.max_quantity);
          create(show, quantity: S.quantity)
  priority 3
end
define immediate trigger t2 for stock
  events -(create + delete)
  actions delete(S)
end"
        );
        let (prog, schema) = parse_program(&src).unwrap();
        for t in prog.triggers() {
            let printed = print_trigger(t, &schema);
            let full = format!("{SCHEMA_SRC}\n{printed}");
            let (prog2, _) =
                parse_program(&full).unwrap_or_else(|e| panic!("reparsing:\n{printed}\n{e}"));
            let t2 = prog2.triggers().next().unwrap();
            assert_eq!(t2, t, "roundtrip of:\n{printed}");
        }
    }
}
