//! PERF-1 — per-operator `ts` evaluation cost against window size: the §5
//! claim that triggering evaluation stays cheap because primitive lookups
//! are index probes, independent of how many occurrences the window holds
//! (contrast with the naive baseline in `baselines.rs`).

use chimera_bench::{history, operator_menu};
use chimera_calculus::ts_logical;
use chimera_events::Window;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_operators(c: &mut Criterion) {
    for &n in &[100usize, 1_000, 10_000] {
        let eb = history(17, n, 8, 64);
        let w = Window::from_origin(eb.now());
        let now = eb.now();
        let mut g = c.benchmark_group(format!("ts_window_{n}"));
        for (name, expr) in operator_menu() {
            g.bench_with_input(BenchmarkId::from_parameter(name), &expr, |b, e| {
                b.iter(|| black_box(ts_logical(e, &eb, w, now)));
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
