//! PERF-skew — hot-tenant skew across runtime shards: the PR-7
//! pinned-hash vs load-aware scheduling comparison.
//!
//! The adversarial scenario for static hash pinning is a Zipf tenant
//! population whose ids *collide* onto one home shard: under
//! `Scheduler::Pinned` every job of every tenant funnels through the one
//! worker that owns shard 0, while `Scheduler::LoadAware` lets idle
//! workers steal whole ready tenants and spread the cold tail across the
//! machine. The hot tenant's own stream stays serial under both (per-
//! tenant FIFO is structural), so the speedup bound is
//! `min(1/hot_share, workers)` — the bench draws its job mix from
//! [`chimera_workload::zipf`] with a hot share around one third, leaving
//! headroom for the ≥ 2× acceptance bar at 4 workers.
//!
//! Two experiments:
//!
//! * **`skew`**: one full ingestion session — colliding Zipf tenant set,
//!   fixed pre-drawn job sequence, flush — per scheduler at 2/4/8
//!   workers, as separate Criterion ids (`skew/pinned/4`,
//!   `skew/loadaware/4`, …) so both land in `CHIMERA_BENCH_JSON`.
//! * **the self-reported acceptance criterion**: load-aware vs pinned
//!   session throughput at 4 workers, printed with the host parallelism
//!   (single-core containers cannot show the parallel win; the printed
//!   `host parallelism` line is the context for the number) and merged
//!   into `BENCH.json` as `skew/accept_ratio_w4`.

use chimera_calculus::EventExpr;
use chimera_events::EventType;
use chimera_exec::EngineConfig;
use chimera_model::{AttrDef, AttrType, Oid, Schema, SchemaBuilder};
use chimera_rules::TriggerDef;
use chimera_runtime::{Backpressure, Runtime, RuntimeConfig, Scheduler, TenantId};
use chimera_workload::{ZipfTenants, ZipfTenantsConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

fn measure_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn single_shot() -> bool {
    std::env::var_os("CHIMERA_BENCH_SINGLE_SHOT").is_some_and(|v| !v.is_empty() && v != "0")
}

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("item", None, vec![AttrDef::new("qty", AttrType::Integer)])
        .unwrap();
    b.build()
}

/// The parallel.rs rule shape: `nrules` rules over 16 external channels
/// (offset 1000+), a conjunction + precedence mix.
fn rules(schema: &Schema, nrules: usize) -> Vec<TriggerDef> {
    let item = schema.class_by_name("item").unwrap();
    let p = |n: u32| EventExpr::prim(EventType::external(item, n));
    (0..nrules)
        .map(|i| {
            let a = 1000 + (i as u32 % 16);
            let b = 1000 + ((i as u32 + 7) % 16);
            let expr = if i % 2 == 0 { p(a).and(p(b)) } else { p(a).prec(p(b)) };
            TriggerDef::new(format!("r{i}"), expr)
        })
        .collect()
}

/// Job `j` for tenant `tenant`: `per_block` external events, ~50%
/// relevant to the rules' channel range.
fn block(
    schema: &Schema,
    tenant: u64,
    j: u64,
    per_block: usize,
) -> Vec<(chimera_model::ClassId, u32, Oid)> {
    let item = schema.class_by_name("item").unwrap();
    let mut k = tenant.wrapping_mul(0x9E37_79B9).wrapping_add(j);
    (0..per_block)
        .map(|_| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = (k >> 33) % 100;
            let ch = if roll < 50 {
                1000 + ((k >> 13) % 16) as u32
            } else {
                ((k >> 13) % 16) as u32
            };
            (item, ch, Oid((k >> 7) % 32 + 1))
        })
        .collect()
}

/// The first `n` tenant ids whose home shard is 0 at *every* worker
/// count in `worker_counts` — the adversarial placement for pinning.
/// Queried through the public `Runtime::shard_of` so the bench tracks
/// the runtime's real placement function instead of cloning it.
fn colliding_ids(schema: &Schema, worker_counts: &[usize], n: usize) -> Vec<u64> {
    let probes: Vec<Runtime> = worker_counts
        .iter()
        .map(|&w| {
            Runtime::new(
                schema.clone(),
                Vec::new(),
                RuntimeConfig {
                    shards: w,
                    ..RuntimeConfig::default()
                },
            )
            .expect("empty rule set is valid")
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    let mut id = 1u64;
    while out.len() < n {
        if probes.iter().all(|rt| rt.shard_of(TenantId(id)) == 0) {
            out.push(id);
        }
        id += 1;
    }
    out
}

/// The fixed Zipf job mix: which tenant (by rank index into the id set)
/// issues each job. Drawn once, reused by every session, so pinned and
/// load-aware time the identical workload.
fn job_mix(tenants: u64, jobs: usize) -> Vec<u64> {
    ZipfTenants::new(ZipfTenantsConfig {
        tenants,
        s: 1.1,
        hot_boost: 1.0,
        seed: 0xC0FFEE,
    })
    .ranks(jobs)
}

/// One full ingestion session; returns the number of events fed.
fn run_session(
    schema: &Schema,
    defs: &[TriggerDef],
    workers: usize,
    scheduler: Scheduler,
    ids: &[u64],
    mix: &[u64],
    per_block: usize,
) -> u64 {
    let rt = Runtime::new(
        schema.clone(),
        defs.to_vec(),
        RuntimeConfig {
            shards: workers,
            queue_capacity: 128,
            backpressure: Backpressure::Block,
            scheduler,
            engine: EngineConfig {
                max_rule_steps: usize::MAX / 2,
                ..EngineConfig::default()
            },
            ..RuntimeConfig::default()
        },
    )
    .expect("valid rule set");
    for &id in ids {
        rt.begin(TenantId(id)).unwrap();
    }
    for (j, &rank) in mix.iter().enumerate() {
        let id = ids[rank as usize];
        rt.raise_external(TenantId(id), block(schema, id, j as u64, per_block))
            .unwrap();
    }
    rt.flush().unwrap();
    let stats = rt.stats();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(stats.job_errors + stats.job_panics, 0);
    if scheduler == Scheduler::Pinned {
        assert_eq!(stats.steals, 0, "pinned scheduling must never steal");
    }
    mix.len() as u64 * per_block as u64
}

fn bench_skew(c: &mut Criterion) {
    let schema = schema();
    let nrules = if measure_mode() { 60 } else { 10 };
    let defs = rules(&schema, nrules);
    let (tenants, jobs, per_block) = if measure_mode() { (16u64, 240, 16) } else { (4u64, 12, 4) };
    let worker_counts: &[usize] = if measure_mode() { &[2, 4, 8] } else { &[2] };
    let ids = colliding_ids(&schema, worker_counts, tenants as usize);
    let mix = job_mix(tenants, jobs);
    let mut g = c.benchmark_group("skew");
    g.throughput(Throughput::Elements(jobs as u64 * per_block as u64));
    for &workers in worker_counts {
        for (name, scheduler) in [
            ("pinned", Scheduler::Pinned),
            ("loadaware", Scheduler::LoadAware),
        ] {
            g.bench_with_input(BenchmarkId::new(name, workers), &workers, |b, &workers| {
                b.iter(|| {
                    black_box(run_session(
                        &schema, &defs, workers, scheduler, &ids, &mix, per_block,
                    ))
                });
            });
        }
    }
    g.finish();
}

/// Where the shim puts `BENCH.json` (same resolution rules as the
/// criterion shim's `CHIMERA_BENCH_JSON` handling), or `None` when
/// emission is off.
fn bench_json_path() -> Option<PathBuf> {
    let v = std::env::var_os("CHIMERA_BENCH_JSON")?;
    if v.is_empty() || v == "0" {
        return None;
    }
    if v != "1" {
        return Some(PathBuf::from(v));
    }
    if let Ok(exe) = std::env::current_exe() {
        for anc in exe.ancestors() {
            if anc.file_name().is_some_and(|n| n == "target") {
                return Some(anc.join("BENCH.json"));
            }
        }
    }
    Some(PathBuf::from("target/BENCH.json"))
}

/// Merge the acceptance numbers into `BENCH.json` alongside the shim's
/// per-bench means. Read-modify-write of the shim's own line format;
/// this function runs after every timed bench in this target has
/// reported, and bench targets run sequentially, so nothing races it.
fn record_acceptance(ratio: f64, host_parallelism: usize) {
    let Some(path) = bench_json_path() else {
        return;
    };
    let text = std::fs::read_to_string(&path).unwrap_or_default();
    let mut entries: Vec<(String, f64)> = text
        .lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            let rest = line.strip_prefix('"')?;
            let (name, value) = rest.split_once("\": ")?;
            Some((name.to_string(), value.trim().parse::<f64>().ok()?))
        })
        .collect();
    for (name, v) in [
        ("skew/accept_ratio_w4".to_string(), ratio),
        (
            "skew/accept_host_parallelism".to_string(),
            host_parallelism as f64,
        ),
    ] {
        match entries.iter_mut().find(|(n, _)| *n == name) {
            Some(e) => e.1 = v,
            None => entries.push((name, v)),
        }
    }
    let mut s = String::from("{\n");
    for (i, (name, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("\"{name}\": {v:.1}{sep}\n"));
    }
    s.push_str("}\n");
    if let Err(e) = std::fs::write(&path, s) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// The PR-7 acceptance number, reported by the bench itself: load-aware
/// vs pinned session throughput at 4 workers on the colliding Zipf mix.
fn report_acceptance(c: &mut Criterion) {
    let _ = c;
    let schema = schema();
    if !measure_mode() {
        // still exercise both scheduler paths once so test mode covers them
        let defs = rules(&schema, 10);
        let ids = colliding_ids(&schema, &[2], 4);
        let mix = job_mix(4, 8);
        for s in [Scheduler::Pinned, Scheduler::LoadAware] {
            black_box(run_session(&schema, &defs, 2, s, &ids, &mix, 4));
        }
        return;
    }
    let defs = rules(&schema, 60);
    let (tenants, jobs, per_block) = (16u64, 240, 16);
    let workers = 4;
    let ids = colliding_ids(&schema, &[workers], tenants as usize);
    let mix = job_mix(tenants, jobs);
    let reps = if single_shot() { 1 } else { 3 };
    let session_evs = |scheduler: Scheduler| {
        if !single_shot() {
            // warmup
            run_session(&schema, &defs, workers, scheduler, &ids, &mix, per_block);
        }
        let start = Instant::now();
        let mut events = 0u64;
        for _ in 0..reps {
            events += run_session(&schema, &defs, workers, scheduler, &ids, &mix, per_block);
        }
        events as f64 / start.elapsed().as_secs_f64()
    };
    let pinned = session_evs(Scheduler::Pinned);
    let loadaware = session_evs(Scheduler::LoadAware);
    let ratio = loadaware / pinned;
    let host = std::thread::available_parallelism().map_or(0, |n| n.get());
    println!(
        "skew scheduling throughput, 16 colliding Zipf tenants x 60 rules, {workers} workers: \
         pinned {pinned:.0} ev/s, load-aware {loadaware:.0} ev/s -> {ratio:.2}x \
         (target >= 2x on >= 4-core hosts; host parallelism {host})",
    );
    if host < workers {
        println!(
            "skew: host has only {host} hardware thread(s); the load-aware win is a \
             parallelism win and cannot show here — treat the ratio as a no-regression \
             check, not the acceptance number"
        );
    }
    record_acceptance(ratio, host);
}

criterion_group!(benches, bench_skew, report_acceptance);
criterion_main!(benches);
