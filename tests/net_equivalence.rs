//! The PR-5 acceptance bar: **the network is observationally
//! invisible**.
//!
//! Blocks submitted by ≥ 2 concurrent TCP clients across ≥ 16 tenants
//! must produce — tenant for tenant — the same triggered sets, engine
//! stats, event logs, consumption windows, and store extents as an
//! in-process sequential replay of the same per-tenant job streams on a
//! plain [`Engine`]; and **every** submitted job must receive a per-job
//! completion reply (success or typed error) with *no* `flush` anywhere
//! in the client path — quiescence is established purely by draining
//! completions.
//!
//! Tenant-local triggers ride along over the wire too: some tenants
//! install a trigger mid-stream from concrete `define trigger` syntax
//! (`DefineTriggers`), which the oracle mirrors by lowering the same
//! source through `chimera-lang` at the same stream position.

use chimera::events::Timestamp;
use chimera::exec::{Engine, EngineConfig};
use chimera::lang::parse_trigger_decls;
use chimera::model::{AttrDef, AttrType, ClassId, Oid, Schema, SchemaBuilder, Value};
use chimera::net::{
    Client, ExternalEvent, Server, ServerConfig, WireJob, WireOp, WireOutcome,
};
use chimera::prelude::EventType;
use chimera::rules::{ActionStmt, TriggerDef};
use chimera::runtime::{Backpressure, Runtime, RuntimeConfig, TenantId};
use chimera::workload::{ExprGenConfig, RandomExprGen};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "item",
        None,
        vec![
            AttrDef::new("qty", AttrType::Integer),
            AttrDef::with_default("tag", AttrType::Integer, Value::Int(0)),
        ],
    )
    .unwrap();
    let s = b.build();
    assert_eq!(s.class_by_name("item").unwrap(), ClassId(0));
    s
}

/// A random runtime-wide rule set (same shape as the PR-4 suite): a
/// third of the rules carry Create actions, so firings have net effects.
fn random_rules(seed: u64) -> Vec<TriggerDef> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = RandomExprGen::new(ExprGenConfig {
        event_types: 4,
        max_depth: 3,
        instance_prob: 0.5,
        negation_prob: 0.2,
        seed: seed ^ 0xD1CE,
    });
    let k = rng.random_range(2..5usize);
    (0..k)
        .map(|i| {
            let mut def = TriggerDef::new(format!("r{i}"), g.generate());
            def.priority = rng.random_range(0..3i32);
            if i % 3 == 0 {
                def.actions = vec![ActionStmt::Create {
                    class: "item".into(),
                    inits: vec![],
                }];
            }
            def
        })
        .collect()
}

/// The tenant-local trigger some tenants install over the wire,
/// in concrete §2–§3 syntax.
const WIRE_TRIGGER_SRC: &str = "
define immediate trigger wireAudit for item
  events external(item#2)
  condition item(S)
  actions create(item)
end";

/// One step of a tenant's scripted stream.
#[derive(Debug, Clone)]
enum Step {
    Wire(WireJob),
    Define(&'static str),
}

/// The deterministic per-tenant script (wire form). Mirrored exactly by
/// the sequential oracle.
fn tenant_script(seed: u64, tenant: u64, steps: usize) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed ^ tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut script = Vec::with_capacity(steps);
    let mut in_txn = false;
    for k in 0..steps {
        if !in_txn {
            script.push(Step::Wire(WireJob::Begin));
            in_txn = true;
            continue;
        }
        // one mid-stream trigger definition for half the tenants
        if k == steps / 2 && tenant % 2 == 0 {
            script.push(Step::Define(WIRE_TRIGGER_SRC));
            continue;
        }
        let step = match rng.random_range(0..10u32) {
            0..=4 => {
                let n = rng.random_range(1..4usize);
                Step::Wire(WireJob::RaiseExternal(
                    (0..n)
                        .map(|_| ExternalEvent {
                            class: 0,
                            channel: rng.random_range(0..4u32),
                            oid: rng.random_range(0..4u64),
                        })
                        .collect(),
                ))
            }
            5..=7 => {
                let n = rng.random_range(1..3usize);
                Step::Wire(WireJob::ExecBlock(
                    (0..n)
                        .map(|_| WireOp::Create {
                            class: 0,
                            inits: vec![(0, Value::Int(rng.random_range(0..100i64)))],
                        })
                        .collect(),
                ))
            }
            8 => {
                in_txn = false;
                Step::Wire(WireJob::Commit)
            }
            _ => {
                in_txn = false;
                Step::Wire(WireJob::Rollback)
            }
        };
        script.push(step);
    }
    script
}

/// Everything observable about one tenant engine (the PR-4 snapshot,
/// minus the probe counters that legitimately vary with batching).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Snapshot {
    stats: chimera::exec::EngineStats,
    in_txn: bool,
    eb_len: usize,
    eb_now: Timestamp,
    eb_log: Vec<(EventType, Oid, Timestamp)>,
    rules: Vec<(String, bool, bool, Timestamp, Timestamp, Timestamp)>,
    extent: Vec<Oid>,
}

fn snapshot(engine: &mut Engine, item: ClassId) -> Snapshot {
    let mut extent = engine.extent(item);
    extent.sort_unstable();
    Snapshot {
        stats: engine.stats(),
        in_txn: engine.in_transaction(),
        eb_len: engine.event_base().len(),
        eb_now: engine.event_base().now(),
        eb_log: engine
            .event_base()
            .iter()
            .map(|e| (e.ty, e.oid, e.ts))
            .collect(),
        rules: engine
            .rules()
            .iter()
            .map(|(def, st)| {
                (
                    def.name.clone(),
                    st.triggered,
                    st.witness,
                    st.last_consideration,
                    st.last_consumption,
                    st.checked_upto,
                )
            })
            .collect(),
        extent,
    }
}

/// Replay one tenant's script on a fresh sequential engine; returns the
/// snapshot and the engine-error count.
fn replay_sequential(
    s: &Schema,
    rules: &[TriggerDef],
    engine_cfg: &EngineConfig,
    script: &[Step],
    item: ClassId,
) -> (Snapshot, u64) {
    let mut engine = Engine::with_config(
        s.clone(),
        EngineConfig {
            check_workers: 1,
            ..engine_cfg.clone()
        },
    );
    for def in rules {
        engine.define_trigger(def.clone()).unwrap();
    }
    let mut errors = 0u64;
    for step in script {
        let res = match step.clone() {
            Step::Wire(job) => match job {
                WireJob::Begin => engine.begin(),
                WireJob::ExecBlock(ops) => {
                    let ops: Vec<_> = ops.into_iter().map(WireOp::into_op).collect();
                    engine.exec_block(&ops).map(|_| ())
                }
                WireJob::RaiseExternal(evs) => {
                    let evs: Vec<_> = evs
                        .into_iter()
                        .map(|e| (ClassId(e.class), e.channel, Oid(e.oid)))
                        .collect();
                    engine.raise_external(&evs).map(|_| ())
                }
                WireJob::Commit => engine.commit(),
                WireJob::Rollback => engine.rollback(),
            },
            Step::Define(src) => {
                let decls = parse_trigger_decls(src, engine.schema()).unwrap();
                let mut r = Ok(());
                for decl in &decls {
                    let def = decl.lower(engine.schema()).unwrap();
                    if let e @ Err(_) = engine.define_trigger(def) {
                        r = e;
                        break;
                    }
                }
                r
            }
        };
        if res.is_err() {
            errors += 1;
        }
    }
    (snapshot(&mut engine, item), errors)
}

proptest! {
    // TCP sessions per case make this pricier than the in-process
    // suites; 48 cases of 2-3 clients × 16-24 tenants is still < 10 s.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn network_traffic_equals_sequential_replay(
        rule_seed in any::<u64>(),
        script_seed in any::<u64>(),
        extra_tenants in 0u64..8,
        steps in 4usize..24,
        shards in 1usize..4,
    ) {
        let s = schema();
        let item = s.class_by_name("item").unwrap();
        let rules = random_rules(rule_seed);
        let engine_cfg = EngineConfig {
            max_rule_steps: 64,
            ..EngineConfig::default()
        };
        let tenants = 16 + extra_tenants; // the bar says ≥ 16
        let runtime = Arc::new(
            Runtime::new(
                s.clone(),
                rules.clone(),
                RuntimeConfig {
                    shards,
                    queue_capacity: 4, // small: exercise backpressure
                    backpressure: Backpressure::Block,
                    engine: engine_cfg.clone(),
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&runtime),
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr();

        // ≥ 2 concurrent clients, disjoint tenant ranges (per-tenant job
        // order must be deterministic; cross-tenant interleaving is free)
        let clients = 2 + (script_seed % 2) as usize;
        let scripts: Vec<Vec<Step>> = (0..tenants)
            .map(|t| tenant_script(script_seed, t, steps))
            .collect();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let scripts = &scripts;
                scope.spawn(move || {
                    let mut client =
                        Client::connect_with(addr, &format!("feeder-{c}"), 1 << 20).unwrap();
                    let mut submitted = 0usize;
                    let mut completions = Vec::new();
                    // round-robin over this client's own tenants so its
                    // pipeline interleaves tenants like production would
                    let mine: Vec<u64> =
                        (0..tenants).filter(|t| *t as usize % clients == c).collect();
                    let max_len = mine
                        .iter()
                        .map(|t| scripts[*t as usize].len())
                        .max()
                        .unwrap_or(0);
                    for k in 0..max_len {
                        for &t in &mine {
                            match scripts[t as usize].get(k) {
                                None => {}
                                Some(Step::Wire(job)) => {
                                    completions.extend(client.submit(t, job.clone()).unwrap());
                                    submitted += 1;
                                }
                                Some(Step::Define(src)) => {
                                    // synchronous: reads outstanding
                                    // completions into the client's
                                    // buffer (collected by the final
                                    // drain), then installs — in order
                                    client.define_triggers(t, src).unwrap();
                                }
                            }
                        }
                    }
                    // every job answered, no flush anywhere: draining
                    // completions is the only quiescence mechanism the
                    // client has
                    completions.extend(client.drain().unwrap());
                    assert_eq!(client.outstanding(), 0);
                    assert_eq!(completions.len(), submitted, "client {c}: a job went unanswered");
                    // completions arrive in submission order: job ids
                    // are monotone per connection
                    let ids: Vec<u64> = completions.iter().map(|d| d.job).collect();
                    let mut sorted = ids.clone();
                    sorted.sort_unstable();
                    assert_eq!(ids, sorted, "client {c}: completions out of order");
                    for d in &completions {
                        assert!(
                            matches!(
                                d.outcome,
                                WireOutcome::Done { .. } | WireOutcome::Error { .. }
                            ),
                            "job {} got {:?}",
                            d.job,
                            d.outcome
                        );
                    }
                });
            }
        });

        // all clients drained all completions ⇒ every tenant's stream is
        // fully retired; compare against the sequential oracle with no
        // flush ever issued
        for t in 0..tenants {
            let script = &scripts[t as usize];
            let (want, want_errors) =
                replay_sequential(&s, &rules, &engine_cfg, script, item);
            let got = runtime
                .with_tenant(TenantId(t), |e| snapshot(e, item))
                .expect("tenant has an engine");
            prop_assert_eq!(&got, &want, "tenant {} diverged", t);
            let (errors, _) = runtime.tenant_errors(TenantId(t)).unwrap();
            prop_assert_eq!(errors, want_errors, "tenant {} error count", t);
        }
        let stats = runtime.stats();
        prop_assert_eq!(stats.jobs_processed, stats.jobs_submitted);
        prop_assert_eq!(stats.jobs_shed, 0u64);
        prop_assert_eq!(stats.job_panics, 0u64);
        server.shutdown();
    }
}
