//! # chimera-runtime
//!
//! A sharded, multi-tenant parallel runtime over the single-threaded
//! Chimera engine.
//!
//! The paper's §5 execution architecture assumes one transaction's Event
//! Base per detector: a [`chimera_exec::Engine`] is deliberately a
//! single-threaded reactive machine. This crate serves *many concurrent
//! sessions* with that machine by composing three layers of parallelism,
//! none of which changes the per-tenant semantics:
//!
//! 1. **Tenant sharding** — every tenant ([`TenantId`]) owns a private
//!    engine (schema + store + event base + rule table); tenants are
//!    placed on one of N *shards* by hash. A shard is one worker thread
//!    plus the engines of its tenants, so all of a tenant's jobs execute
//!    in submission order on one thread — exactly the sequential engine,
//!    tenant by tenant.
//! 2. **Bounded ingestion queues** — each shard is fed through a bounded
//!    MPSC channel (`std::sync::mpsc::sync_channel`; nothing from
//!    crates.io). When a queue fills, the configured [`Backpressure`]
//!    policy either *blocks* the submitter or *sheds* the job, with
//!    counters for both in [`RuntimeStats`].
//! 3. **Intra-shard check parallelism** — inside an engine, the per-block
//!    trigger check round itself can fan the rule table's probe work out
//!    across a scoped worker pool over the block's shared EB epoch delta
//!    (`EngineConfig::check_workers`); the sequential round is the same
//!    code path run as a single chunk, so `parallel == sequential` is a
//!    testable property, not an aspiration.
//!
//! The equivalence oracle is the plain sequential [`chimera_exec::Engine`]:
//! `tests/runtime_equivalence.rs` (facade-level) proves that interleaved
//! multi-tenant traffic through the runtime leaves every tenant with the
//! identical triggered-rule sets, consumption windows, and net effects as
//! a per-tenant sequential replay.
//!
//! ## Durable tenants
//!
//! Each shard worker threads a `chimera_persist::StateStore` through its
//! job loop. With [`StorageMode::Durable`] every job's intent is appended
//! to the shard's job log *before* execution and the whole drained queue
//! batch shares one fsync (**group commit**) before anyone is answered —
//! so an acknowledged job is always durable, and the ~ms fsync cost is
//! amortized across the batch. [`Runtime::recover`] rebuilds every tenant
//! bit-identically from the shard snapshot + job-log replay (event logs,
//! consumption windows, rule stamps, error bookkeeping and open
//! transactions included); periodic snapshots truncate the log. The crash
//! oracle is `tests/durable_recovery.rs`: kill the process at any byte of
//! the log — including a torn final record — and recovery equals a
//! sequential replay of exactly the surviving prefix.
//!
//! ## Quick tour
//!
//! ```
//! use chimera_runtime::{Job, Runtime, RuntimeConfig, TenantId};
//! use chimera_exec::Op;
//! use chimera_model::{AttrDef, AttrType, SchemaBuilder};
//!
//! let mut b = SchemaBuilder::new();
//! b.class("stock", None, vec![AttrDef::new("qty", AttrType::Integer)]).unwrap();
//! let schema = b.build();
//! let stock = schema.class_by_name("stock").unwrap();
//!
//! let rt = Runtime::new(schema, vec![], RuntimeConfig::default()).unwrap();
//! for t in 0..8 {
//!     rt.submit(TenantId(t), Job::Begin).unwrap();
//!     rt.submit(TenantId(t), Job::ExecBlock(vec![Op::Create { class: stock, inits: vec![] }])).unwrap();
//!     rt.submit(TenantId(t), Job::Commit).unwrap();
//! }
//! rt.flush().unwrap();
//! let stats = rt.stats();
//! assert_eq!(stats.tenants, 8);
//! assert_eq!(stats.engine.commits, 8);
//! assert_eq!(stats.jobs_processed, stats.jobs_submitted);
//! ```

mod runtime;
mod shard;
mod stats;

pub use runtime::{
    Backpressure, DurabilityConfig, Job, JobId, JobOutcome, JobReply, JobSummary, RecoveryReport,
    Runtime, RuntimeConfig, RuntimeError, StorageMode, TenantId,
};
pub use stats::RuntimeStats;

/// Compile-time `Send`/`Sync` audit of everything the runtime moves onto
/// or shares between worker threads. A regression here (say, a `Rc`
/// slipping into the rule table) becomes a build error, not a data race.
#[allow(dead_code)]
const fn assert_send<T: Send>() {}
#[allow(dead_code)]
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send::<chimera_exec::Engine>();
    assert_send::<chimera_rules::RuleTable>();
    assert_send::<chimera_rules::TriggerSupport>();
    assert_send::<chimera_rules::RuleState>();
    assert_send_sync::<chimera_calculus::PlanEval>();
    assert_send_sync::<chimera_events::EventBase>();
    assert_send_sync::<Runtime>();
    assert_send::<Job>();
};
