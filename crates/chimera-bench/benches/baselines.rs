//! PERF-4 — the calculus against the related-work baselines on the shared
//! sequence/conjunction workload (§1.1): per-event detection cost for
//! the Ode-style graph and the Snoop-style recent-context detector, the
//! windowed `ts` check of the Chimera trigger support, and the naive
//! rescan. Expected shape: graph/Snoop are O(nodes) per event; the
//! Chimera check is index-probing and stays flat as the window grows; the
//! naive rescan degrades linearly with window size — and only the
//! calculus covers negation and instance operators at all.

use chimera_baselines::{naive_ts, GraphDetector, NaiveTriggerChecker, SnoopRecentDetector};
use chimera_bench::{history, p};
use chimera_calculus::ts_logical;
use chimera_events::{EventOccurrence, Timestamp, Window};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_detectors_per_event(c: &mut Criterion) {
    // shared fragment: (A < B) + (C , D)
    let expr = p(0).prec(p(1)).and(p(2).or(p(3)));
    let eb = history(29, 10_000, 6, 32);
    let events: Vec<EventOccurrence> = eb.iter().copied().collect();

    let mut g = c.benchmark_group("detector_stream_10k");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("ode_graph", |b| {
        b.iter(|| {
            let mut d = GraphDetector::compile(&expr).unwrap();
            for e in &events {
                black_box(d.feed(e));
            }
            d.accepted()
        });
    });
    g.bench_function("snoop_recent", |b| {
        b.iter(|| {
            let mut d = SnoopRecentDetector::compile(&expr).unwrap();
            let mut n = 0usize;
            for e in &events {
                n += d.feed(e).len();
            }
            black_box(n)
        });
    });
    g.bench_function("chimera_incremental", |b| {
        use chimera_calculus::IncrementalTs;
        b.iter(|| {
            let mut d = IncrementalTs::new(&expr).unwrap();
            for e in &events {
                d.observe(e);
            }
            black_box(d.is_active())
        });
    });
    g.bench_function("chimera_ts_per_block", |b| {
        // one indexed ts probe per 4-event block (the engine's cadence)
        let w = Window::from_origin(eb.now());
        b.iter(|| {
            let mut act = 0usize;
            for chunk in events.chunks(4) {
                let t = chunk.last().unwrap().ts;
                if ts_logical(&expr, &eb, w, t).is_active() {
                    act += 1;
                }
            }
            black_box(act)
        });
    });
    g.finish();
}

fn bench_window_scaling(c: &mut Criterion) {
    // the naive rescan degrades with window size; the indexed ts stays flat
    let expr = p(0).prec(p(1)).and(p(2).or(p(3)));
    let mut g = c.benchmark_group("window_scaling");
    for &n in &[1_000usize, 10_000, 100_000] {
        let eb = history(31, n, 6, 32);
        let events: Vec<EventOccurrence> = eb.iter().copied().collect();
        let w = Window::from_origin(eb.now());
        let now = eb.now();
        g.bench_with_input(BenchmarkId::new("indexed_ts", n), &n, |b, _| {
            b.iter(|| black_box(ts_logical(&expr, &eb, w, now)));
        });
        g.bench_with_input(BenchmarkId::new("naive_rescan_ts", n), &n, |b, _| {
            b.iter(|| black_box(naive_ts(&expr, &events, w, now)));
        });
    }
    g.finish();
}

fn bench_trigger_checkers(c: &mut Criterion) {
    // full trigger-checking pass over a 2k-event history, 32 rules
    let exprs: Vec<_> = (0..32u32)
        .map(|i| p(i % 6).prec(p((i + 1) % 6)).and(p((i + 2) % 6)))
        .collect();
    let eb = history(37, 2_000, 6, 32);
    let events: Vec<EventOccurrence> = eb.iter().copied().collect();
    let mut g = c.benchmark_group("trigger_checkers_2k");
    g.bench_function("chimera_support", |b| {
        use chimera_rules::{RuleTable, TriggerDef, TriggerSupport};
        b.iter(|| {
            let mut rt = RuleTable::new();
            for (i, e) in exprs.iter().enumerate() {
                rt.define(TriggerDef::new(format!("r{i}"), e.clone()), Timestamp::ZERO)
                    .unwrap();
            }
            let mut s = TriggerSupport::optimized();
            black_box(s.check(&mut rt, &eb, eb.now()).len())
        });
    });
    g.bench_function("naive_checker", |b| {
        b.iter(|| {
            let mut nc = NaiveTriggerChecker::new(exprs.clone(), Timestamp::ZERO);
            black_box(nc.check(&events, eb.now()).len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_detectors_per_event,
    bench_window_scaling,
    bench_trigger_checkers
);
criterion_main!(benches);
