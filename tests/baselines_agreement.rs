//! Agreement of the related-work baselines with the calculus on their
//! shared fragments (PERF-4's correctness precondition):
//!
//! * Ode-style graph detector: acceptance ⟺ triggering witness, on the
//!   regular (negation-free, set-oriented) fragment with distinct
//!   primitives per event;
//! * Snoop-style recent-context detector: emission instants ⟺ fresh
//!   activation instants;
//! * naive checker ⟺ formal predicate (random composite rules).

use chimera::baselines::{GraphDetector, NaiveTriggerChecker, SnoopRecentDetector};
use chimera::calculus::ts_logical;
use chimera::events::{EventBase, EventOccurrence, EventType, Timestamp, Window};
use chimera::model::{ClassId, Oid};
use chimera::rules::{is_triggered, RuleState, TriggerDef};
use chimera::workload::{ExprGenConfig, RandomExprGen};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn et(n: u32) -> EventType {
    EventType::external(ClassId(0), n)
}

/// Relabel every primitive leaf with a distinct event type. The Ode/Snoop
/// models treat an occurrence as ONE constituent, so `A < A` needs two
/// occurrences there while the calculus accepts a single one (same-stamp
/// precedence); distinct leaves put both models on the shared fragment.
fn distinct_leaves(e: &chimera::calculus::EventExpr) -> chimera::calculus::EventExpr {
    use chimera::calculus::EventExpr;
    fn walk(e: &EventExpr, next: &mut u32) -> EventExpr {
        match e {
            EventExpr::Prim(_) => {
                let ty = et(*next);
                *next += 1;
                EventExpr::Prim(ty)
            }
            EventExpr::Or(a, b) => walk(a, next).or(walk(b, next)),
            EventExpr::And(a, b) => walk(a, next).and(walk(b, next)),
            EventExpr::Prec(a, b) => walk(a, next).prec(walk(b, next)),
            other => other.clone(),
        }
    }
    let mut next = 0;
    walk(e, &mut next)
}

fn stream(seed: u64, len: usize, types: u32) -> (EventBase, Vec<EventOccurrence>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut eb = EventBase::new();
    let mut occs = Vec::new();
    for _ in 0..len {
        let ty = et(rng.random_range(0..types));
        let oid = Oid(rng.random_range(1..4u64));
        occs.push(eb.append(ty, oid));
    }
    (eb, occs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_accepts_iff_calculus_witness(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 0usize..20,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 4,
            max_depth: 4,
            seed: expr_seed,
            ..Default::default()
        });
        let expr = distinct_leaves(&g.generate_regular());
        let mut det = GraphDetector::compile(&expr).unwrap();
        let (eb, occs) = stream(stream_seed, len, 8);
        for o in &occs {
            det.feed(o);
        }
        let now = eb.now();
        let w = Window::from_origin(now);
        let witness = (1..=now.raw())
            .any(|t| ts_logical(&expr, &eb, w, Timestamp(t)).is_active());
        prop_assert_eq!(det.accepted(), witness, "{}", &expr);
    }

    #[test]
    fn snoop_emissions_are_fresh_activations(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 0usize..20,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 4,
            max_depth: 3,
            seed: expr_seed,
            ..Default::default()
        });
        let expr = distinct_leaves(&g.generate_regular());
        let mut det = SnoopRecentDetector::compile(&expr).unwrap();
        let (eb, occs) = stream(stream_seed, len, 8);
        let emissions = det.detect_all(&occs);
        let now = eb.now();
        let w = Window::from_origin(now);
        let fresh: Vec<Timestamp> = occs
            .iter()
            .map(|o| o.ts)
            .filter(|&te| ts_logical(&expr, &eb, w, te).activation() == Some(te))
            .collect();
        prop_assert_eq!(emissions, fresh, "{}", &expr);
    }

    #[test]
    fn naive_checker_equals_formal_predicate(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 0usize..15,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 4,
            max_depth: 4,
            instance_prob: 0.3,
            negation_prob: 0.3,
            seed: expr_seed,
        });
        let expr = g.generate();
        let (eb, occs) = stream(stream_seed, len, 4);
        let events: Vec<EventOccurrence> = occs;
        let mut nc = NaiveTriggerChecker::new(vec![expr.clone()], Timestamp::ZERO);
        let naive = !nc.check(&events, eb.now()).is_empty();
        let def = TriggerDef::new("r", expr.clone());
        let st = RuleState::new(&def, Timestamp::ZERO);
        let formal = is_triggered(&def, &st, &eb, eb.now());
        prop_assert_eq!(naive, formal, "{}", &expr);
    }
}

/// Expressiveness boundary: the features the baselines cannot host.
#[test]
fn baselines_cannot_express_chimera_extensions() {
    let p = |n| chimera::calculus::EventExpr::prim(et(n));
    for unsupported in [
        p(0).not(),                 // negation
        p(0).iand(p(1)),            // instance conjunction
        p(0).iprec(p(1)).inot(),    // instance negation over precedence
        p(0).and(p(1).iand(p(2))),  // instance subtree in set context
    ] {
        assert!(GraphDetector::compile(&unsupported).is_err(), "{unsupported}");
        assert!(
            SnoopRecentDetector::compile(&unsupported).is_err(),
            "{unsupported}"
        );
    }
}
