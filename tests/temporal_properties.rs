//! Property suites for the temporal extension.

use chimera::events::{EventType, Timestamp, Window};
use chimera::model::{ClassId, Oid};
use chimera::temporal::{ClockScheduler, ClockSpec, TimesDetector};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = ClockSpec> {
    prop_oneof![
        (1u64..60).prop_map(|t| ClockSpec::At(Timestamp(t))),
        (0u64..30).prop_map(|delay| ClockSpec::After { delay }),
        ((1u64..10), (0u64..10)).prop_map(|(period, phase)| ClockSpec::Every { period, phase }),
    ]
}

proptest! {
    /// Loss-free catch-up: however irregularly the scheduler is polled,
    /// the concatenation of the due sets equals a single poll over the
    /// whole interval. This is the invariant that lets the driver be
    /// pumped at arbitrary block boundaries.
    #[test]
    fn polling_split_points_are_invisible(
        specs in prop::collection::vec(arb_spec(), 1..6),
        mut split_points in prop::collection::vec(1u64..100, 0..8),
        end in 100u64..140,
    ) {
        let mut split = ClockScheduler::new(Timestamp::ZERO);
        let mut single = ClockScheduler::new(Timestamp::ZERO);
        for (i, s) in specs.iter().enumerate() {
            split.register(*s, i as u32);
            single.register(*s, i as u32);
        }
        split_points.sort_unstable();
        split_points.push(end);
        let mut collected = Vec::new();
        for p in split_points {
            collected.extend(split.due(Timestamp(p)));
        }
        let oneshot = single.due(Timestamp(end));
        prop_assert_eq!(collected, oneshot);
    }

    /// Due instants always lie in the polled window and are sorted.
    #[test]
    fn due_instants_lie_in_window(
        specs in prop::collection::vec(arb_spec(), 1..6),
        a in 1u64..50,
        b in 50u64..120,
    ) {
        let mut s = ClockScheduler::new(Timestamp::ZERO);
        for (i, spec) in specs.iter().enumerate() {
            s.register(*spec, i as u32);
        }
        let first = s.due(Timestamp(a));
        for &(t, _) in &first {
            prop_assert!(t.raw() >= 1 && t.raw() <= a);
        }
        let second = s.due(Timestamp(b));
        for &(t, _) in &second {
            prop_assert!(t.raw() > a && t.raw() <= b);
        }
        for w in second.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }

    /// The Times detector is monotone in the window and consistent with
    /// its own count.
    #[test]
    fn times_detector_monotone(
        arrivals in prop::collection::vec((0u32..4, 1u64..20), 0..40),
        n in 1usize..6,
    ) {
        let mut eb = chimera::events::EventBase::new();
        for (ty, oid) in &arrivals {
            eb.append(EventType::external(ClassId(0), *ty), Oid(*oid));
        }
        let det = TimesDetector::new(EventType::external(ClassId(0), 0), n);
        let now = eb.now();
        let mut prev = usize::MAX;
        // shrinking windows never increase the count
        for lo in 0..=now.raw() {
            let w = Window::new(Timestamp(lo), now);
            let c = det.count(&eb, w);
            prop_assert!(c <= prev.min(arrivals.len()));
            prop_assert_eq!(det.is_active(&eb, w), c >= n);
            prop_assert_eq!(det.occurrence_instant(&eb, w).is_some(), c >= n);
            prev = c;
        }
    }
}
